"""Ablation — CAMP's MSB-preserving rounding vs regular truncation.

Table 1's point made quantitative: truncating a fixed number of low-order
bits collapses small ratios to nothing (cheap pairs become
indistinguishable) while barely rounding large ones.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_rounding_ablation(benchmark, scale, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("ablation-rounding", scale))
    save_tables("ablation_rounding", tables)
    table = tables[0]
    msb = {row[1]: (row[2], row[3]) for row in table.rows
           if row[0] == "camp-msb"}
    regular = {row[1]: (row[2], row[3]) for row in table.rows
               if row[0] == "regular"}
    # MSB rounding's quality is precision-stable
    msb_costs = [msb[p][1] for p in sorted(msb)]
    assert max(msb_costs) - min(msb_costs) < 0.05
    # heavy regular truncation collapses queue structure at high "precision"
    # (here: number of dropped low bits) at least as much as MSB rounding
    deepest = max(regular)
    assert regular[deepest][0] <= msb[deepest][0]
