"""Figure 4 — visited heap nodes: GDS's per-item heap vs CAMP's queue heap.

Expected shape: CAMP visits far fewer nodes than GDS at every cache size,
and CAMP's curve falls as the cache grows (fewer evictions, constant-size
queue heap) while GDS still pays per-hit updates on an ever-larger heap.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig4(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig4", scale))
    save_tables("fig4", tables)
    table = tables[0]
    gds = table.column("gds_node_visits")
    camp = table.column("camp_node_visits")
    # CAMP below GDS everywhere
    assert all(c < g for c, g in zip(camp, gds))
    # CAMP's trend: fewer visits at the largest cache than the smallest
    assert camp[-1] < camp[0]
    # the gap should widen with cache size (paper: orders of magnitude at
    # the right edge; at reduced scale we require monotone improvement)
    ratios = table.column("visit_ratio_gds_over_camp")
    assert ratios[-1] > ratios[0]
