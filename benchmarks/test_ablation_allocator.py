"""Ablation — slab allocation vs a buddy allocator (paper section 5).

The paper suggests the buddy algorithm as a calcification-free alternative
to slabs.  We drive both allocators with the same item-size stream and
compare internal fragmentation and allocation failures, then verify the
buddy system needs no analogue of random slab eviction after a workload
shift (the calcification scenario).
"""

import random

from conftest import run_once

from repro.analysis import Table
from repro.errors import AllocationError
from repro.twemcache import BuddyAllocator, SlabAllocator


ARENA = 8 << 20
SIZES = [96, 150, 400, 1200, 5000, 20_000]


def drive_slab(seed: int = 1):
    allocator = SlabAllocator(ARENA, slab_size=1 << 18)
    rng = random.Random(seed)
    live = []
    failures = 0
    reserved = 0
    useful = 0
    for i in range(4000):
        if rng.random() < 0.6 or not live:
            size = rng.choice(SIZES)
            class_id = allocator.class_for(size)
            chunk = allocator.try_allocate(class_id, f"k{i}")
            if chunk is None:
                failures += 1
            else:
                chunk_size = allocator.class_info(class_id).chunk_size
                live.append((chunk, chunk_size, size))
                reserved += chunk_size
                useful += size
        else:
            chunk, chunk_size, size = live.pop()
            allocator.free(chunk)
            reserved -= chunk_size
            useful -= size
    fragmentation = 1 - useful / reserved if reserved else 0.0
    return failures, fragmentation


def drive_buddy(seed: int = 1):
    allocator = BuddyAllocator(ARENA, min_block=64)
    rng = random.Random(seed)
    live = []
    failures = 0
    for i in range(4000):
        if rng.random() < 0.6 or not live:
            size = rng.choice(SIZES)
            try:
                live.append(allocator.allocate(size))
            except AllocationError:
                failures += 1
        else:
            allocator.free(live.pop())
    return failures, allocator.fragmentation()


def test_allocator_ablation(benchmark, save_tables):
    def run():
        slab_failures, slab_frag = drive_slab()
        buddy_failures, buddy_frag = drive_buddy()
        table = Table(
            "Ablation — slab vs buddy allocation (same request stream)",
            ["allocator", "alloc_failures", "internal_fragmentation"])
        table.add_row("slab(1.25x classes)", slab_failures, slab_frag)
        table.add_row("buddy(pow2)", buddy_failures, buddy_frag)
        return [table]

    tables = run_once(benchmark, run)
    save_tables("ablation_allocator", tables)
    table = tables[0]
    for row in table.rows:
        assert 0 <= row[2] < 0.6   # fragmentation within sane bounds
    # the slab system's ~1.25x class geometry wastes less per item than
    # buddy's power-of-two rounding on this mixed stream
    slab_frag = table.rows[0][2]
    buddy_frag = table.rows[1][2]
    assert slab_frag <= buddy_frag + 0.05


def test_buddy_immune_to_calcification(save_tables):
    """After an all-small workload, big allocations still succeed on the
    buddy allocator once the small items are freed — no slab stealing."""
    allocator = BuddyAllocator(1 << 20, min_block=64)
    live = [allocator.allocate(64) for _ in range(1000)]
    for offset in live:
        allocator.free(offset)
    # a whole-arena-quarter block is immediately satisfiable
    assert allocator.allocate(1 << 18) is not None
