"""Ablation — second-hit admission control (paper section 6 future work).

A doorkeeper that refuses one-hit wonders reduces insertions (and hence
evictions); on skewed traces it should not wreck the hit metrics.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_admission_ablation(benchmark, scale, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("ablation-admission", scale))
    save_tables("ablation_admission", tables)
    table = tables[0]
    rows = {(row[0], row[1]): row for row in table.rows}
    for policy in ("camp", "lru"):
        baseline = rows[(policy, "none")]
        doorkept = rows[(policy, "second-hit")]
        # fewer evictions with admission control
        assert doorkept[4] <= baseline[4]
        # metrics stay within a sane band of the baseline
        assert abs(doorkept[2] - baseline[2]) < 0.25
