"""Async serving surface: pipelined throughput + single-flight coalescing.

Two claims of the serving redesign, measured and enforced:

1. **Throughput** — at 64 connections the pipelined asyncio serving
   surface (`AsyncTwemcacheServer` + a pipelining client, 32 requests
   in flight per connection) sustains >= 2x the throughput of the
   seed's serving surface: the thread-per-connection `TwemcacheServer`
   driven the only way its blocking `SocketClient` can — one request
   per round trip.  A third, transparency row drives the *threaded*
   server with the same pipelined load: the sans-IO session batches
   its responses too, so most of the raw win is pipelining itself;
   at equal depth the two servers trade places run-to-run on one
   GIL-bound core, and the event loop's edge is structural (no thread
   per connection, async-loader composition).  The
   driver runs in a *separate process* (raw sockets, fixed pipeline
   depth per connection) so client-side GIL time cannot mask the
   server-side difference being measured.

2. **Coalescing** — a thundering herd of concurrent `get_or_compute`
   misses on one key pays its loader exactly once, in both the sync
   `Store` (per-key in-flight flights) and `AsyncStore` (shared load
   tasks): duplicate loads per hot key ~= 1.
"""

import asyncio
import subprocess
import sys
import threading
import time

from conftest import bench_scale

from repro.analysis import Table
from repro.cache import StoreConfig
from repro.twemcache import (
    AsyncTwemcacheServer,
    TwemcacheEngine,
    TwemcacheServer,
)

#: acceptance bar: pipelined asyncio surface >= 2x the blocking
#: threaded surface at 64 connections.  The 2x bar is demonstrated by
#: the archived default-scale table (measured ~2.9-5.2x locally, even
#: with the full suite running alongside) and enforced strictly at
#: full scale; tiny/default keep a safety margin because they run
#: inside CI gates (`pytest -x` tier-1 collects benchmarks/) on noisy
#: shared runners, where this assertion guards against rot, not
#: regressions (same convention as benchmarks/test_store_batch.py).
REQUIRED_SPEEDUP = {"tiny": 1.5, "default": 1.8, "full": 2.0}

#: requests in flight per connection for the pipelined surfaces; the
#: blocking SocketClient surface is structurally stuck at 1
PIPELINE_DEPTH = 32

SCALES = {
    # conns, blocking_batches, pipelined_batches, rounds — sized so the
    # tier-1 gate (`pytest -x` collects benchmarks/) stays in seconds
    "tiny": (16, 40, 4, 1),
    "default": (64, 60, 8, 2),
    "full": (64, 200, 25, 3),
}

KEYS = 2000
VALUE = b"v" * 100

#: stdlib-only driver run in a subprocess: `conns` connections, each
#: sending `depth` pipelined gets per batch and reading the replies
#: before the next batch; prints total ops/s
DRIVER = r'''
import socket, sys, threading, time
CRLF = b"\r\n"
host, port, conns, keys, depth, batches = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]),
    int(sys.argv[5]), int(sys.argv[6]))

def worker(conn_id, counts):
    with socket.create_connection((host, port), timeout=120) as sock:
        ops = 0
        for batch in range(batches):
            payload = b"".join(
                ("get k%d" % ((conn_id * 131 + batch * depth + d) % keys)
                 ).encode() + CRLF
                for d in range(depth))
            sock.sendall(payload)
            ends, buffer = 0, b""
            while ends < depth:
                chunk = sock.recv(65536)
                if not chunk:
                    raise RuntimeError("server closed mid-batch")
                buffer += chunk
                ends = buffer.count(b"END" + CRLF)
            ops += depth
        counts[conn_id] = ops

counts = [0] * conns
threads = [threading.Thread(target=worker, args=(i, counts))
           for i in range(conns)]
started = time.perf_counter()
for t in threads:
    t.start()
for t in threads:
    t.join()
print(sum(counts) / (time.perf_counter() - started))
'''


def _engine() -> TwemcacheEngine:
    engine = TwemcacheEngine(32 << 20, eviction="camp", slab_size=1 << 18)
    for i in range(KEYS):
        engine.set(f"k{i}", VALUE, cost=1)
    return engine


def _measure(server_cls, conns, depth, batches, rounds) -> float:
    best = 0.0
    for _ in range(rounds):
        with server_cls(_engine()) as server:
            host, port = server.address
            result = subprocess.run(
                [sys.executable, "-c", DRIVER, host, str(port),
                 str(conns), str(KEYS), str(depth), str(batches)],
                capture_output=True, text=True, timeout=600)
            assert result.returncode == 0, result.stderr
            best = max(best, float(result.stdout.strip()))
    return best


def test_async_serving_surface_throughput(save_tables):
    scale = bench_scale()
    conns, blocking_batches, pipe_batches, rounds = SCALES.get(
        scale, SCALES["default"])
    required = REQUIRED_SPEEDUP.get(scale, REQUIRED_SPEEDUP["default"])

    blocking = _measure(TwemcacheServer, conns, 1,
                        blocking_batches, rounds)
    threaded_pipe = _measure(TwemcacheServer, conns, PIPELINE_DEPTH,
                             pipe_batches, rounds)
    asynced = _measure(AsyncTwemcacheServer, conns, PIPELINE_DEPTH,
                       pipe_batches, rounds)
    speedup = asynced / blocking

    table = Table(
        f"serving surface throughput ({conns} connections, "
        f"scale {scale})",
        ["surface", "connections", "pipeline_depth", "ops_per_sec",
         "vs_blocking"])
    table.add_row("threaded + blocking client", conns, 1,
                  round(blocking), 1.0)
    table.add_row("threaded + pipelined driver", conns, PIPELINE_DEPTH,
                  round(threaded_pipe), round(threaded_pipe / blocking, 2))
    table.add_row("asyncio + pipelined client", conns, PIPELINE_DEPTH,
                  round(asynced), round(speedup, 2))
    save_tables("async_serving", [table])

    assert speedup >= required, (
        f"pipelined asyncio surface {asynced:.0f} ops/s vs blocking "
        f"threaded surface {blocking:.0f} ops/s: {speedup:.2f}x < "
        f"{required}x at {conns} connections")


HERD = {"tiny": (8, 4), "default": (32, 8), "full": (64, 16)}


def test_single_flight_collapses_thundering_herds(save_tables):
    scale = bench_scale()
    threads_n, hot_keys = HERD.get(scale, HERD["default"])

    # -- sync Store: one herd of threads per hot key ------------------
    store = StoreConfig(64 << 20).policy("camp").thread_safe().build()
    herd_calls = []
    barrier = threading.Barrier(threads_n)

    def loader(key):
        herd_calls.append(key)
        time.sleep(0.002)
        return b"x" * 256

    def worker(worker_id):
        barrier.wait()
        for i in range(hot_keys):
            store.get_or_compute(f"hot{(worker_id + i) % hot_keys}", loader)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    sync_requests = threads_n * hot_keys
    sync_loads = store.loads

    # -- AsyncStore: every awaiter arrives at once --------------------
    async def async_herd():
        astore = StoreConfig(64 << 20).policy("camp").build_async()

        async def aloader(key):
            await asyncio.sleep(0.002)
            return b"y" * 256

        await asyncio.gather(*[
            astore.get_or_compute(f"hot{i % hot_keys}", aloader)
            for i in range(threads_n * hot_keys)])
        return astore

    astore = asyncio.run(async_herd())
    async_requests = threads_n * hot_keys

    table = Table(
        f"single-flight coalescing ({threads_n} concurrent callers, "
        f"{hot_keys} hot keys, scale {scale})",
        ["store", "concurrent_requests", "hot_keys", "loader_calls",
         "loads_per_key", "coalesced"])
    table.add_row("Store (threads)", sync_requests, hot_keys, sync_loads,
                  round(sync_loads / hot_keys, 2), store.coalesced_loads)
    table.add_row("AsyncStore", async_requests, hot_keys, astore.loads,
                  round(astore.loads / hot_keys, 2),
                  astore.coalesced_loads)
    save_tables("async_coalescing", [table])

    # the redesign's guarantee: one loader call per hot key, total —
    # N callers of one missing key share one load + admission decision
    assert sync_loads == hot_keys, (
        f"sync store paid {sync_loads} loads for {hot_keys} hot keys")
    assert astore.loads == hot_keys, (
        f"async store paid {astore.loads} loads for {hot_keys} hot keys")
    assert store.coalesced_loads > 0
    assert astore.coalesced_loads == async_requests - hot_keys
