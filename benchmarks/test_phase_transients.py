"""Companion to Figure 6 — windowed cost-miss transients at phase switches.

The occupancy plots (6c/6d) show *what* lingers in memory; this bench
shows what the applications *feel*: the windowed cost-miss ratio spikes at
every phase boundary (a brand-new key population) and recovers as the
policy adapts.  CAMP's recovery must leave it below LRU within each phase
— adaptation without giving up the cost advantage (the section 3.1 claim).
"""

from conftest import run_once

from repro.analysis import Table
from repro.cache import KVS, WindowedMetrics
from repro.core import CampPolicy, LruPolicy
from repro.experiments.data import evolving_trace, get_scale
from repro.experiments.fig6 import phase_unique_bytes


def run_transients(scale):
    config = get_scale(scale)
    trace = evolving_trace(scale)
    capacity = max(1, int(phase_unique_bytes(scale) * 0.5))
    window = max(200, config.phase_requests // 10)
    series = {}
    for name, policy in (("camp", CampPolicy(precision=5)),
                         ("lru", LruPolicy())):
        kvs = KVS(capacity, policy)
        metrics = WindowedMetrics(window=window)
        for record in trace:
            hit = kvs.get(record.key)
            metrics.record(record.key, record.cost, hit)
            if not hit:
                kvs.put(record.key, record.size, record.cost)
        metrics.finish()
        series[name] = metrics.cost_miss_series()
    table = Table(
        "Figure-6 companion — windowed cost-miss ratio across phase "
        "switches (cache = 0.5 of one phase)",
        ["window_end", "camp", "lru"])
    for (end, camp_value), (_, lru_value) in zip(series["camp"],
                                                 series["lru"]):
        table.add_row(end, camp_value, lru_value)
    return [table], config


def test_phase_transients(benchmark, scale, save_tables):
    tables_and_config = run_once(benchmark, lambda: run_transients(scale))
    tables, config = tables_and_config
    save_tables("phase_transients", tables)
    table = tables[0]
    camp = table.column("camp")
    lru = table.column("lru")
    ends = table.column("window_end")
    # steady-state windows (second half of each phase): CAMP below LRU
    phase_len = config.phase_requests
    steady_wins = steady_total = 0
    for end, camp_value, lru_value in zip(ends, camp, lru):
        position_in_phase = end % phase_len
        if position_in_phase == 0 or position_in_phase > phase_len // 2:
            steady_total += 1
            steady_wins += camp_value <= lru_value + 1e-9
    assert steady_total > 0
    assert steady_wins / steady_total >= 0.8, \
        f"CAMP won only {steady_wins}/{steady_total} steady windows"
