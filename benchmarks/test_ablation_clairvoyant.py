"""Ablation — online policies vs clairvoyant baselines.

Places CAMP on the LRU↔OPT spectrum: Belady's MIN (recency-optimal,
cost-blind) and the cost-aware offline greedy bound what any online
policy could achieve.  The competitive-ratio story (GDS is k-competitive,
CAMP (1+ε)k) predicts CAMP lands between LRU and the clairvoyant greedy
on the cost metric — measured here.
"""

from conftest import run_once

from repro.analysis import Table
from repro.core import (
    BeladyPolicy,
    CampPolicy,
    LruPolicy,
    OfflineGreedyPolicy,
)
from repro.experiments.data import get_scale, primary_trace
from repro.sim import run_policy_on_trace


def run_clairvoyant(scale):
    config = get_scale(scale)
    trace = primary_trace(scale)
    table = Table(
        "Ablation — online vs clairvoyant (primary trace)",
        ["cache_size_ratio", "lru_cost", "camp_cost", "offline_greedy_cost",
         "lru_miss", "camp_miss", "belady_miss"])
    for ratio in config.cache_ratios:
        lru = run_policy_on_trace(LruPolicy(), trace, ratio)
        camp = run_policy_on_trace(CampPolicy(precision=5), trace, ratio)
        greedy = run_policy_on_trace(OfflineGreedyPolicy.from_trace(trace),
                                     trace, ratio)
        belady = run_policy_on_trace(BeladyPolicy.from_trace(trace),
                                     trace, ratio)
        table.add_row(ratio, lru.cost_miss_ratio, camp.cost_miss_ratio,
                      greedy.cost_miss_ratio, lru.miss_rate, camp.miss_rate,
                      belady.miss_rate)
    return [table]


def test_clairvoyant_ablation(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_clairvoyant(scale))
    save_tables("ablation_clairvoyant", tables)
    table = tables[0]
    lru_cost = table.column("lru_cost")
    camp_cost = table.column("camp_cost")
    greedy_cost = table.column("offline_greedy_cost")
    # CAMP sits between LRU and the clairvoyant cost-aware bound
    assert all(c < l for c, l in zip(camp_cost, lru_cost))
    wins = sum(g <= c + 1e-9 for g, c in zip(greedy_cost, camp_cost))
    assert wins >= len(camp_cost) - 1
    # Belady's miss rate lower-bounds the recency policies' miss rates
    belady_miss = table.column("belady_miss")
    lru_miss = table.column("lru_miss")
    assert all(b <= l + 1e-9 for b, l in zip(belady_miss, lru_miss))
