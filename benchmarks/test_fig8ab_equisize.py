"""Figures 8a/8b — equi-sized pairs, log-uniform costs.

8a: CAMP has the best cost-miss ratio; the range-partitioned Pooled LRU is
competitive at small caches but falls behind at large ones.
8b: CAMP's miss rate is slightly *worse* than LRU's at limited memory —
the deliberate price of favoring expensive pairs.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig8ab(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig8ab", scale))
    save_tables("fig8ab", tables)
    cost_table, miss_table = tables

    camp_cost = cost_table.column("camp(p=5)")
    lru_cost = cost_table.column("lru")
    pooled_cost = cost_table.column("pooled-range")
    # 8a: CAMP dominates on the cost metric
    assert all(c <= l for c, l in zip(camp_cost, lru_cost))
    assert all(c <= p for c, p in zip(camp_cost, pooled_cost))
    # pooled partitioning hurts at the largest cache (vs LRU)
    assert pooled_cost[-1] >= lru_cost[-1] or pooled_cost[-1] >= camp_cost[-1]

    # 8b: CAMP trades some raw miss rate at limited memory
    camp_miss = miss_table.column("camp(p=5)")
    lru_miss = miss_table.column("lru")
    assert camp_miss[0] >= lru_miss[0]
