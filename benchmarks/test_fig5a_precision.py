"""Figure 5a — cost-miss ratio vs precision: flat curves, CAMP ≈ GDS."""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5a(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig5a", scale))
    save_tables("fig5a", tables)
    table = tables[0]
    for column_name in table.columns[1:]:
        values = table.column(column_name)
        # "almost no variation in cost-miss ratios for different precisions"
        spread = max(values) - min(values)
        assert spread < 0.05, f"{column_name}: spread {spread:.4f}"
        # "almost no difference between CAMP and standard GDS" — the last
        # row is the no-rounding (GDS-equivalent) configuration
        gds_value = values[-1]
        assert abs(values[0] - gds_value) < 0.05
