"""Figure 8c — queue count vs precision across trace shapes.

Expected: at high/infinite precision the equi-size/many-cost trace builds
far more queues than the three-cost trace; aggressive rounding collapses
both counts toward each other.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig8c(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig8c", scale))
    save_tables("fig8c", tables)
    table = tables[0]
    equi = table.column("equisize_queues")
    three = table.column("threecost_queues")
    # at infinite precision (last row) the many-cost trace needs more queues
    assert equi[-1] > three[-1]
    # rounding shrinks the gap: the ratio at the lowest precision is smaller
    gap_low = equi[0] - three[0]
    gap_high = equi[-1] - three[-1]
    assert gap_low < gap_high
    # queue counts grow with precision for the many-cost trace
    assert equi[-1] >= equi[0]
