"""Ablation — heap backend (8-ary/2-ary implicit, pairing, Fibonacci).

Reproduces the design decision the paper took from Larkin/Sen/Tarjan: the
8-ary implicit heap is a solid default for both GDS and CAMP.  The key
structural check: CAMP's visit counts are a small fraction of GDS's under
*every* backend — the savings come from the algorithm, not the heap.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_heap_ablation(benchmark, scale, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("ablation-heap", scale))
    save_tables("ablation_heap", tables)
    table = tables[0]
    visits = {(row[0], row[1]): row[2] for row in table.rows}
    for backend in ("dary-8", "dary-2", "pairing", "fibonacci"):
        assert visits[("camp", backend)] < visits[("gds", backend)]
    # identical eviction decisions across backends -> identical quality
    costs = {(row[0], row[1]): row[4] for row in table.rows}
    reference = costs[("gds", "dary-8")]
    for backend in ("dary-2", "pairing", "fibonacci"):
        assert abs(costs[("gds", backend)] - reference) < 1e-12
