"""Ablation — hash-partitioned CAMP (section 4.1's vertical scaling).

Sharding approximates single-instance CAMP: the cost-miss ratio should
degrade only mildly as shards are added, while the striped per-shard
locks must actually pay off under concurrency — shards=4/8 beat the
single-mutex configuration on the threaded driver (the seed measured
sharding on a single-threaded replay, where it could only lose).
"""

from conftest import bench_scale, run_once

from repro.experiments import run_experiment


def test_sharding_ablation(benchmark, scale, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("ablation-sharding", scale))
    save_tables("ablation_sharding", tables)
    table = tables[0]
    quality = {row[0]: row[2] for row in table.rows}   # cost-miss ratio
    single = quality[1]
    for shards, cost in quality.items():
        assert cost <= single + 0.1, \
            f"{shards} shards degraded cost-miss ratio to {cost:.4f}"

    threaded = {row[0]: row[3] for row in table.rows}
    if bench_scale() == "tiny":
        # a tiny trace split 8 ways is a few hundred events per thread:
        # thread start/join fixed costs swamp contention, so the timing
        # leg is informational only at smoke scale
        return
    for shards in (4, 8):
        assert threaded[shards] < threaded[1], (
            f"striped locks must beat one mutex under threads: "
            f"{shards} shards took {threaded[shards]:.3f}s vs "
            f"{threaded[1]:.3f}s for 1")
