"""Ablation — hash-partitioned CAMP (section 4.1's vertical scaling).

Sharding approximates single-instance CAMP: the cost-miss ratio should
degrade only mildly as shards are added.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_sharding_ablation(benchmark, scale, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("ablation-sharding", scale))
    save_tables("ablation_sharding", tables)
    table = tables[0]
    by_shards = {row[0]: row[2] for row in table.rows}   # cost-miss ratio
    single = by_shards[1]
    for shards, cost in by_shards.items():
        assert cost <= single + 0.1, \
            f"{shards} shards degraded cost-miss ratio to {cost:.4f}"
