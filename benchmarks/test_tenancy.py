"""Multi-tenant arbitration benchmark — the "tenancy" experiment.

Regenerates the static-vs-shared-vs-arbitrated comparison and asserts the
PR's headline claim: on the two-tenant mixed workload (expensive skewed
tenant + scan-heavy cheap tenant) the ghost-driven arbiter's total miss
cost is at most the static 50/50 split's and at most the single shared
CAMP pool's, while the high-miss-cost tenant ends up holding most of the
budget.
"""

from conftest import run_once

from repro.experiments.tenancy import run as run_tenancy


def test_tenancy_arbitration(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_tenancy(scale))
    save_tables("tenancy_arbitration", tables)
    comparison = tables[0]
    costs = dict(zip(comparison.column("scheme"),
                     comparison.column("total_miss_cost")))
    assert costs["arbitrated"] <= costs["static-50/50"], costs
    assert costs["arbitrated"] <= costs["shared-camp"], costs
    shares = dict(zip(comparison.column("scheme"),
                      comparison.column("ads_share")))
    # the expensive tenant ends up with most of the budget, within bounds
    assert 0.5 < shares["arbitrated"] <= 0.9 + 1e-9
    # the allocation timeline shows bytes actually moving
    timeline = tables[2]
    ads_series = timeline.column("ads")
    assert ads_series[-1] > ads_series[0]
