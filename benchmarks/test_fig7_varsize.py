"""Figure 7 — variable sizes, constant cost: CAMP's size-awareness wins.

Expected: CAMP's miss rate is below LRU's at every cache size (it keeps
many small pairs instead of few large ones), and Pooled LRU — one pool,
since there is one cost value — coincides with LRU.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig7(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig7", scale))
    save_tables("fig7", tables)
    table = tables[0]
    camp = table.column("camp(p=5)")
    lru = table.column("lru")
    pooled = table.column("pooled(1 pool)")
    assert all(c <= l for c, l in zip(camp, lru))
    assert any(c < l for c, l in zip(camp, lru))
    # single-pool Pooled LRU == LRU (same decisions, same metric)
    assert all(abs(p - l) < 1e-9 for p, l in zip(pooled, lru))
