"""Cluster chaos drill: seeded faults under load, healing gated.

One drill (the "cluster-chaos" experiment's
:func:`~repro.experiments.chaos.run_chaos_drill` — a real 3-node
subprocess fleet walked through a deterministic
:class:`~repro.faults.FaultPlan` schedule: SIGKILL one node, SIGSTOP a
second mid-flight, SIGCONT, restart) backs three gates:

1. **Zero client-visible errors.**  Crashes, stalls, and rejoins
   degrade — replica reads, narrower writes, deadline-bounded misses —
   they never raise out of the client.
2. **Acked writes survive healing.**  Every write acked during the
   drill (stored on >=1 holder) reads back byte-identical with its
   exact CAMP cost after hint replay + anti-entropy.
3. **Replicas converge.**  After the sweep, every key's (cost, crc32)
   digest is identical across all of its holders — including keys no
   read ever touched — and the drill demonstrably exercised the
   machinery (hints were written *and* replayed).

Tables are archived to ``benchmarks/results/cluster_chaos.txt``.
"""

import pytest
from conftest import bench_scale

from repro.experiments.chaos import run_chaos_drill, tables_for


@pytest.fixture(scope="module")
def drill():
    return run_chaos_drill(bench_scale())


def test_chaos_drill_zero_client_errors_and_archives(drill, save_tables):
    save_tables("cluster_chaos", tables_for(drill))
    assert drill.client_errors == 0, (
        f"drill surfaced {drill.client_errors} client-visible errors; "
        f"faults must degrade, never raise")
    # the deadline budget kept faulted rounds bounded: p99 stays under
    # the budget plus one node timeout plus healing slack, instead of
    # stacking a full timeout per down holder
    assert drill.p50_ms <= drill.p99_ms


def test_acked_writes_survive_healing(drill):
    assert drill.acked_keys > 0
    assert drill.readback_intact == drill.acked_keys, (
        f"{drill.acked_keys - drill.readback_intact}/{drill.acked_keys} "
        f"acked writes lost or corrupted after healing")


def test_replicas_converge_after_replay_and_sweep(drill):
    # the schedule actually exercised hinted handoff
    assert drill.hints_written > 0, (
        "no hints parked — the kill window wrote nothing to the victim")
    assert drill.hints_replayed > 0, (
        "hints were parked but never replayed to the revived node")
    assert drill.digest_nodes == 3, (
        f"only {drill.digest_nodes}/3 nodes answered the digest sweep")
    assert drill.divergent_after == 0, (
        f"{drill.divergent_after} keys still divergent across replicas "
        f"after hint replay + anti-entropy")
    assert drill.healed
