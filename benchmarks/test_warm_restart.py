"""Warm-restart benchmark: the durability claims, measured and enforced.

Three guards on ``repro.persistence``:

1. **Warm beats cold** — on both paper workload shapes, a CAMP store
   recovered from snapshot+log pays strictly less suffix miss cost than
   a cold restart (the acceptance bar for the subsystem);
2. **Warm equals uninterrupted** — the restored store is
   eviction-equivalent to a control that never restarted, so its suffix
   cost matches the lower bound exactly;
3. **Throughput floors** — snapshot save and recovery both clear a
   conservative items/second floor, so the durable path cannot silently
   rot into something too slow to run inside a serving process.
"""

from conftest import RESULTS_DIR, bench_scale

from repro.experiments import run_experiment, warm_restart

#: items/second floors for snapshot save and full recovery.  Measured
#: locally at >30k items/s for both paths on the default scale; the
#: floors sit far below that because tier-1 runs benchmarks/ on noisy
#: shared runners — they catch accidental O(n^2) regressions or a
#: suddenly-sync-everything fsync default, not honest slowdowns.
REQUIRED_ITEMS_PER_S = {"tiny": 1_000, "default": 2_000, "full": 4_000}


def test_warm_restart_beats_cold_and_matches_control():
    scale = bench_scale()
    required_rate = REQUIRED_ITEMS_PER_S.get(
        scale, REQUIRED_ITEMS_PER_S["default"])
    tables = run_experiment("warm-restart", scale=scale)
    text = "\n".join(table.to_ascii() for table in tables)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "warm_restart.txt").write_text(text, encoding="utf-8")

    for trace in warm_restart.warm_restart_traces(scale):
        outcome = warm_restart.run_restart_comparison(trace, "camp")
        warm = outcome.cost("warm")
        cold = outcome.cost("cold")
        control = outcome.cost("uninterrupted")
        assert warm < cold, (
            f"{trace.name}: warm restart cost {warm} is not strictly "
            f"below cold restart cost {cold}")
        assert warm == control, (
            f"{trace.name}: warm restart cost {warm} diverges from the "
            f"uninterrupted control {control} — the restored CAMP is "
            f"no longer eviction-equivalent")

        save_rate = (outcome.items_at_restart / outcome.save_seconds
                     if outcome.save_seconds else float("inf"))
        recover_rate = (outcome.restored_items / outcome.recover_seconds
                        if outcome.recover_seconds else float("inf"))
        assert save_rate >= required_rate, (
            f"{trace.name}: snapshot save at {save_rate:.0f} items/s "
            f"(floor {required_rate})")
        assert recover_rate >= required_rate, (
            f"{trace.name}: recovery at {recover_rate:.0f} items/s "
            f"(floor {required_rate})")
