"""Hot-path regression gate (PR 5): simulate() throughput floors.

Two pipelines run the same trace at the same capacity:

* **reference** — the seed's per-request shape, preserved verbatim: a
  ``Store.access`` call per record (one ``AccessResult`` allocation per
  request), record-attribute loads in the loop, dict-probe outcome
  tallies, and — for CAMP — the frozen pre-optimization policy
  (:class:`repro.core.camp_reference.ReferenceCampPolicy`);
* **optimized** — today's ``simulate()``: precompiled trace tape,
  ``access_outcome`` (no per-request allocation), prebound outcome
  counters, and the rewritten :class:`~repro.core.camp.CampPolicy` with
  stats accounting off.

The gate enforces a speedup floor (the tentpole target is >= 1.8x for
CAMP at default scale) plus absolute ops/s floors, and pins decision
equivalence: the optimized CAMP must make byte-identical eviction
decisions to the reference on the full figure trace.  Results are
archived in ``results/hotpath.txt``.
"""

import gc
import time

from conftest import bench_scale, run_once

from repro.analysis import Table
from repro.cache.kvs import KVS
from repro.core import CampPolicy, LruPolicy
from repro.core.camp_reference import ReferenceCampPolicy
from repro.experiments.data import primary_trace
from repro.sim import simulate

RATIO = 0.25
REPEATS = 3

#: speedup floors (reference seconds / optimized seconds); generous for
#: the tiny smoke scale, where a 5k-request run is timing-noise-bound
SPEEDUP_FLOORS = {"camp": {"tiny": 1.3, "default": 1.8, "full": 1.8},
                  "lru": {"tiny": 1.2, "default": 1.5, "full": 1.5}}

#: absolute optimized-simulate() floors, requests per second
OPS_FLOORS = {"camp": 50_000, "lru": 100_000}


def _best_seconds(fn, repeats=REPEATS):
    """Min wall time over repeats, cyclic GC off (as timeit does)."""
    best = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            seconds = fn()
            best = seconds if best is None else min(best, seconds)
    finally:
        if was_enabled:
            gc.enable()
    return best


class _SeedNoLock:
    """The seed's no-op lock: entered and exited on every request."""

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _seed_access(backend, metrics, lock, key, size, cost):
    """The seed's ``Store.access``, verbatim shape: lock ceremony on a
    no-op lock, keyword-built ``AccessResult`` per request (hit or
    miss), metrics fed through the same branch structure."""
    from repro.cache.outcomes import AccessResult, Outcome
    with lock:
        outcome = backend.lookup(key)
        hit = outcome is Outcome.HIT
        if metrics is not None:
            metrics.record(key, size, cost, hit)
        if hit:
            return AccessResult(key, outcome, size=size, cost=cost,
                                resident=True)
        expired = outcome is Outcome.EXPIRED
        outcome = backend.insert(key, size, cost, ttl=None)
        return AccessResult(key, outcome, size=size, cost=cost,
                            resident=outcome is Outcome.MISS_INSERTED,
                            expired=expired)


def _reference_simulate_seconds(policy, trace, capacity):
    """The seed simulate() pipeline, shape for shape: per-record
    attribute loads, the seed access path above, dict-probe tallies."""
    from repro.cache.metrics import SimulationMetrics
    kvs = KVS(capacity, policy)
    metrics = SimulationMetrics()
    lock = _SeedNoLock()
    tallies = {}
    started = time.perf_counter()
    for record in trace:
        result = _seed_access(kvs, metrics, lock, record.key, record.size,
                              record.cost)
        outcome = result.outcome
        tallies[outcome] = tallies.get(outcome, 0) + 1
    return time.perf_counter() - started


def _optimized_simulate_seconds(policy, trace, capacity):
    return simulate(KVS(capacity, policy), trace).wall_seconds


def _eviction_log(policy, trace, capacity):
    kvs = KVS(capacity, policy)
    log = []

    class _Recorder:
        def on_insert(self, item):
            pass

        def on_evict(self, item, explicit):
            log.append((item.key, explicit))

    kvs.add_listener(_Recorder())
    outcomes = [simulate(kvs, trace)]  # one full run through the store
    return log, outcomes[0]


def test_hotpath(benchmark, scale, save_tables):
    trace = primary_trace(scale)
    capacity = trace.capacity_for_ratio(RATIO)
    pipelines = (
        ("camp",
         lambda: ReferenceCampPolicy(precision=5),
         lambda: CampPolicy(precision=5, stats=False)),
        ("lru", LruPolicy, LruPolicy),
    )

    def measure():
        rows = []
        for name, reference_factory, optimized_factory in pipelines:
            reference = _best_seconds(
                lambda: _reference_simulate_seconds(
                    reference_factory(), trace, capacity))
            optimized = _best_seconds(
                lambda: _optimized_simulate_seconds(
                    optimized_factory(), trace, capacity))
            ops = len(trace) / optimized
            rows.append((name, reference, optimized,
                         reference / optimized, ops, OPS_FLOORS[name],
                         SPEEDUP_FLOORS[name][bench_scale()]))
        return rows

    rows = run_once(benchmark, measure)
    table = Table(
        "Hot path — seed-shaped pipeline vs optimized simulate() "
        "(ratio %.2f, best of %d, GC off)" % (RATIO, REPEATS),
        ["policy", "reference_s", "optimized_s", "speedup", "ops_per_s",
         "ops_floor", "speedup_floor"])
    for row in rows:
        table.add_row(*row)
    save_tables("hotpath", [table])

    for name, reference, optimized, speedup, ops, ops_floor, floor in rows:
        assert speedup >= floor, (
            f"{name}: optimized simulate() is only {speedup:.2f}x the "
            f"seed-shaped pipeline (floor {floor}x)")
        assert ops >= ops_floor, (
            f"{name}: {ops:.0f} ops/s under the {ops_floor} floor")


def test_hotpath_decision_equivalence(scale):
    """Optimized CAMP evicts byte-identically to the frozen seed CAMP
    on the full figure trace (>= 10k requests at default scale)."""
    trace = primary_trace(scale)
    capacity = trace.capacity_for_ratio(RATIO)
    for stats in (False, True):
        optimized_log, optimized_result = _eviction_log(
            CampPolicy(precision=5, stats=stats), trace, capacity)
        reference_log, reference_result = _eviction_log(
            ReferenceCampPolicy(precision=5), trace, capacity)
        assert optimized_log == reference_log
        assert optimized_result.outcomes == reference_result.outcomes
        assert optimized_result.miss_rate == reference_result.miss_rate
