"""Shared benchmark plumbing.

Each benchmark module regenerates one paper table/figure at the scale in
``REPRO_BENCH_SCALE`` (default ``default``; set ``tiny`` for a smoke run or
``full`` for paper-scale traces).  Regenerated tables are printed to the
terminal and archived under ``benchmarks/results/``.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def save_tables():
    """Callable(name, tables): print and archive an experiment's tables."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name, tables):
        text = "\n".join(table.to_ascii() for table in tables)
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
        return tables

    return _save


def run_once(benchmark, fn):
    """Time a single full run of ``fn`` (experiments are too slow for
    multi-round calibration) and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
