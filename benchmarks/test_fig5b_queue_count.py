"""Figure 5b — number of LRU queues vs precision.

Expected: bounded above by Proposition 2, at least a handful of queues
even at precision 1 ("CAMP has at least five non-empty queues and
outperforms LRU that has only one queue"), non-decreasing in precision.
"""

from conftest import run_once

from repro.core import distinct_value_bound
from repro.experiments import run_experiment


def test_fig5b(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig5b", scale))
    save_tables("fig5b", tables)
    table = tables[0]
    for column_name in table.columns[1:]:
        values = table.column(column_name)
        assert values[0] >= 2           # more queues than LRU's single one
        # the count is an end-of-trace *snapshot* of non-empty queues, so
        # it can wobble by a queue or two across precisions; it must not
        # shrink materially as precision grows
        assert values[-1] >= values[0] - 2
        # Prop 2 bound with a conservative U (max integer ratio is bounded
        # by max cost 10_000 x max size / min size at these workloads)
        assert values[0] <= distinct_value_bound(10_000 * 16, 1)
