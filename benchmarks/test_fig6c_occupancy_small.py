"""Figure 6c — TF1 cache occupancy over time, cache size ratio 0.25.

Expected shape: LRU purges TF1 fastest; CAMP evicts most of TF1 promptly
but holds a small high-ratio tail longer; all three eventually converge
toward zero as later phases churn.
"""

from conftest import run_once

from repro.experiments import run_experiment


def _final(table, column):
    return table.column(column)[-1]


def _first_zero_index(values):
    for i, v in enumerate(values):
        if v == 0.0:
            return i
    return len(values)


def test_fig6c(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig6c", scale))
    save_tables("fig6c", tables)
    table = tables[0]
    lru = table.column("lru_tf1_fraction")
    camp = table.column("camp(p=5)_tf1_fraction")
    # LRU reaches zero no later than CAMP ("LRU is the quickest")
    assert _first_zero_index(lru) <= _first_zero_index(camp)
    # at this small cache everything is eventually purged (paper: CAMP's
    # leftover tail is tiny, <2% of memory)
    assert _final(table, "lru_tf1_fraction") == 0.0
    assert _final(table, "camp(p=5)_tf1_fraction") <= 0.02
