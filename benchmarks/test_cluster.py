"""Live cluster tier: scaling, kill-one-node drill, warm rejoin — gated.

One measurement (the "cluster-serving" experiment's
:func:`~repro.experiments.cluster_serving.run_cluster_comparison`,
real server subprocesses + out-of-process loadgen drivers) backs three
gates:

1. **Throughput scaling 1 -> 3 server processes.**  Three nodes are
   three GILs; the bar is hardware-aware
   (:func:`~repro.experiments.cluster_serving.required_speedup`):
   >=1.8x where >=4 cores can actually run the fleet in parallel, a
   no-collapse floor on starved hosts (tier-1 `pytest -x` collects
   this file, and CI runners vary) — the archived table always reports
   the measured ratio plus p50/p99 batch latency.
2. **Kill drill.**  SIGKILL one of three nodes (replicas=2): every key
   stays servable — replica read or recompute-and-set — with zero
   client-visible errors, exactly like
   `CooperativeCluster`'s remote-hit semantics but over real sockets.
3. **Warm rejoin.**  The killed node restarts from its snapshot and
   must rejoin warm: items recovered and their CAMP costs read back
   (cost-aware ``gets``) byte-for-byte as written.

Tables are archived to ``benchmarks/results/cluster_serving.txt``.
"""

import pytest
from conftest import bench_scale

from repro.experiments.cluster_serving import (
    required_speedup,
    run_cluster_comparison,
    tables_for,
)


@pytest.fixture(scope="module")
def comparison():
    return run_cluster_comparison(bench_scale())


def test_cluster_throughput_scales_and_archives(comparison, save_tables):
    save_tables("cluster_serving", tables_for(comparison))
    for run in comparison.scaling:
        assert run.errors == 0, (
            f"{run.nodes}-node run surfaced {run.errors} driver errors")
        assert run.p50_ms <= run.p99_ms
    required = required_speedup(comparison.scale)
    assert comparison.speedup >= required, (
        f"3-node cluster at {comparison.speedup:.2f}x the 1-node "
        f"throughput, below the {required}x bar for this host")


def test_kill_one_node_keeps_every_key_servable(comparison):
    drill = comparison.drill
    assert drill.client_errors == 0, (
        f"kill drill surfaced {drill.client_errors} client-visible "
        f"errors; a dead node must degrade to replica reads, not raise")
    assert drill.servable == drill.keys_total, (
        f"only {drill.servable}/{drill.keys_total} keys servable "
        f"after the kill")
    # the dead primary's keys were actually carried by replicas (not
    # all recomputed from scratch)
    assert drill.replica_hits > 0
    # once recomputes landed, a second sweep finds everything in cache
    assert drill.second_pass_found == drill.keys_total


def test_bounced_node_rejoins_warm_with_camp_state(comparison):
    rejoin = comparison.rejoin
    assert rejoin.recovered_items > 0, "snapshot restore brought nothing"
    assert rejoin.found > 0, "bounced node serves none of its keys"
    assert rejoin.costs_intact == rejoin.found, (
        f"{rejoin.found - rejoin.costs_intact} keys came back with "
        f"wrong cost/value — CAMP priorities corrupted across the "
        f"bounce")
    assert rejoin.warm
