"""Decision-level agreement between CAMP and GDS as precision varies.

The paper says CAMP's decisions are "essentially equivalent" to GDS's at
the highest precision — here that is measured directly: the fraction of
eviction positions on which the two policies choose the same victim, and
whether the streams are bit-identical at infinite precision.
"""

from conftest import run_once

from repro.analysis import Table
from repro.core import CampPolicy, GdsPolicy, LruPolicy
from repro.experiments.data import primary_trace
from repro.sim import eviction_agreement

RESIDENT = 200


def run_agreement(scale):
    trace = list(primary_trace(scale))
    table = Table(
        "Decision agreement with GDS (slot-bounded cache, 200 residents)",
        ["policy", "positional_agreement", "resident_jaccard", "identical"])
    configs = [("camp(p=1)", CampPolicy(precision=1)),
               ("camp(p=3)", CampPolicy(precision=3)),
               ("camp(p=5)", CampPolicy(precision=5)),
               ("camp(inf)", CampPolicy(precision=None)),
               ("lru", LruPolicy())]
    for name, policy in configs:
        result = eviction_agreement(policy, GdsPolicy(), trace,
                                    max_resident=RESIDENT)
        table.add_row(name, result.positional_agreement,
                      result.resident_jaccard, str(result.identical))
    return [table]


def test_decision_agreement(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_agreement(scale))
    save_tables("decision_agreement", tables)
    table = tables[0]
    rows = {row[0]: row for row in table.rows}
    # infinite precision: decision-for-decision identical to GDS
    assert rows["camp(inf)"][3] == "True"
    # agreement monotone in precision, and far above LRU's
    assert rows["camp(p=1)"][1] <= rows["camp(p=5)"][1] <= 1.0
    assert rows["camp(p=5)"][1] > rows["lru"][1]
