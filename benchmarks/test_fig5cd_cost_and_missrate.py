"""Figures 5c/5d — the headline comparison on the three-cost trace.

5c (cost-miss ratio): CAMP < cost-partitioned Pooled LRU < LRU at every
cache size; uniform-partitioned Pooled LRU ≈ LRU; Pooled-cost approaches
CAMP as the cache grows.
5d (miss rate): cost-partitioned Pooled LRU is drastically worse than
everyone (its cheap pool never hits), and stays bad even at large caches.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig5cd(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig5cd", scale))
    save_tables("fig5cd", tables)
    cost_table, miss_table = tables

    camp = cost_table.column("camp(p=5)")
    lru = cost_table.column("lru")
    pooled_cost = cost_table.column("pooled-cost")
    pooled_uniform = cost_table.column("pooled-uniform")

    # 5c orderings
    assert all(c < l for c, l in zip(camp, lru)), "CAMP must beat LRU"
    assert all(c <= p for c, p in zip(camp, pooled_cost)), \
        "CAMP must beat the cost-partitioned oracle"
    assert all(p < l for p, l in zip(pooled_cost, lru)), \
        "cost partitioning must improve on LRU"
    # uniform pools track LRU closely
    assert all(abs(u - l) < 0.08 for u, l in
               zip(pooled_uniform, lru))

    # 5d: the cost-partitioned pools pay with a far worse miss rate, and
    # the penalty persists at the largest cache size
    miss_pooled = miss_table.column("pooled-cost")
    miss_lru = miss_table.column("lru")
    assert miss_pooled[-1] > miss_lru[-1] + 0.2
