"""Ablation — CAMP vs GD-Wheel vs GDSF (section 5's closest relatives).

GD-Wheel approximates the same Greedy Dual priorities with cost wheels, so
its cost-miss ratio should land near CAMP's and well below LRU's; GDSF
adds frequency and also beats LRU on cost.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_competitor_ablation(benchmark, scale, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("ablation-competitors", scale))
    save_tables("ablation_competitors", tables)
    table = tables[0]
    camp = table.column("camp(p=5)")
    wheel = table.column("gd-wheel")
    gdsf = table.column("gdsf")
    lru = table.column("lru")
    # every cost-aware policy beats LRU on most cache sizes
    for series in (camp, wheel, gdsf):
        wins = sum(s < l for s, l in zip(series, lru))
        assert wins >= len(lru) - 1
    # CAMP is never far behind GD-Wheel (the paper argues CAMP's rounding
    # is the better-controlled approximation)
    assert sum(c <= w * 1.5 + 1e-9 for c, w in zip(camp, wheel)) >= \
        len(camp) - 1
