"""Tiered-store benchmark: the victim-tier claims, measured and enforced.

Three guards on ``repro.tiering``:

1. **The tier pays for itself** — on a skewed trace whose footprint
   dwarfs DRAM, a tiered store's total miss cost (recompute cost plus
   discounted disk-service cost) lands at least 20% below a memory-only
   store at the *same* DRAM budget;
2. **The demotion filter earns its keep** — the cost-density filter
   strictly beats demote-everything on tier bytes written per unit of
   miss cost saved, so disk write traffic buys cost savings instead of
   burying the tier in low-density items;
3. **Crash recovery works** — after the filtered store's process dies
   without a clean shutdown, a fresh ``DiskTier`` rebuilds a non-empty
   index from the segment files and every probed key actually serves.
"""

from conftest import RESULTS_DIR, bench_scale

from repro.experiments import run_experiment, tiered

#: the acceptance bar: the tiered store must cut total miss cost by
#: at least this fraction versus memory-only at equal DRAM budget
REQUIRED_SAVING = 0.20


def test_tiered_store_beats_memory_only_and_recovers():
    scale = bench_scale()
    tables = run_experiment("tiered", scale=scale)
    text = "\n".join(table.to_ascii() for table in tables)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "tiered_store.txt").write_text(text, encoding="utf-8")

    outcome = tiered.run_tiered_comparison(tiered.tiered_trace(scale))
    base = outcome.run_for("memory-only").total_miss_cost
    filtered = outcome.run_for("tiered-filtered")
    everything = outcome.run_for("tiered-all")

    saving = outcome.saving_vs_memory_only
    assert saving >= REQUIRED_SAVING, (
        f"tiered-filtered saves only {saving:.1%} of total miss cost vs "
        f"memory-only ({filtered.total_miss_cost:.0f} vs {base:.0f}); "
        f"the bar is {REQUIRED_SAVING:.0%}")

    # the tier must actually be in play, not a fluke of the baseline
    assert filtered.l2_hits + filtered.promoted_misses > 0, (
        "the filtered tier never served a request")
    assert filtered.demotions > 0, "no victims were ever demoted"
    assert filtered.filtered_drops > 0, (
        "the cost-density filter never rejected a victim — the "
        "tiered-all comparison is vacuous")

    filtered_efficiency = filtered.bytes_per_saved_cost(base)
    everything_efficiency = everything.bytes_per_saved_cost(base)
    assert filtered_efficiency < everything_efficiency, (
        f"demotion filter writes {filtered_efficiency:.2f} tier bytes "
        f"per saved cost unit, demote-everything {everything_efficiency:.2f}"
        f" — the filter must be strictly more write-efficient")

    assert outcome.recovered_records > 0, (
        "crash recovery rebuilt an empty index")
    assert outcome.recovery_probes > 0
    assert outcome.recovery_served == outcome.recovery_probes, (
        f"recovered tier served {outcome.recovery_served} of "
        f"{outcome.recovery_probes} probed keys")
