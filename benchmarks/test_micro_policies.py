"""Micro-benchmarks — per-operation cost of the policies themselves.

The paper's efficiency argument is about constant factors: CAMP's hit path
is an O(1) list move (plus rare heap updates) versus GDS's per-hit heap
update.  These benchmarks time the raw policy event loop with the store
and workload machinery stripped away, using multiple rounds for stable
numbers (unlike the one-shot figure regenerations).
"""

import random

import pytest

from repro.core import CampPolicy, GdsPolicy, GdWheelPolicy, LruPolicy

N_KEYS = 2_000
RESIDENT = 500
N_OPS = 20_000


def build_workload(seed=17):
    rng = random.Random(seed)
    sizes = {k: rng.choice([512, 1024, 2048, 4096]) for k in range(N_KEYS)}
    costs = {k: rng.choice([1, 100, 10_000]) for k in range(N_KEYS)}
    requests = [min(int(rng.paretovariate(1.2)), N_KEYS - 1)
                for _ in range(N_OPS)]
    return sizes, costs, requests


WORKLOAD = build_workload()


def drive(policy):
    sizes, costs, requests = WORKLOAD
    for key_id in requests:
        key = f"k{key_id}"
        if key in policy:
            policy.on_hit(key)
        else:
            while len(policy) >= RESIDENT:
                policy.pop_victim()
            policy.on_insert(key, sizes[key_id], costs[key_id])


@pytest.mark.parametrize("factory,name", [
    (lambda: LruPolicy(), "lru"),
    (lambda: CampPolicy(precision=5), "camp-p5"),
    (lambda: CampPolicy(precision=None), "camp-inf"),
    (lambda: GdsPolicy(), "gds"),
    (lambda: GdWheelPolicy(), "gd-wheel"),
], ids=lambda p: p if isinstance(p, str) else "")
def test_policy_event_loop(benchmark, factory, name):
    benchmark.group = "policy event loop (20k skewed requests)"
    benchmark.name = name
    benchmark(lambda: drive(factory()))


def test_camp_hit_path(benchmark):
    """Pure hit processing: every request is resident (the O(1) claim)."""
    benchmark.group = "hit path only"
    policy = CampPolicy(precision=5)
    for i in range(RESIDENT):
        policy.on_insert(f"k{i}", 1024, 100)
    keys = [f"k{i % RESIDENT}" for i in range(10_000)]

    def hits():
        for key in keys:
            policy.on_hit(key)

    benchmark(hits)


def test_gds_hit_path(benchmark):
    """GDS pays a heap update per hit — the contrast to CAMP above."""
    benchmark.group = "hit path only"
    policy = GdsPolicy()
    for i in range(RESIDENT):
        policy.on_insert(f"k{i}", 1024, 100)
    keys = [f"k{i % RESIDENT}" for i in range(10_000)]

    def hits():
        for key in keys:
            policy.on_hit(key)

    benchmark(hits)
