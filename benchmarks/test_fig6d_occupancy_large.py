"""Figure 6d — TF1 cache occupancy over time, cache size ratio 0.75.

Expected shape: with the larger cache CAMP retains a small tail of TF1's
most expensive pairs to the end of the run (the paper measures <0.6 % of
memory at 40 M requests), while LRU still purges everything quickly.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig6d(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig6d", scale))
    save_tables("fig6d", tables)
    table = tables[0]
    lru = table.column("lru_tf1_fraction")
    camp = table.column("camp(p=5)_tf1_fraction")
    # LRU fully purges TF1 well before the end
    assert lru[-1] == 0.0
    assert min(lru) == 0.0
    # CAMP holds TF1 longer than LRU does overall
    assert sum(camp) > sum(lru)
    # ... but the retained tail is small (paper: <0.6%; allow headroom at
    # reduced scale where one pair is a bigger slice of memory)
    assert camp[-1] <= 0.10
