"""Figures 6a/6b — sweeps on the phased (evolving) trace.

"The overall cost-miss ratio and miss rate trends remain the same as the
results of Figure 5": CAMP keeps its cost-miss advantage over LRU under
adversarial workload shifts.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig6ab(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig6ab", scale))
    save_tables("fig6ab", tables)
    cost_table, miss_table = tables
    camp = cost_table.column("camp(p=5)")
    lru = cost_table.column("lru")
    wins = sum(c < l for c, l in zip(camp, lru))
    assert wins >= len(camp) - 1, "CAMP must keep its Fig-5 cost advantage"
    # miss rates all sane
    for column_name in miss_table.columns[1:]:
        assert all(0 <= v <= 1 for v in miss_table.column(column_name))
