"""Table 1 — CAMP's rounding scheme, plus a rounding micro-benchmark."""

from conftest import run_once

from repro.core import round_to_precision
from repro.experiments import run_experiment


def test_table1(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("table1", scale))
    save_tables("table1", tables)
    table = tables[0]
    # the paper's exact values must reproduce
    rows = {row[0]: (row[1], row[2]) for row in table.rows}
    assert rows["101101011"] == ("101100000", "101100000")
    assert rows["000001010"] == ("000000000", "000001010")


def test_rounding_throughput(benchmark):
    """Single-call latency of round_to_precision (it sits on CAMP's hot
    path, once per insert/hit)."""
    values = list(range(1, 100_000, 37))

    def round_all():
        for value in values:
            round_to_precision(value, 5)

    benchmark(round_all)
