"""Figures 9a/9b/9c — the Twemcache-like implementation study.

9a: CAMP's cost-miss ratio beats LRU's, most visibly at small caches.
9b: CAMP's run time is comparable to LRU's (the paper's point is that the
replacement bookkeeping adds no material overhead).
9c: miss rate falls with cache size for both.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_fig9(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig9", scale))
    save_tables("fig9", tables)
    cost_table, time_table, miss_table = tables

    lru_cost = cost_table.column("lru")
    camp_cost = cost_table.column("camp(p=5)")
    wins = sum(c <= l for c, l in zip(camp_cost, lru_cost))
    assert wins >= len(camp_cost) - 1, "CAMP must win the cost metric"
    # the advantage is largest at the smallest cache
    assert camp_cost[0] < lru_cost[0]

    # 9b: CAMP within 3x of LRU's wall time (paper: comparable; we allow
    # slack for Python-level constant factors)
    for ratio_overhead in time_table.column("camp_over_lru"):
        assert ratio_overhead < 3.0

    # 9c: monotone-ish decreasing miss rate with cache size for both
    for name in ("lru", "camp(p=5)"):
        series = miss_table.column(name)
        assert series[-1] <= series[0]
