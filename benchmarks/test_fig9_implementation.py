"""Figures 9a/9b/9c — the Twemcache-like implementation study.

9a: CAMP's cost-miss ratio beats LRU's, most visibly at small caches.
9b: CAMP's per-operation service time is comparable to LRU's (the
    paper's point is that the replacement bookkeeping adds no material
    overhead).  The replay drives the full memcached protocol surface
    (LoopbackClient), and ``camp_over_lru`` compares per-get/per-set
    service times at a common operation mix, so the policies' different
    miss *decisions* (reported by 9a/9c) do not masquerade as
    bookkeeping cost.
9c: miss rate falls with cache size for both.
"""

from conftest import bench_scale, run_once

from repro.experiments import run_experiment

#: runtime guard on the per-operation overhead ratio.  The archived
#: default-scale results target <= 1.15 (the PR-5 tentpole goal); the
#: in-test bound leaves headroom for noisy CI boxes, and the tiny smoke
#: scale — a 5k-request replay — only gets a sanity bound.
OVERHEAD_BOUNDS = {"tiny": 2.0, "default": 1.3, "full": 1.3}


def test_fig9(benchmark, scale, save_tables):
    tables = run_once(benchmark, lambda: run_experiment("fig9", scale))
    save_tables("fig9", tables)
    cost_table, time_table, miss_table = tables

    lru_cost = cost_table.column("lru")
    camp_cost = cost_table.column("camp(p=5)")
    wins = sum(c <= l for c, l in zip(camp_cost, lru_cost))
    assert wins >= len(camp_cost) - 1, "CAMP must win the cost metric"
    # the advantage is largest at the smallest cache
    assert camp_cost[0] < lru_cost[0]

    # 9b: per-operation bookkeeping overhead stays small
    bound = OVERHEAD_BOUNDS[bench_scale()]
    for ratio_overhead in time_table.column("camp_over_lru"):
        assert ratio_overhead < bound, (
            f"per-op overhead {ratio_overhead:.3f} over the {bound} "
            f"bound")

    # 9c: monotone-ish decreasing miss rate with cache size for both
    for name in ("lru", "camp(p=5)"):
        series = miss_table.column(name)
        assert series[-1] <= series[0]
