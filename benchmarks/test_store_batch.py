"""Micro-benchmark: batched Store requests vs looped single calls.

``get_many``/``put_many`` drive the eviction policy through its
``bulk()`` handle — one ``ThreadSafePolicy`` lock acquisition per batch
instead of one (or three, on the insert path) per request, and no
per-item result allocation.  The acceptance bar for the facade redesign
is >= 1.3x per-op throughput on ThreadSafePolicy-wrapped CAMP; this
benchmark measures and enforces it.
"""

import time

from conftest import RESULTS_DIR, bench_scale

from repro.analysis import Table
from repro.cache import StoreConfig

#: minimum speedup of the batched path over looped single calls.  The
#: acceptance bar of 1.3x is demonstrated by the archived default-scale
#: table (measured ~1.5-1.8x locally) and enforced strictly at full
#: scale; tiny/default keep a safety margin because they run inside CI
#: gates (`pytest -x` tier-1 collects benchmarks/) on noisy shared
#: runners, where this assertion guards against rot, not regressions.
REQUIRED_SPEEDUP = {"tiny": 1.1, "default": 1.2, "full": 1.3}
ROUNDS = {"tiny": 7, "default": 5, "full": 3}

OPS = {"tiny": 4_000, "default": 20_000, "full": 100_000}


def camp_store(capacity):
    return (StoreConfig(capacity)
            .policy("camp", precision=5)
            .thread_safe()
            .build())


def best_seconds(fn, rounds):
    """Min-of-rounds wall time — the standard noise-robust estimator."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_batched_requests_beat_looped_singles():
    scale = bench_scale()
    ops = OPS.get(scale, OPS["default"])
    rounds = ROUNDS.get(scale, ROUNDS["default"])
    required = REQUIRED_SPEEDUP.get(scale, REQUIRED_SPEEDUP["default"])
    distinct = ops // 10
    entries = [(f"k{i}", 100, (i % 7) + 1) for i in range(distinct)]
    keys = [f"k{i % distinct}" for i in range(ops)]
    capacity = distinct * 100 * 2     # inserts never evict: pure-path timing

    # -- put: looped singles vs one batch -----------------------------
    def looped_put():
        store = camp_store(capacity)
        put = store.put
        for key, size, cost in entries:
            put(key, size, cost)
        return store

    def batched_put():
        store = camp_store(capacity)
        store.put_many(entries)
        return store

    put_single = best_seconds(looped_put, rounds)
    put_batch = best_seconds(batched_put, rounds)

    # -- get: looped singles vs one batch (hit-heavy) -----------------
    store = camp_store(capacity)
    store.put_many(entries)

    def looped_get():
        get = store.get
        for key in keys:
            get(key)

    def batched_get():
        store.get_many(keys)

    get_single = best_seconds(looped_get, rounds)
    get_batch = best_seconds(batched_get, rounds)

    get_speedup = get_single / get_batch
    put_speedup = put_single / put_batch
    table = Table("Store batch vs looped singles (thread-safe CAMP)",
                  ["path", "ops", "single_us_per_op", "batch_us_per_op",
                   "speedup"])
    table.add_row("get", len(keys), round(get_single / len(keys) * 1e6, 3),
                  round(get_batch / len(keys) * 1e6, 3),
                  round(get_speedup, 2))
    table.add_row("put", len(entries),
                  round(put_single / len(entries) * 1e6, 3),
                  round(put_batch / len(entries) * 1e6, 3),
                  round(put_speedup, 2))
    text = table.to_ascii()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "store_batch.txt").write_text(text, encoding="utf-8")

    assert get_speedup >= required, (
        f"get_many only {get_speedup:.2f}x looped gets (need {required}x)")
    assert put_speedup >= required, (
        f"put_many only {put_speedup:.2f}x looped puts (need {required}x)")


def test_batch_and_looped_paths_agree_on_state():
    """The fast path must not change semantics: same residency/evictions."""
    entries = [(f"k{i % 40}", 60 + (i % 5) * 17, (i % 9) + 1)
               for i in range(300)]
    looped = camp_store(2_500)
    batched = camp_store(2_500)
    outcomes_single = [looped.put(*entry).outcome for entry in entries]
    outcomes_batch = list(batched.put_many(entries))
    assert outcomes_single == outcomes_batch
    assert sorted(i.key for i in looped.kvs.resident_items()) == \
        sorted(i.key for i in batched.kvs.resident_items())
    assert looped.kvs.eviction_count == batched.kvs.eviction_count
    looped.check_consistency()
    batched.check_consistency()
