"""Consistent-hash ring and cooperative-cluster (simulation) tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.outcomes import Outcome
from repro.cluster import ClusterClient, CooperativeCluster, HashRing
from repro.cluster.cluster import _LastReplicaPolicy
from repro.errors import ClusterError, ConfigurationError


class TestHashRing:
    def test_primary_is_stable(self):
        ring = HashRing()
        for name in ("a", "b", "c"):
            ring.add_node(name)
        assert ring.primary("key1") == ring.primary("key1")

    def test_preference_list_distinct(self):
        ring = HashRing()
        for name in ("a", "b", "c", "d"):
            ring.add_node(name)
        holders = ring.preference_list("k", 3)
        assert len(holders) == len(set(holders)) == 3

    def test_preference_list_capped_at_node_count(self):
        ring = HashRing()
        ring.add_node("only")
        assert ring.preference_list("k", 5) == ["only"]

    def test_balanced_distribution(self):
        ring = HashRing(vnodes=128)
        for name in ("a", "b", "c", "d"):
            ring.add_node(name)
        counts = {name: 0 for name in ring.nodes}
        for i in range(8000):
            counts[ring.primary(f"key{i}")] += 1
        for count in counts.values():
            assert 0.15 < count / 8000 < 0.40   # roughly 25% each

    def test_removal_moves_only_owned_keys(self):
        ring = HashRing(vnodes=64)
        for name in ("a", "b", "c"):
            ring.add_node(name)
        before = {f"k{i}": ring.primary(f"k{i}") for i in range(500)}
        ring.remove_node("b")
        for key, owner in before.items():
            if owner != "b":
                assert ring.primary(key) == owner

    def test_errors(self):
        ring = HashRing()
        with pytest.raises(ClusterError):
            ring.primary("k")
        ring.add_node("a")
        with pytest.raises(ClusterError):
            ring.add_node("a")
        with pytest.raises(ClusterError):
            ring.remove_node("b")
        with pytest.raises(ConfigurationError):
            ring.preference_list("k", 0)
        with pytest.raises(ConfigurationError):
            HashRing(vnodes=0)


_NODE_NAMES = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=4),
    min_size=2, max_size=6, unique=True)


class TestHashRingProperties:
    """Property-based coverage of the placement invariants the live
    tier leans on (replication width, bounded movement)."""

    @given(names=_NODE_NAMES,
           key=st.text(min_size=1, max_size=16),
           replicas=st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_preference_list_is_distinct_and_led_by_primary(
            self, names, key, replicas):
        ring = HashRing(vnodes=32)
        for name in names:
            ring.add_node(name)
        holders = ring.preference_list(key, replicas)
        assert len(holders) == min(replicas, len(names))
        assert len(set(holders)) == len(holders)
        assert holders[0] == ring.primary(key)
        assert set(holders) <= set(names)

    @given(names=_NODE_NAMES)
    @settings(max_examples=25, deadline=None)
    def test_add_node_moves_a_bounded_fraction_to_the_joiner(self, names):
        joiner = "joined-node"
        ring = HashRing(vnodes=128)
        for name in names:
            ring.add_node(name)
        keys = [f"m{i}" for i in range(600)]
        before = {key: ring.primary(key) for key in keys}
        ring.add_node(joiner)
        moved = [key for key in keys if ring.primary(key) != before[key]]
        # consistent hashing: only keys landing on the joiner re-home,
        # and their fraction stays under 2/N of the keyspace
        assert all(ring.primary(key) == joiner for key in moved)
        assert len(moved) / len(keys) < 2 / (len(names) + 1)

    @given(names=_NODE_NAMES)
    @settings(max_examples=25, deadline=None)
    def test_remove_node_moves_only_its_bounded_share(self, names):
        ring = HashRing(vnodes=128)
        for name in names:
            ring.add_node(name)
        keys = [f"m{i}" for i in range(600)]
        before = {key: ring.primary(key) for key in keys}
        victim = names[0]
        ring.remove_node(victim)
        moved = [key for key in keys if ring.primary(key) != before[key]]
        # only the removed node's keys re-home; survivors keep theirs
        assert all(before[key] == victim for key in moved)
        assert len(moved) / len(keys) < 2 / len(names)


class _Directory:
    """Stub cluster: a fixed set of keys are last replicas."""

    def __init__(self, last_keys):
        self._last = set(last_keys)

    def _replica_count(self, key):
        return 1 if key in self._last else 2


class TestLastReplicaPolicyMetadata:
    def test_reprieve_readmits_with_recorded_size_and_cost(self):
        """Regression: the reprieve used to re-admit victims with a
        placeholder ``(1, 0)``, flattening the pair's CAMP priority.
        The policy must replay the real ``on_insert`` metadata."""
        policy = _LastReplicaPolicy("n", _Directory({"solo"}), precision=5)
        policy.on_insert("solo", 123, 7)
        policy.on_insert("other", 123, 7)    # same queue, inserted later
        assert policy._victim_item("solo") == (123, 7)

        # "solo" pops first but is the last replica: spared, re-admitted
        # with its real metadata; "other" (replicated) is evicted instead
        assert policy.pop_victim() == "other"
        assert policy.reprieves == 1
        assert "solo" in policy
        assert policy._victim_item("solo") == (123, 7)

        # the actually-evicted victim's metadata is dropped for good
        with pytest.raises(ClusterError):
            policy._victim_item("other")

    def test_hit_renews_the_reprieve_with_real_metadata(self):
        policy = _LastReplicaPolicy("n", _Directory({"solo"}), precision=5)
        policy.on_insert("solo", 123, 7)
        policy.on_insert("other", 123, 7)
        assert policy.pop_victim() == "other"
        policy.on_hit("solo")                # renewed interest clears mark
        policy.on_insert("later", 123, 7)
        assert policy.pop_victim() == "later"
        assert policy.reprieves == 2
        assert policy._victim_item("solo") == (123, 7)


class TestPlacementParity:
    """The simulation and the live tier must route identically."""

    def test_client_holders_match_sim_preference_list(self):
        names = ["n0", "n1", "n2", "n3"]
        sim = CooperativeCluster(names, capacity_per_node=1_000,
                                 replicas=2, vnodes=64)
        # ClusterClient never dials at construction, so fake addresses
        # are fine: only placement is under test
        live = ClusterClient({name: ("127.0.0.1", 1) for name in names},
                             replicas=2, vnodes=64)
        for i in range(400):
            key = f"k{i}"
            assert (live.holders(key)
                    == sim.ring.preference_list(key, 2))


class TestCacheNodeOutcomes:
    def test_lookup_and_insert_return_structured_outcomes(self):
        cluster = CooperativeCluster(["n1"], capacity_per_node=1_000,
                                     replicas=1)
        node = cluster.node("n1")
        assert node.lookup("k") is Outcome.MISS
        assert node.insert("k", 100, 5) is Outcome.MISS_INSERTED
        assert node.lookup("k") is Outcome.HIT


class TestCooperativeCluster:
    def build(self, replicas=2, capacity=5_000):
        return CooperativeCluster(["n1", "n2", "n3"],
                                  capacity_per_node=capacity,
                                  replicas=replicas)

    def test_miss_then_local_hit(self):
        cluster = self.build()
        assert cluster.get("k", 100, 10) == "miss"
        assert cluster.get("k", 100, 10) == "local"
        assert cluster.stats()["misses"] == 1
        assert cluster.stats()["local_hits"] == 1

    def test_replication_count(self):
        cluster = self.build(replicas=2)
        cluster.get("k", 100, 10)
        assert len(cluster.resident_nodes("k")) == 2

    def test_remote_hit_rereplicates(self):
        cluster = self.build(replicas=2)
        cluster.get("k", 100, 10)
        holders = cluster.ring.preference_list("k", 2)
        primary = cluster.node(holders[0])
        primary.kvs.delete("k")   # simulate primary losing its copy
        assert cluster.get("k", 100, 10) == "remote"
        assert "k" in primary

    def test_last_replica_gets_reprieve(self):
        cluster = CooperativeCluster(["n1"], capacity_per_node=1_000,
                                     replicas=1)
        node = cluster.node("n1")
        # fill with cheap items, then push a stream through: every victim is
        # a last replica, so the policy grants one reprieve each
        for i in range(30):
            cluster.get(f"k{i}", 100, 1)
        assert cluster.stats()["reprieves"] > 0
        assert len(node.kvs) <= 10

    def test_spared_pair_eventually_evicted(self):
        """The paper's challenge: a never-again-accessed last replica must
        not occupy memory forever."""
        cluster = CooperativeCluster(["n1"], capacity_per_node=1_000,
                                     replicas=1)
        cluster.get("dead", 100, 500)   # expensive, never touched again
        # L climbs ~1 per (resident count) evictions, so give the stream
        # comfortably more than 500 * 10 filler misses
        for i in range(8000):
            cluster.get(f"filler{i}", 100, 1)
        assert cluster.resident_nodes("dead") == []

    def test_workload_distribution(self):
        cluster = self.build(capacity=50_000)
        rng = random.Random(0)
        for _ in range(3000):
            key = f"k{rng.randrange(300)}"
            cluster.get(key, rng.randrange(50, 200),
                        rng.choice([1, 100, 10_000]))
        stats = cluster.stats()
        assert stats["local_hits"] > 0
        assert stats["resident_items"] > 0
        sizes = [len(node.kvs) for node in cluster.nodes()]
        assert all(size > 0 for size in sizes)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            CooperativeCluster([], 1000)
        with pytest.raises(ConfigurationError):
            CooperativeCluster(["a", "a"], 1000)
        with pytest.raises(ConfigurationError):
            CooperativeCluster(["a"], 1000, replicas=0)
        with pytest.raises(ClusterError):
            self.build().node("ghost")
