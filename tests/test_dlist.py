"""Unit tests for the intrusive doubly-linked list."""

import pytest

from repro.errors import ReproError
from repro.structures import DList, DListNode


class Payload(DListNode):
    __slots__ = ("value",)

    def __init__(self, value):
        super().__init__()
        self.value = value


def values(lst):
    return [node.value for node in lst]


class TestBasics:
    def test_empty_list(self):
        lst = DList()
        assert len(lst) == 0
        assert not lst
        assert lst.head is None
        assert lst.tail is None

    def test_append_orders_head_to_tail(self):
        lst = DList()
        for v in [1, 2, 3]:
            lst.append(Payload(v))
        assert values(lst) == [1, 2, 3]
        assert lst.head.value == 1
        assert lst.tail.value == 3

    def test_appendleft(self):
        lst = DList()
        for v in [1, 2, 3]:
            lst.appendleft(Payload(v))
        assert values(lst) == [3, 2, 1]

    def test_len_tracks_membership(self):
        lst = DList()
        nodes = [Payload(v) for v in range(5)]
        for n in nodes:
            lst.append(n)
        assert len(lst) == 5
        lst.remove(nodes[2])
        assert len(lst) == 4

    def test_linked_flag(self):
        lst = DList()
        node = Payload(1)
        assert not node.linked
        lst.append(node)
        assert node.linked
        lst.remove(node)
        assert not node.linked


class TestRemoval:
    def test_remove_middle(self):
        lst = DList()
        nodes = [Payload(v) for v in range(3)]
        for n in nodes:
            lst.append(n)
        lst.remove(nodes[1])
        assert values(lst) == [0, 2]

    def test_remove_head_updates_head(self):
        lst = DList()
        nodes = [Payload(v) for v in range(3)]
        for n in nodes:
            lst.append(n)
        lst.remove(nodes[0])
        assert lst.head.value == 1

    def test_remove_tail_updates_tail(self):
        lst = DList()
        nodes = [Payload(v) for v in range(3)]
        for n in nodes:
            lst.append(n)
        lst.remove(nodes[2])
        assert lst.tail.value == 1

    def test_popleft_returns_head(self):
        lst = DList()
        for v in [1, 2]:
            lst.append(Payload(v))
        assert lst.popleft().value == 1
        assert lst.popleft().value == 2

    def test_pop_returns_tail(self):
        lst = DList()
        for v in [1, 2]:
            lst.append(Payload(v))
        assert lst.pop().value == 2

    def test_popleft_empty_raises(self):
        with pytest.raises(ReproError):
            DList().popleft()

    def test_pop_empty_raises(self):
        with pytest.raises(ReproError):
            DList().pop()

    def test_remove_foreign_node_raises(self):
        a, b = DList(), DList()
        node = Payload(1)
        a.append(node)
        with pytest.raises(ReproError):
            b.remove(node)

    def test_double_append_raises(self):
        lst = DList()
        node = Payload(1)
        lst.append(node)
        with pytest.raises(ReproError):
            lst.append(node)

    def test_append_into_second_list_raises(self):
        a, b = DList(), DList()
        node = Payload(1)
        a.append(node)
        with pytest.raises(ReproError):
            b.append(node)

    def test_node_reusable_after_removal(self):
        a, b = DList(), DList()
        node = Payload(1)
        a.append(node)
        a.remove(node)
        b.append(node)
        assert values(b) == [1]


class TestMoves:
    def test_move_to_tail(self):
        lst = DList()
        nodes = [Payload(v) for v in range(3)]
        for n in nodes:
            lst.append(n)
        lst.move_to_tail(nodes[0])
        assert values(lst) == [1, 2, 0]

    def test_move_to_tail_of_tail_is_noop(self):
        lst = DList()
        nodes = [Payload(v) for v in range(3)]
        for n in nodes:
            lst.append(n)
        lst.move_to_tail(nodes[2])
        assert values(lst) == [0, 1, 2]

    def test_move_to_tail_singleton(self):
        lst = DList()
        node = Payload(1)
        lst.append(node)
        lst.move_to_tail(node)
        assert values(lst) == [1]

    def test_insert_after(self):
        lst = DList()
        nodes = [Payload(v) for v in range(3)]
        for n in nodes:
            lst.append(n)
        lst.insert_after(nodes[0], Payload(99))
        assert values(lst) == [0, 99, 1, 2]

    def test_insert_after_tail(self):
        lst = DList()
        node = Payload(0)
        lst.append(node)
        lst.insert_after(node, Payload(1))
        assert values(lst) == [0, 1]
        assert lst.tail.value == 1


class TestIterationAndSuccessor:
    def test_iteration_survives_removal_of_current(self):
        lst = DList()
        nodes = [Payload(v) for v in range(5)]
        for n in nodes:
            lst.append(n)
        seen = []
        for node in lst:
            seen.append(node.value)
            if node.value % 2 == 0:
                lst.remove(node)
        assert seen == [0, 1, 2, 3, 4]
        assert values(lst) == [1, 3]

    def test_successor(self):
        lst = DList()
        nodes = [Payload(v) for v in range(3)]
        for n in nodes:
            lst.append(n)
        assert lst.successor(nodes[0]) is nodes[1]
        assert lst.successor(nodes[2]) is None

    def test_clear(self):
        lst = DList()
        nodes = [Payload(v) for v in range(3)]
        for n in nodes:
            lst.append(n)
        lst.clear()
        assert len(lst) == 0
        assert all(not n.linked for n in nodes)


class TestFuzzAgainstListModel:
    """Model-based fuzz for the inlined link manipulation (PR 5).

    The hot paths splice node links directly (CAMP's move-to-tail,
    popleft and tail-append are inlined at their call sites), so the
    list's own operations are fuzzed against a plain-Python-list oracle,
    checking order, size, link symmetry and membership flags after every
    step.
    """

    @staticmethod
    def _check_structure(lst, oracle):
        assert len(lst) == len(oracle)
        assert values(lst) == [n.value for n in oracle]
        assert [node.value for node in _reversed_values(lst)] == \
            [n.value for n in reversed(oracle)]
        for node in oracle:
            assert node.linked
        if oracle:
            assert lst.head is oracle[0]
            assert lst.tail is oracle[-1]
        else:
            assert lst.head is None and lst.tail is None

    def test_random_operations_match_oracle(self):
        import random

        rng = random.Random(0xC0FFEE)
        for _ in range(30):
            lst = DList()
            oracle = []
            counter = 0
            for _step in range(400):
                op = rng.choice(("append", "appendleft", "insert_after",
                                 "remove", "popleft", "pop",
                                 "move_to_tail", "successor"))
                if op == "append" or not oracle and op not in ("append",
                                                               "appendleft"):
                    node = Payload(counter)
                    counter += 1
                    lst.append(node)
                    oracle.append(node)
                elif op == "appendleft":
                    node = Payload(counter)
                    counter += 1
                    lst.appendleft(node)
                    oracle.insert(0, node)
                elif op == "insert_after":
                    anchor = rng.choice(oracle)
                    node = Payload(counter)
                    counter += 1
                    lst.insert_after(anchor, node)
                    oracle.insert(oracle.index(anchor) + 1, node)
                elif op == "remove":
                    node = rng.choice(oracle)
                    lst.remove(node)
                    oracle.remove(node)
                    assert not node.linked
                elif op == "popleft":
                    node = lst.popleft()
                    assert node is oracle.pop(0)
                    assert not node.linked
                elif op == "pop":
                    node = lst.pop()
                    assert node is oracle.pop()
                    assert not node.linked
                elif op == "move_to_tail":
                    node = rng.choice(oracle)
                    lst.move_to_tail(node)
                    oracle.remove(node)
                    oracle.append(node)
                else:  # successor
                    node = rng.choice(oracle)
                    expected = oracle.index(node) + 1
                    successor = lst.successor(node)
                    if expected == len(oracle):
                        assert successor is None
                    else:
                        assert successor is oracle[expected]
                self._check_structure(lst, oracle)

    def test_detached_node_errors_after_fuzz(self):
        lst = DList()
        node = Payload(1)
        lst.append(node)
        assert lst.popleft() is node
        with pytest.raises(ReproError):
            lst.remove(node)
        with pytest.raises(ReproError):
            lst.move_to_tail(node)


def _reversed_values(lst):
    """Walk tail-to-head through the raw links (symmetry check)."""
    out = []
    node = lst.tail
    while node is not None:
        out.append(node)
        prev = node.prev
        node = None if prev is lst._sentinel else prev
    return out
