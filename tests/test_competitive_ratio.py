"""Numerical verification of the paper's competitive-ratio claims.

Proposition 3: CAMP with precision p is (1+ε)k-competitive, ε = 2^(1-p),
where k is the cache capacity (in items, unit sizes — Young's weighted
caching setting).  We compute the exact offline optimum on small random
instances and check the bound for GDS (ε=0) and CAMP at several
precisions.  These are adversarially *random* instances, not worst cases,
so the measured ratios should sit far below the bound — but the bound
must never be violated.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CampPolicy, GdsPolicy, LruPolicy
from repro.core.opt_exact import optimal_total_cost, policy_total_cost
from repro.core.rounding import epsilon_for_precision
from repro.errors import ConfigurationError
from repro.workloads import TraceRecord


def make_trace(key_ids, costs):
    return [TraceRecord(f"k{key_id}", 1, costs[key_id])
            for key_id in key_ids]


class TestExactOptimum:
    def test_no_misses_when_everything_fits(self):
        trace = make_trace([0, 1, 0, 1], {0: 5, 1: 7})
        # capacity 2: only the two cold misses are paid
        assert optimal_total_cost(trace, 2) == 12.0

    def test_belady_scenario(self):
        # classic: with capacity 1 and alternating keys, every request misses
        trace = make_trace([0, 1, 0, 1], {0: 3, 1: 4})
        assert optimal_total_cost(trace, 1) == 14.0

    def test_opt_prefers_keeping_expensive(self):
        # keys: e (expensive, recurring), c1/c2 (cheap fillers)
        costs = {0: 100, 1: 1, 2: 1}
        trace = make_trace([0, 1, 2, 0], costs)
        # capacity 2: evict a cheap key, keep the expensive one ->
        # cost = 100 + 1 + 1 (colds) + 0 (hit on 0) = 102
        assert optimal_total_cost(trace, 2) == 102.0

    def test_policy_total_cost_matches_manual(self):
        trace = make_trace([0, 1, 0], {0: 5, 1: 7})
        lru = LruPolicy()
        assert policy_total_cost(lru, trace, 1) == 5 + 7 + 5

    def test_opt_lower_bounds_online(self):
        rng = random.Random(0)
        for _ in range(20):
            costs = {i: rng.choice([1, 10, 100]) for i in range(5)}
            trace = make_trace([rng.randrange(5) for _ in range(25)], costs)
            opt = optimal_total_cost(trace, 2)
            online = policy_total_cost(LruPolicy(), trace, 2)
            assert opt <= online + 1e-9

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            optimal_total_cost([], 0)
        with pytest.raises(ConfigurationError):
            policy_total_cost(LruPolicy(), [], 0)


class TestCompetitiveBounds:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=4, max_size=28),
           st.integers(2, 4),
           st.sampled_from([1, 2, 3, 5, None]))
    def test_camp_within_proposition3_bound(self, key_ids, capacity,
                                            precision):
        """CAMP(σ) <= (1+ε) * k * OPT(σ) on random weighted instances."""
        rng = random.Random(hash(tuple(key_ids)) & 0xFFFF)
        costs = {i: rng.choice([1, 4, 16, 64]) for i in range(6)}
        trace = make_trace(key_ids, costs)
        opt = optimal_total_cost(trace, capacity)
        camp_cost = policy_total_cost(CampPolicy(precision=precision),
                                      trace, capacity)
        epsilon = 0.0 if precision is None else \
            epsilon_for_precision(precision)
        bound = (1 + epsilon) * capacity * opt
        assert camp_cost <= bound + 1e-6, \
            f"CAMP {camp_cost} exceeded (1+{epsilon})*{capacity}*OPT={opt}"

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=4, max_size=28),
           st.integers(2, 4))
    def test_gds_within_k_bound(self, key_ids, capacity):
        """GDS(σ) <= k * OPT(σ) — Young's k-competitiveness."""
        rng = random.Random(hash(tuple(key_ids)) & 0xFFFF)
        costs = {i: rng.choice([1, 4, 16, 64]) for i in range(6)}
        trace = make_trace(key_ids, costs)
        opt = optimal_total_cost(trace, capacity)
        gds_cost = policy_total_cost(GdsPolicy(), trace, capacity)
        assert gds_cost <= capacity * opt + 1e-6

    def test_lru_can_violate_cost_bounds(self):
        """Sanity: cost-blind LRU is NOT k-competitive on weighted traces —
        an adversarial alternation makes it pay the expensive key over and
        over while OPT pins it."""
        costs = {0: 1000, 1: 1, 2: 1}
        # requests: expensive key, then two cheap, repeated — with capacity
        # 2 LRU always evicts key 0 right before it is requested again
        key_ids = [0, 1, 2] * 8
        trace = make_trace(key_ids, costs)
        capacity = 2
        opt = optimal_total_cost(trace, capacity)
        lru_cost = policy_total_cost(LruPolicy(), trace, capacity)
        camp_cost = policy_total_cost(CampPolicy(precision=5), trace,
                                      capacity)
        assert lru_cost / opt > camp_cost / opt
        assert camp_cost <= (1 + epsilon_for_precision(5)) * capacity * opt
