"""Tests for the extension round: count-min/TinyLFU, SLRU, Random,
trace analysis, windowed metrics, and the decision-agreement tool."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import KVS, WindowedMetrics
from repro.core import (
    CampPolicy,
    GdsPolicy,
    LruPolicy,
    RandomPolicy,
    SlruPolicy,
    TinyLfuAdmission,
    make_policy,
)
from repro.errors import ConfigurationError, EvictionError, MissingKeyError
from repro.sim import eviction_agreement
from repro.structures import CountMinSketch
from repro.workloads import (
    Trace,
    TraceRecord,
    gini,
    profile_trace,
    three_cost_trace,
    top_share,
    working_set_curve,
)


class TestCountMinSketch:
    def test_never_undercounts_within_window(self):
        sketch = CountMinSketch(width=512, depth=4, sample_window=10 ** 9,
                                max_count=10 ** 9)
        counts = {}
        rng = random.Random(1)
        for _ in range(3000):
            key = f"k{rng.randrange(100)}"
            sketch.add(key)
            counts[key] = counts.get(key, 0) + 1
        for key, true_count in counts.items():
            assert sketch.estimate(key) >= min(true_count, 10 ** 9)

    def test_overcount_bounded_on_sparse_keys(self):
        sketch = CountMinSketch(width=4096, depth=4, sample_window=10 ** 9)
        for i in range(100):
            sketch.add(f"k{i}")
        assert sketch.estimate("never-added") <= 2

    def test_aging_halves_counters(self):
        sketch = CountMinSketch(width=64, depth=2, sample_window=8,
                                max_count=100)
        for _ in range(7):
            sketch.add("hot")
        assert sketch.estimate("hot") == 7
        sketch.add("hot")          # 8th add triggers the reset
        assert sketch.resets == 1
        assert sketch.estimate("hot") == 4   # halved

    def test_max_count_cap(self):
        sketch = CountMinSketch(width=64, depth=2, sample_window=10 ** 9,
                                max_count=15)
        for _ in range(100):
            sketch.add("hot")
        assert sketch.estimate("hot") == 15

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(depth=0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(sample_window=0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(max_count=0)


class TestTinyLfuAdmission:
    def test_first_request_rejected_second_admitted(self):
        admission = TinyLfuAdmission(threshold=2)
        assert not admission.admit("a", 1, 1)
        assert admission.admit("a", 1, 1)

    def test_hits_warm_the_sketch(self):
        admission = TinyLfuAdmission(threshold=2)
        admission.on_access("a")
        assert admission.admit("a", 1, 1)

    def test_threshold_one_admits_everything(self):
        admission = TinyLfuAdmission(threshold=1)
        assert admission.admit("anything", 1, 1)

    def test_integration_with_kvs(self):
        kvs = KVS(1000, LruPolicy(), admission=TinyLfuAdmission(threshold=2))
        assert not kvs.put("one-hit", 10, 1)
        assert kvs.rejected_admission == 1
        assert kvs.put("one-hit", 10, 1)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            TinyLfuAdmission(threshold=0)


class TestSlru:
    def test_first_timers_probationary(self):
        slru = SlruPolicy(capacity=100)
        slru.on_insert("a", 10, 1)
        assert slru.stats()["probation_items"] == 1

    def test_hit_promotes(self):
        slru = SlruPolicy(capacity=100)
        slru.on_insert("a", 10, 1)
        slru.on_hit("a")
        assert slru.stats()["protected_items"] == 1

    def test_scan_resistance(self):
        """One-shot keys churn probation, leaving protected keys alone."""
        slru = SlruPolicy(capacity=100, protected_fraction=0.5)
        slru.on_insert("vip", 10, 1)
        slru.on_hit("vip")   # protected
        victims = []
        for i in range(30):
            slru.on_insert(f"scan{i}", 10, 1)
            while len(slru) > 5:
                victims.append(slru.pop_victim())
        assert "vip" not in victims

    def test_protected_overflow_demotes(self):
        slru = SlruPolicy(capacity=100, protected_fraction=0.3)  # 30 bytes
        for key in ("a", "b", "c", "d"):
            slru.on_insert(key, 15, 1)
            slru.on_hit(key)   # everyone wants protection (15B each)
        stats = slru.stats()
        assert stats["protected_bytes"] <= 45   # 30 budget + one overshoot
        assert stats["probation_items"] >= 1

    def test_victims_probation_first(self):
        slru = SlruPolicy(capacity=100)
        slru.on_insert("prob", 10, 1)
        slru.on_insert("prot", 10, 1)
        slru.on_hit("prot")
        assert slru.pop_victim() == "prob"
        assert slru.pop_victim() == "prot"

    def test_remove_from_both_segments(self):
        slru = SlruPolicy(capacity=100)
        slru.on_insert("a", 10, 1)
        slru.on_insert("b", 10, 1)
        slru.on_hit("b")
        slru.on_remove("a")
        slru.on_remove("b")
        assert len(slru) == 0
        assert slru.stats()["protected_bytes"] == 0

    def test_errors(self):
        slru = SlruPolicy(capacity=100)
        with pytest.raises(EvictionError):
            slru.pop_victim()
        with pytest.raises(MissingKeyError):
            slru.on_hit("x")
        with pytest.raises(ConfigurationError):
            SlruPolicy(capacity=0)
        with pytest.raises(ConfigurationError):
            SlruPolicy(capacity=10, protected_fraction=1.5)

    def test_registered(self):
        policy = make_policy("slru", 1000)
        policy.on_insert("a", 10, 1)
        assert len(policy) == 1


class TestRandomPolicy:
    def test_deterministic_with_seed(self):
        a, b = RandomPolicy(seed=3), RandomPolicy(seed=3)
        for policy in (a, b):
            for i in range(20):
                policy.on_insert(f"k{i}", 1, 1)
        assert [a.pop_victim() for _ in range(20)] == \
            [b.pop_victim() for _ in range(20)]

    def test_every_key_evictable(self):
        policy = RandomPolicy(seed=1)
        keys = {f"k{i}" for i in range(50)}
        for key in keys:
            policy.on_insert(key, 1, 1)
        assert {policy.pop_victim() for _ in range(50)} == keys

    def test_remove_keeps_structures_consistent(self):
        policy = RandomPolicy(seed=2)
        for i in range(10):
            policy.on_insert(f"k{i}", 1, 1)
        policy.on_remove("k5")
        assert "k5" not in policy
        drained = {policy.pop_victim() for _ in range(9)}
        assert "k5" not in drained

    def test_registered(self):
        policy = make_policy("random", 1000)
        policy.on_insert("a", 1, 1)
        assert policy.pop_victim() == "a"


class TestTraceAnalysis:
    def test_top_share_of_skewed_trace(self):
        trace = three_cost_trace(n_keys=1000, n_requests=20_000, seed=2)
        share = top_share(trace, 0.2)
        assert 0.5 < share < 0.9   # the BG-like 70/20 regime

    def test_top_share_uniform_key_fraction(self):
        trace = Trace(
            [TraceRecord(f"k{i}", 1, 1) for i in range(10)])
        assert top_share(trace, 1.0) == pytest.approx(1.0)

    def test_gini_extremes(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)
        assert gini([0, 0, 0, 100]) > 0.7
        assert gini([]) == 0.0

    def test_working_set_curve_monotone(self):
        trace = three_cost_trace(n_keys=300, n_requests=5000, seed=3)
        curve = working_set_curve(trace, points=10)
        byte_counts = [b for _, b in curve]
        assert byte_counts == sorted(byte_counts)
        assert byte_counts[-1] == trace.unique_bytes

    def test_profile_fields(self):
        trace = three_cost_trace(n_keys=200, n_requests=3000, seed=4)
        profile = profile_trace(trace)
        assert profile.requests == 3000
        assert profile.unique_keys == trace.unique_keys
        assert profile.distinct_costs <= 3
        assert profile.cost_min == 1
        assert profile.cost_max == 10_000
        assert len(profile.lines()) == 8

    def test_profile_empty_raises(self):
        with pytest.raises(ConfigurationError):
            profile_trace(Trace([]))

    def test_invalid_args(self):
        trace = Trace([TraceRecord("a", 1, 1)])
        with pytest.raises(ConfigurationError):
            top_share(trace, 0.0)
        with pytest.raises(ConfigurationError):
            working_set_curve(trace, points=0)


class TestWindowedMetrics:
    def test_windows_and_cold_exclusion(self):
        metrics = WindowedMetrics(window=3)
        metrics.record("a", 10, hit=False)  # cold
        metrics.record("a", 10, hit=True)
        metrics.record("a", 10, hit=False)
        assert metrics.windows == [(3, 0.5, 0.5)]

    def test_finish_flushes_partial(self):
        metrics = WindowedMetrics(window=100)
        metrics.record("a", 1, hit=False)
        metrics.record("a", 1, hit=True)
        metrics.finish()
        assert len(metrics.windows) == 1

    def test_series_accessors(self):
        metrics = WindowedMetrics(window=2)
        for _ in range(4):
            metrics.record("a", 1, hit=True)
        assert len(metrics.miss_rate_series()) == 2
        assert len(metrics.cost_miss_series()) == 2

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            WindowedMetrics(window=0)


class TestEvictionAgreement:
    def test_camp_infinite_precision_identical_to_gds(self):
        trace = three_cost_trace(n_keys=300, n_requests=6000, seed=5)
        result = eviction_agreement(CampPolicy(precision=None), GdsPolicy(),
                                    trace, max_resident=40)
        assert result.identical
        assert result.positional_agreement == 1.0
        assert result.resident_jaccard == 1.0

    def test_rounded_camp_agreement_grows_with_precision(self):
        trace = three_cost_trace(n_keys=300, n_requests=6000, seed=6)
        agreements = []
        for precision in (1, 5, None):
            result = eviction_agreement(CampPolicy(precision=precision),
                                        GdsPolicy(), trace, max_resident=40)
            agreements.append(result.positional_agreement)
        assert agreements[-1] == 1.0
        assert agreements[0] <= agreements[-1]

    def test_lru_differs_from_gds(self):
        trace = three_cost_trace(n_keys=300, n_requests=6000, seed=7)
        result = eviction_agreement(LruPolicy(), GdsPolicy(), trace,
                                    max_resident=40)
        assert not result.identical
        assert result.positional_agreement < 1.0

    def test_invalid_resident_bound(self):
        with pytest.raises(ConfigurationError):
            eviction_agreement(LruPolicy(), GdsPolicy(), [], max_resident=0)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.booleans()),
                min_size=1, max_size=200))
def test_windowed_metrics_totals_match_aggregate(raw):
    """Re-weighting the windowed rates reproduces the aggregate counts."""
    from repro.cache import SimulationMetrics
    aggregate = SimulationMetrics()
    windowed = WindowedMetrics(window=7)
    for key_id, hit in raw:
        key = f"k{key_id}"
        # a request can only be a hit if previously seen; normalize
        actual_hit = hit and key in aggregate._seen
        aggregate.record(key, 1, 5, actual_hit)
        windowed.record(key, 5, actual_hit)
    windowed.finish()
    assert sum(windowed.window_counts) == aggregate.counted_requests
    weighted_misses = sum(rate * count for (_, rate, _), count in
                          zip(windowed.windows, windowed.window_counts))
    assert weighted_misses == pytest.approx(aggregate.misses, abs=1e-6)
