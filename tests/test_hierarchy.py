"""Two-level hierarchical cache tests (section 6 extension)."""

import pytest

from repro.cache import KVS, MultiLevelCache, TwoLevelCache
from repro.core import CampPolicy, LruPolicy
from repro.errors import ConfigurationError


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def build(l1_capacity=50, l2_capacity=200, factor=0.1, clock=None):
    l1 = KVS(l1_capacity, CampPolicy(), clock=clock)
    l2 = KVS(l2_capacity, CampPolicy(), clock=clock)
    return TwoLevelCache(l1, l2, l2_hit_cost_factor=factor)


class TestLookupPaths:
    def test_total_miss_inserts_into_l1(self):
        cache = build()
        outcome = cache.lookup("a", 10, 100)
        assert outcome.level == 0
        assert outcome.charged_cost == 100
        assert cache.resident_level("a") == 1

    def test_l1_hit_is_free(self):
        cache = build()
        cache.lookup("a", 10, 100)
        outcome = cache.lookup("a", 10, 100)
        assert outcome.level == 1
        assert outcome.charged_cost == 0.0
        assert outcome.hit

    def test_eviction_demotes_to_l2(self):
        cache = build(l1_capacity=25)
        cache.lookup("a", 10, 100)
        cache.lookup("b", 10, 100)
        cache.lookup("c", 10, 100)   # L1 evicts someone -> L2
        assert cache.demotions >= 1
        demoted = [k for k in ("a", "b") if cache.resident_level(k) == 2]
        assert demoted

    def test_l2_hit_promotes_and_discounts(self):
        cache = build(l1_capacity=25, factor=0.25)
        cache.lookup("a", 10, 100)
        cache.lookup("b", 10, 100)
        cache.lookup("c", 10, 100)   # one of a/b demoted
        demoted = next(k for k in ("a", "b") if cache.resident_level(k) == 2)
        outcome = cache.lookup(demoted, 10, 100)
        assert outcome.level == 2
        assert outcome.charged_cost == pytest.approx(25.0)
        assert cache.resident_level(demoted) == 1
        assert cache.promotions == 1

    def test_promotion_removes_from_l2(self):
        cache = build(l1_capacity=25)
        cache.lookup("a", 10, 100)
        cache.lookup("b", 10, 100)
        cache.lookup("c", 10, 100)
        demoted = next(k for k in ("a", "b") if cache.resident_level(k) == 2)
        cache.lookup(demoted, 10, 100)
        assert demoted not in cache.l2


class TestCostSavings:
    def test_hierarchy_cheaper_than_flat_small_cache(self):
        """Serving from SSD at 10% of recompute cost must reduce the total
        charged cost versus recomputing every L1 miss."""
        flat_charged = 0.0
        flat = KVS(100, CampPolicy())
        cache = build(l1_capacity=100, l2_capacity=1000, factor=0.1)
        hier_charged = 0.0
        import random
        rng = random.Random(0)
        requests = [(f"k{rng.randrange(50)}", 10, rng.choice([1, 100]))
                    for _ in range(2000)]
        for key, size, cost in requests:
            if not flat.get(key):
                flat_charged += cost
                flat.put(key, size, cost)
            hier_charged += cache.lookup(key, size, cost).charged_cost
        assert hier_charged < flat_charged

    def test_invalid_factor(self):
        l1 = KVS(10, LruPolicy())
        l2 = KVS(10, LruPolicy())
        with pytest.raises(ConfigurationError):
            TwoLevelCache(l1, l2, l2_hit_cost_factor=1.5)


class TestTtlSurvival:
    """Regression: demotion/promotion used to re-insert with no expiry,
    so a TTL'd item evicted from L1 became immortal in L2."""

    def fill_and_demote(self, cache, clock, ttl):
        cache.lookup("victim", 10, 100, ttl=ttl)
        cache.lookup("b", 10, 100)
        cache.lookup("c", 10, 100)   # L1 (capacity 25) evicts someone
        assert cache.demotions >= 1
        # keep evicting until the TTL'd key lands in L2
        extra = 0
        while cache.resident_level("victim") == 1:
            extra += 1
            cache.lookup(f"x{extra}", 10, 100)
        assert cache.resident_level("victim") == 2

    def test_demoted_item_keeps_its_ttl(self):
        clock = FakeClock()
        cache = build(l1_capacity=25, clock=clock)
        self.fill_and_demote(cache, clock, ttl=60.0)
        item = cache.l2.peek("victim")
        assert item is not None
        assert item.expire_at == pytest.approx(clock.now + 60.0, abs=1.0)
        clock.advance(120.0)
        # lapsed in L2: the lookup must miss, not serve a stale hit
        assert cache.lookup("victim", 10, 100).level == 0

    def test_demoted_item_still_served_before_expiry(self):
        clock = FakeClock()
        cache = build(l1_capacity=25, clock=clock)
        self.fill_and_demote(cache, clock, ttl=60.0)
        clock.advance(30.0)
        assert cache.lookup("victim", 10, 100).level == 2

    def test_promotion_carries_remaining_ttl_back_to_l1(self):
        clock = FakeClock()
        cache = build(l1_capacity=25, clock=clock)
        self.fill_and_demote(cache, clock, ttl=60.0)
        clock.advance(20.0)
        assert cache.lookup("victim", 10, 100).level == 2  # promote
        item = cache.l1.peek("victim")
        assert item is not None
        # 40s remained at promotion time; promotion must not refresh it
        assert item.expire_at == pytest.approx(clock.now + 40.0, abs=1.0)
        clock.advance(50.0)
        assert cache.lookup("victim", 10, 100).level == 0

    def test_lapsed_victim_is_not_demoted(self):
        clock = FakeClock()
        cache = build(l1_capacity=25, clock=clock)
        cache.lookup("victim", 10, 100, ttl=5.0)
        clock.advance(10.0)   # expires while resident in L1
        cache.lookup("b", 10, 100)
        cache.lookup("c", 10, 100)
        cache.lookup("d", 10, 100)   # capacity evictions may hit victim
        assert cache.resident_level("victim") != 2

    def test_multilevel_demotion_and_promotion_keep_ttl(self):
        clock = FakeClock()
        stores = [KVS(25, LruPolicy(), clock=clock),
                  KVS(200, LruPolicy(), clock=clock),
                  KVS(2000, LruPolicy(), clock=clock)]
        cache = MultiLevelCache(stores, [0.0, 0.1, 0.5])
        cache.lookup("victim", 10, 100, ttl=60.0)
        extra = 0
        while cache.resident_level("victim") == 1:
            extra += 1
            cache.lookup(f"x{extra}", 10, 100)
        assert cache.resident_level("victim") >= 2
        level = cache.resident_level("victim")
        item = cache.store(level).peek("victim")
        assert item is not None and item.expire_at > 0
        clock.advance(20.0)
        outcome = cache.lookup("victim", 10, 100)   # promote to level 1
        assert outcome.level == level
        promoted = cache.store(1).peek("victim")
        assert promoted is not None
        assert promoted.expire_at == pytest.approx(clock.now + 40.0,
                                                   abs=1.0)
        clock.advance(50.0)
        assert cache.lookup("victim", 10, 100).level == 0
