"""Two-level hierarchical cache tests (section 6 extension)."""

import pytest

from repro.cache import KVS, TwoLevelCache
from repro.core import CampPolicy, LruPolicy
from repro.errors import ConfigurationError


def build(l1_capacity=50, l2_capacity=200, factor=0.1):
    l1 = KVS(l1_capacity, CampPolicy())
    l2 = KVS(l2_capacity, CampPolicy())
    return TwoLevelCache(l1, l2, l2_hit_cost_factor=factor)


class TestLookupPaths:
    def test_total_miss_inserts_into_l1(self):
        cache = build()
        outcome = cache.lookup("a", 10, 100)
        assert outcome.level == 0
        assert outcome.charged_cost == 100
        assert cache.resident_level("a") == 1

    def test_l1_hit_is_free(self):
        cache = build()
        cache.lookup("a", 10, 100)
        outcome = cache.lookup("a", 10, 100)
        assert outcome.level == 1
        assert outcome.charged_cost == 0.0
        assert outcome.hit

    def test_eviction_demotes_to_l2(self):
        cache = build(l1_capacity=25)
        cache.lookup("a", 10, 100)
        cache.lookup("b", 10, 100)
        cache.lookup("c", 10, 100)   # L1 evicts someone -> L2
        assert cache.demotions >= 1
        demoted = [k for k in ("a", "b") if cache.resident_level(k) == 2]
        assert demoted

    def test_l2_hit_promotes_and_discounts(self):
        cache = build(l1_capacity=25, factor=0.25)
        cache.lookup("a", 10, 100)
        cache.lookup("b", 10, 100)
        cache.lookup("c", 10, 100)   # one of a/b demoted
        demoted = next(k for k in ("a", "b") if cache.resident_level(k) == 2)
        outcome = cache.lookup(demoted, 10, 100)
        assert outcome.level == 2
        assert outcome.charged_cost == pytest.approx(25.0)
        assert cache.resident_level(demoted) == 1
        assert cache.promotions == 1

    def test_promotion_removes_from_l2(self):
        cache = build(l1_capacity=25)
        cache.lookup("a", 10, 100)
        cache.lookup("b", 10, 100)
        cache.lookup("c", 10, 100)
        demoted = next(k for k in ("a", "b") if cache.resident_level(k) == 2)
        cache.lookup(demoted, 10, 100)
        assert demoted not in cache.l2


class TestCostSavings:
    def test_hierarchy_cheaper_than_flat_small_cache(self):
        """Serving from SSD at 10% of recompute cost must reduce the total
        charged cost versus recomputing every L1 miss."""
        flat_charged = 0.0
        flat = KVS(100, CampPolicy())
        cache = build(l1_capacity=100, l2_capacity=1000, factor=0.1)
        hier_charged = 0.0
        import random
        rng = random.Random(0)
        requests = [(f"k{rng.randrange(50)}", 10, rng.choice([1, 100]))
                    for _ in range(2000)]
        for key, size, cost in requests:
            if not flat.get(key):
                flat_charged += cost
                flat.put(key, size, cost)
            hier_charged += cache.lookup(key, size, cost).charged_cost
        assert hier_charged < flat_charged

    def test_invalid_factor(self):
        l1 = KVS(10, LruPolicy())
        l2 = KVS(10, LruPolicy())
        with pytest.raises(ConfigurationError):
            TwoLevelCache(l1, l2, l2_hit_cost_factor=1.5)
