"""GDS tests: Algorithm 1 semantics and the Proposition 1 invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GdsPolicy, GreedyDualPolicy, GdsfPolicy
from repro.errors import DuplicateKeyError, EvictionError, MissingKeyError


def fill(policy, items):
    for key, size, cost in items:
        policy.on_insert(key, size, cost)


class TestBasicSemantics:
    def test_evicts_lowest_ratio_first(self):
        gds = GdsPolicy()
        # same L at insert; ratios 100/10=10 vs 1/10 -> key 'cheap' goes first
        fill(gds, [("dear", 10, 100), ("cheap", 10, 1)])
        assert gds.pop_victim() == "cheap"
        assert gds.pop_victim() == "dear"

    def test_size_matters(self):
        # the first insert fixes the adaptive multiplier at the largest size
        # so later ratios are directly comparable
        gds = GdsPolicy()
        fill(gds, [("anchor", 1000, 1),      # ratio 1
                   ("small", 10, 100),       # ratio 100*1000/10   = 10000
                   ("large", 1000, 100)])    # ratio 100*1000/1000 = 100
        assert gds.pop_victim() == "anchor"
        # equal costs: the bigger pair has the smaller ratio, goes first
        assert gds.pop_victim() == "large"
        assert gds.pop_victim() == "small"

    def test_hit_delays_eviction(self):
        gds = GdsPolicy()
        fill(gds, [("a", 10, 10), ("b", 10, 10), ("c", 10, 10)])
        gds.on_hit("a")  # refreshes H(a) above the others
        assert gds.pop_victim() == "b"

    def test_tie_break_is_lru(self):
        gds = GdsPolicy()
        fill(gds, [("first", 10, 10), ("second", 10, 10)])
        # identical H: least recently touched wins
        assert gds.pop_victim() == "first"

    def test_inflation_non_decreasing_under_evictions(self):
        gds = GdsPolicy()
        fill(gds, [(f"k{i}", 10, random.Random(7).randrange(1, 100))
                   for i in range(20)])
        previous = gds.inflation
        for _ in range(20):
            gds.pop_victim()
            assert gds.inflation >= previous
            previous = gds.inflation

    def test_aged_expensive_pair_eventually_evicted(self):
        """The paper's robustness claim: L inflation ages out costly pairs."""
        gds = GdsPolicy()
        gds.on_insert("expensive", 10, 10_000)
        # a stream of cheap, re-referenced pairs drives L upward
        for i in range(50):
            key = f"cheap{i}"
            gds.on_insert(key, 10, 1)
            gds.on_hit(key)
            gds.pop_victim()
        # eventually the expensive pair is the minimum
        keys = [gds.pop_victim()]
        assert "expensive" in keys or gds.inflation > 0


class TestErrors:
    def test_duplicate_insert(self):
        gds = GdsPolicy()
        gds.on_insert("a", 1, 1)
        with pytest.raises(DuplicateKeyError):
            gds.on_insert("a", 1, 1)

    def test_hit_missing(self):
        with pytest.raises(MissingKeyError):
            GdsPolicy().on_hit("nope")

    def test_remove_missing(self):
        with pytest.raises(MissingKeyError):
            GdsPolicy().on_remove("nope")

    def test_evict_empty(self):
        with pytest.raises(EvictionError):
            GdsPolicy().pop_victim()

    def test_remove_then_contains(self):
        gds = GdsPolicy()
        gds.on_insert("a", 1, 1)
        gds.on_remove("a")
        assert "a" not in gds
        assert len(gds) == 0


class TestProposition1:
    """L non-decreasing; L <= H(p) <= L + cost(p)/size(p) for residents."""

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15),      # key id
                              st.integers(1, 64),      # size
                              st.integers(0, 1000)),   # cost
                    min_size=1, max_size=200),
           st.integers(2, 12))
    def test_invariants_hold_under_random_traces(self, requests, max_resident):
        gds = GdsPolicy()
        previous_L = gds.inflation
        sizes = {}
        costs = {}
        for key_id, size, cost in requests:
            key = f"k{key_id}"
            size = sizes.setdefault(key, size)
            cost = costs.setdefault(key, cost)
            if key in gds:
                gds.on_hit(key)
            else:
                while len(gds) >= max_resident:
                    gds.pop_victim()
                gds.on_insert(key, size, cost)
            # claim 1: L never decreases
            assert gds.inflation >= previous_L
            previous_L = gds.inflation
            # claim 2: for the integerized ratio r, L <= H <= L + r
            conv = gds.converter
            for resident in list(_resident_keys(gds)):
                ratio = conv.to_integer(costs[resident], sizes[resident])
                h = gds.priority_of(resident)
                assert h <= gds.inflation + ratio
                # H was set with an older (smaller or equal) L and possibly a
                # smaller multiplier, so only the upper bound is exact; the
                # lower bound holds for the *current* minimum:
            minimum = gds.peek_min_priority()
            if minimum is not None:
                assert minimum >= gds.inflation or minimum >= previous_L - 1


def _resident_keys(gds):
    return list(gds._entries.keys())


class TestHeapBackends:
    @pytest.mark.parametrize("kind", ["dary", "binary", "pairing", "fibonacci"])
    def test_same_decisions_across_backends(self, kind):
        reference = GdsPolicy(heap_kind="dary")
        other = GdsPolicy(heap_kind=kind)
        rng = random.Random(3)
        trace = [(f"k{rng.randrange(30)}", rng.randrange(1, 50),
                  rng.choice([1, 100, 10_000])) for _ in range(400)]
        sizes = {}
        evictions_a, evictions_b = [], []
        for policy, log in ((reference, evictions_a), (other, evictions_b)):
            for key, size, cost in trace:
                size = sizes.setdefault(key, size)
                if key in policy:
                    policy.on_hit(key)
                else:
                    while len(policy) >= 10:
                        log.append(policy.pop_victim())
                    policy.on_insert(key, size, cost)
        assert evictions_a == evictions_b


class TestGreedyDual:
    def test_ignores_size(self):
        gd = GreedyDualPolicy()
        gd.on_insert("big-cheap", 1000, 1)
        gd.on_insert("small-dear", 1, 100)
        assert gd.pop_victim() == "big-cheap"

    def test_uniform_cost_behaves_like_lru(self):
        gd = GreedyDualPolicy()
        for key in ["a", "b", "c"]:
            gd.on_insert(key, 1, 5)
        gd.on_hit("a")
        assert gd.pop_victim() == "b"


class TestGdsf:
    def test_frequency_boosts_priority(self):
        gdsf = GdsfPolicy()
        # the anchor pins L low (line 2 advances L to the global minimum H
        # on every hit, and the anchor holds that minimum)
        gdsf.on_insert("anchor", 10, 1)
        gdsf.on_insert("popular", 10, 10)
        gdsf.on_insert("unpopular", 10, 10)
        for _ in range(5):
            gdsf.on_hit("popular")
        gdsf.on_hit("unpopular")
        assert gdsf.priority_of("popular") > gdsf.priority_of("unpopular")
        assert gdsf.frequency_of("popular") == 6

    def test_frequency_resets_on_reinsert(self):
        gdsf = GdsfPolicy()
        gdsf.on_insert("a", 10, 10)
        gdsf.on_hit("a")
        assert gdsf.pop_victim() == "a"
        gdsf.on_insert("a", 10, 10)
        assert gdsf.frequency_of("a") == 1

    def test_remove_clears_frequency(self):
        gdsf = GdsfPolicy()
        gdsf.on_insert("a", 10, 10)
        gdsf.on_remove("a")
        with pytest.raises(MissingKeyError):
            gdsf.frequency_of("a")


class TestStats:
    def test_stats_shape(self):
        gds = GdsPolicy()
        gds.on_insert("a", 10, 10)
        gds.on_hit("a")
        stats = gds.stats()
        assert stats["heap_updates"] >= 2
        assert stats["heap_size"] == 1
        assert "heap_node_visits" in stats

    def test_reset_stats(self):
        gds = GdsPolicy()
        gds.on_insert("a", 10, 10)
        gds.reset_stats()
        assert gds.stats()["heap_node_visits"] == 0
        assert gds.stats()["heap_updates"] == 0
