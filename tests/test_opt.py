"""Clairvoyant baselines: Belady's MIN and the cost-aware offline greedy."""


import pytest

from repro.core import (
    BeladyPolicy,
    CampPolicy,
    LruPolicy,
    OfflineGreedyPolicy,
    next_use_schedule,
)
from repro.errors import ConfigurationError, EvictionError
from repro.sim import run_policy_on_trace
from repro.workloads import TraceRecord, three_cost_trace, uniform_trace


def records(keys, size=1, cost=1):
    return [TraceRecord(k, size, cost) for k in keys]


def drive(policy, trace, max_resident):
    evictions = []
    for record in trace:
        if record.key in policy:
            policy.on_hit(record.key)
        else:
            while len(policy) >= max_resident:
                evictions.append(policy.pop_victim())
            policy.on_insert(record.key, record.size, record.cost)
    return evictions


class TestSchedule:
    def test_next_use_positions(self):
        trace = records(["a", "b", "a", "c", "a"])
        schedule = next_use_schedule(trace)
        assert list(schedule["a"]) == [0, 2, 4]
        assert list(schedule["b"]) == [1]


class TestBelady:
    def test_evicts_furthest_future_use(self):
        # a reused at 3, b reused at 4, c arrives at 2 -> evict b (furthest)
        trace = records(["a", "b", "c", "a", "b"])
        policy = BeladyPolicy.from_trace(trace)
        evictions = drive(policy, trace, 2)
        assert evictions[0] == "b" or evictions[0] == "a"
        # precisely: at c's arrival, next uses are a->3, b->4; evict b
        assert evictions[0] == "b"

    def test_never_used_again_evicted_first(self):
        trace = records(["dead", "a", "b", "a", "b", "a"])
        policy = BeladyPolicy.from_trace(trace)
        evictions = drive(policy, trace, 2)
        assert evictions[0] == "dead"

    def test_optimal_on_classic_sequence(self):
        """Belady achieves the known optimum on a textbook page sequence."""
        keys = list("abcdabeabcde")
        trace = records(keys)
        policy = BeladyPolicy.from_trace(trace)
        misses = 0
        for record in trace:
            if record.key in policy:
                policy.on_hit(record.key)
            else:
                misses += 1
                while len(policy) >= 3:
                    policy.pop_victim()
                policy.on_insert(record.key, 1, 1)
        # OPT on this sequence with 3 frames: 7 faults (textbook result)
        assert misses == 7

    def test_belady_beats_lru_on_miss_rate(self):
        trace = uniform_trace(n_keys=200, n_requests=10_000, seed=3)
        belady = run_policy_on_trace(BeladyPolicy.from_trace(trace), trace,
                                     cache_size_ratio=0.3)
        lru = run_policy_on_trace(LruPolicy(), trace, cache_size_ratio=0.3)
        assert belady.miss_rate <= lru.miss_rate

    def test_schedule_mismatch_raises(self):
        trace = records(["a", "b"])
        policy = BeladyPolicy.from_trace(trace)
        with pytest.raises(ConfigurationError):
            policy.on_insert("zzz", 1, 1)   # never scheduled

    def test_empty_eviction_raises(self):
        policy = BeladyPolicy({})
        with pytest.raises(EvictionError):
            policy.pop_victim()


class TestOfflineGreedy:
    def test_prefers_keeping_expensive_reused_pairs(self):
        trace = [TraceRecord("cheap", 10, 1), TraceRecord("dear", 10, 10_000),
                 TraceRecord("new", 10, 1),
                 TraceRecord("cheap", 10, 1), TraceRecord("dear", 10, 10_000)]
        policy = OfflineGreedyPolicy.from_trace(trace)
        evictions = drive(policy, trace, 2)
        assert evictions[0] == "cheap"   # same next-use distance, lower cost

    def test_beats_lru_on_cost_for_skewed_costs(self):
        trace = three_cost_trace(n_keys=500, n_requests=15_000, seed=5)
        greedy = run_policy_on_trace(OfflineGreedyPolicy.from_trace(trace),
                                     trace, cache_size_ratio=0.2)
        lru = run_policy_on_trace(LruPolicy(), trace, cache_size_ratio=0.2)
        assert greedy.cost_miss_ratio < lru.cost_miss_ratio

    def test_camp_between_lru_and_clairvoyant(self):
        """CAMP (online) should land between LRU and the clairvoyant greedy
        on the cost metric — the competitive-ratio story made empirical."""
        trace = three_cost_trace(n_keys=800, n_requests=25_000, seed=6)
        ratio = 0.2
        camp = run_policy_on_trace(CampPolicy(5), trace, ratio)
        lru = run_policy_on_trace(LruPolicy(), trace, ratio)
        oracle = run_policy_on_trace(OfflineGreedyPolicy.from_trace(trace),
                                     trace, ratio)
        assert oracle.cost_miss_ratio <= camp.cost_miss_ratio * 1.05
        assert camp.cost_miss_ratio < lru.cost_miss_ratio

    def test_remove_and_contains(self):
        trace = records(["a", "b", "a"])
        policy = OfflineGreedyPolicy.from_trace(trace)
        policy.on_insert("a", 1, 1)
        assert "a" in policy and len(policy) == 1
        policy.on_remove("a")
        assert "a" not in policy
