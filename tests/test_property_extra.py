"""Additional property tests: protocol fuzzing, CAMP Proposition 1,
trace IO fuzz round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CampPolicy
from repro.errors import ProtocolError, TraceFormatError
from repro.twemcache import parse_command_line
from repro.workloads import TraceRecord, read_trace, write_trace


class TestProtocolFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=120))
    def test_parser_never_crashes_unexpectedly(self, blob):
        """Arbitrary bytes either parse into a Request or raise
        ProtocolError — never any other exception."""
        try:
            request = parse_command_line(blob)
        except ProtocolError:
            return
        assert request.command in {"get", "set", "add", "replace", "delete",
                                   "incr", "decr", "touch", "stats",
                                   "version", "quit", "flush_all", "save",
                                   "digest"}

    @settings(max_examples=100, deadline=None)
    @given(key=st.text(alphabet=st.characters(min_codepoint=33,
                                              max_codepoint=126),
                       min_size=1, max_size=40).filter(
                           lambda s: " " not in s),
           flags=st.integers(0, 2 ** 16),
           exptime=st.integers(0, 10 ** 6),
           nbytes=st.integers(0, 10 ** 6),
           cost=st.integers(0, 10 ** 9))
    def test_well_formed_set_always_parses(self, key, flags, exptime,
                                           nbytes, cost):
        line = f"set {key} {flags} {exptime} {nbytes} {cost}".encode()
        request = parse_command_line(line)
        assert request.key == key
        assert request.nbytes == nbytes
        assert request.cost == cost


class TestCampProposition1:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(1, 64),
                              st.integers(0, 1000)),
                    min_size=1, max_size=200),
           st.integers(2, 12),
           st.sampled_from([1, 3, 5, None]))
    def test_L_bounds_hold(self, raw, max_resident, precision):
        """Proposition 1 on CAMP: L non-decreasing and, for every resident,
        L <= H(p) <= L' + c(p) where L' is L at p's last touch."""
        camp = CampPolicy(precision=precision)
        previous_L = camp.inflation
        sizes = {}
        costs = {}
        for key_id, size, cost in raw:
            key = f"k{key_id}"
            size = sizes.setdefault(key, size)
            cost = costs.setdefault(key, cost)
            if key in camp:
                camp.on_hit(key)
            else:
                while len(camp) >= max_resident:
                    camp.pop_victim()
                camp.on_insert(key, size, cost)
            assert camp.inflation >= previous_L
            previous_L = camp.inflation
            # the current eviction candidate's H is never below L... the
            # candidate's H may equal an older L + c; the invariant that is
            # always true is that L never exceeds the minimum resident H:
            minimum = camp.peek_min_priority()
            if minimum is not None:
                assert camp.inflation <= minimum[0]
            camp.check_invariants()


class TestTraceIoFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(
        st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1, max_size=20).filter(
                    lambda s: "," not in s and "\n" not in s),
        st.integers(1, 10 ** 9),
        st.one_of(st.integers(0, 10 ** 9),
                  st.floats(0, 10 ** 6, allow_nan=False,
                            allow_infinity=False))),
        min_size=0, max_size=50))
    def test_round_trip_preserves_records(self, rows):
        import os
        import tempfile
        records = [TraceRecord(key, size, round(cost, 6)
                               if isinstance(cost, float) else cost)
                   for key, size, cost in rows]
        fd, path = tempfile.mkstemp(suffix=".csv")
        os.close(fd)
        try:
            write_trace(records, path)
            back = read_trace(path)
        finally:
            os.unlink(path)
        assert len(back) == len(records)
        for original, loaded in zip(records, back):
            assert loaded.key == original.key
            assert loaded.size == original.size
            assert loaded.cost == pytest.approx(original.cost)

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=60))
    def test_arbitrary_lines_never_crash_unexpectedly(self, line):
        try:
            record = TraceRecord.from_line(line)
        except TraceFormatError:
            return
        assert record.size >= 1
        assert record.cost >= 0
