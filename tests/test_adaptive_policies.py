"""LRU-K, 2Q and ARC tests (the paper's related-work baselines)."""

import random

import pytest

from repro.core import ArcPolicy, LruKPolicy, TwoQPolicy
from repro.core.policy import CacheItem
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)


class TestLruK:
    def test_single_reference_items_evicted_first(self):
        policy = LruKPolicy(k=2)
        policy.on_insert("seen-once", 1, 1)
        policy.on_insert("seen-twice", 1, 1)
        policy.on_hit("seen-twice")
        assert policy.pop_victim() == "seen-once"

    def test_k2_prefers_older_second_reference(self):
        policy = LruKPolicy(k=2)
        policy.on_insert("a", 1, 1)   # seq 1
        policy.on_insert("b", 1, 1)   # seq 2
        policy.on_hit("a")            # a: [1, 3]
        policy.on_hit("b")            # b: [2, 4]
        policy.on_hit("a")            # a: [3, 5] -> kth-last = 3
        # b's kth-last = 2 < a's 3 -> b evicted
        assert policy.pop_victim() == "b"

    def test_k1_behaves_like_lru(self):
        policy = LruKPolicy(k=1)
        for key in "abc":
            policy.on_insert(key, 1, 1)
        policy.on_hit("a")
        assert policy.pop_victim() == "b"

    def test_reference_count_caps_at_k(self):
        policy = LruKPolicy(k=2)
        policy.on_insert("a", 1, 1)
        for _ in range(5):
            policy.on_hit("a")
        assert policy.reference_count("a") == 2

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            LruKPolicy(k=0)

    def test_errors(self):
        policy = LruKPolicy()
        with pytest.raises(EvictionError):
            policy.pop_victim()
        with pytest.raises(MissingKeyError):
            policy.on_hit("x")
        policy.on_insert("x", 1, 1)
        with pytest.raises(DuplicateKeyError):
            policy.on_insert("x", 1, 1)
        policy.on_remove("x")
        assert len(policy) == 0


class TestTwoQ:
    def test_first_timers_enter_a1in(self):
        policy = TwoQPolicy(capacity=100)
        policy.on_insert("a", 10, 1)
        assert policy.stats()["a1in_items"] == 1
        assert policy.stats()["am_items"] == 0

    def test_ghost_hit_promotes_to_main(self):
        policy = TwoQPolicy(capacity=100, kin=0.25, kout=0.5)
        # fill A1in beyond its budget (25 bytes) and evict
        for i in range(4):
            policy.on_insert(f"k{i}", 10, 1)
        victim = policy.pop_victim()   # A1in over budget -> FIFO evict k0
        assert victim == "k0"
        assert policy.in_ghost("k0")
        policy.on_insert("k0", 10, 1)  # back from ghost -> Am
        assert policy.stats()["am_items"] == 1

    def test_a1in_hit_does_not_reorder(self):
        policy = TwoQPolicy(capacity=100)
        policy.on_insert("a", 10, 1)
        policy.on_insert("b", 10, 1)
        policy.on_insert("c", 10, 1)
        policy.on_hit("a")
        # force A1in over budget then evict: "a" still first out
        policy.on_insert("d", 10, 1)
        assert policy.pop_victim() == "a"

    def test_main_queue_is_lru(self):
        policy = TwoQPolicy(capacity=100, kin=0.25, kout=1.0)
        # push x and y through A1in (budget 25) into the ghost
        for key in ["x", "y", "pad1", "pad2", "pad3"]:
            policy.on_insert(key, 10, 1)
        while policy.stats()["a1in_bytes"] > 25:
            policy.pop_victim()
        assert policy.in_ghost("x") and policy.in_ghost("y")
        # readmission from the ghost goes to the main (LRU) queue
        policy.on_insert("x", 10, 1)
        policy.on_insert("y", 10, 1)
        assert policy.stats()["am_items"] == 2
        policy.on_hit("x")  # x becomes MRU of Am
        # Am yields y before x (LRU), then A1in drains FIFO
        victims = [policy.pop_victim() for _ in range(len(policy))]
        assert victims.index("y") < victims.index("x")

    def test_ghost_bytes_bounded(self):
        policy = TwoQPolicy(capacity=100, kin=0.25, kout=0.5)
        for i in range(50):
            policy.on_insert(f"k{i}", 10, 1)
            while len(policy) > 3:
                policy.pop_victim()
        assert policy.stats()["ghost_items"] <= 5  # 50 bytes / 10 each

    def test_remove_from_either_queue(self):
        policy = TwoQPolicy(capacity=100)
        policy.on_insert("a", 10, 1)
        policy.on_remove("a")
        assert len(policy) == 0

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            TwoQPolicy(capacity=0)
        with pytest.raises(ConfigurationError):
            TwoQPolicy(capacity=100, kin=0.0)
        with pytest.raises(ConfigurationError):
            TwoQPolicy(capacity=100, kout=0)

    def test_errors(self):
        policy = TwoQPolicy(capacity=100)
        with pytest.raises(EvictionError):
            policy.pop_victim()
        with pytest.raises(MissingKeyError):
            policy.on_hit("ghost")


class TestArc:
    def test_hit_promotes_t1_to_t2(self):
        arc = ArcPolicy(capacity=100)
        arc.on_insert("a", 10, 1)
        assert arc.stats()["t1_bytes"] == 10
        arc.on_hit("a")
        assert arc.stats()["t1_bytes"] == 0
        assert arc.stats()["t2_bytes"] == 10

    def test_scan_resistance(self):
        """A one-pass scan must not flush the frequently hit working set."""
        arc = ArcPolicy(capacity=200)
        # working set, hit repeatedly -> lives in T2
        for key in ["w1", "w2"]:
            arc.on_insert(key, 50, 1)
            arc.on_hit(key)
            arc.on_hit(key)
        # scan of one-shot keys
        scanned_victims = []
        for i in range(20):
            item = CacheItem(f"scan{i}", 50, 1)
            while arc.wants_eviction(item, 200 - _used(arc)):
                scanned_victims.append(arc.pop_victim(item))
            arc.on_insert(item.key, item.size, item.cost)
        assert "w1" not in scanned_victims[:10]
        assert "w2" not in scanned_victims[:10]

    def test_ghost_hit_adapts_target(self):
        arc = ArcPolicy(capacity=100)
        for i in range(4):
            arc.on_insert(f"k{i}", 25, 1)
        item = CacheItem("k99", 25, 1)
        arc.pop_victim(item)   # k0 -> B1 ghost
        arc.on_insert("k99", 25, 1)
        before = arc.target_t1_bytes
        # re-request k0: it is in B1, so p should grow
        item0 = CacheItem("k0", 25, 1)
        arc.pop_victim(item0)
        arc.on_insert("k0", 25, 1)
        assert arc.target_t1_bytes >= before

    def test_b1_readmission_goes_to_t2(self):
        # capacity leaves headroom so ghost entries survive the T1+B1 bound
        arc = ArcPolicy(capacity=200)
        for i in range(4):
            arc.on_insert(f"k{i}", 25, 1)
        victim = arc.pop_victim(CacheItem("new", 25, 1))
        arc.on_insert("new", 25, 1)
        arc.pop_victim(CacheItem(victim, 25, 1))
        arc.on_insert(victim, 25, 1)   # was in B1
        assert arc.stats()["t2_bytes"] >= 25

    def test_remove(self):
        arc = ArcPolicy(capacity=100)
        arc.on_insert("a", 10, 1)
        arc.on_hit("a")
        arc.on_remove("a")
        assert len(arc) == 0
        assert arc.stats()["t2_bytes"] == 0

    def test_directory_bounded(self):
        arc = ArcPolicy(capacity=100)
        rng = random.Random(1)
        for i in range(500):
            key = f"k{rng.randrange(100)}"
            if key in arc:
                arc.on_hit(key)
                continue
            item = CacheItem(key, 10, 1)
            while arc.wants_eviction(item, 100 - _used(arc)):
                arc.pop_victim(item)
            arc.on_insert(key, 10, 1)
            stats = arc.stats()
            directory_bytes = (stats["t1_bytes"] + stats["t2_bytes"] +
                               10 * stats["b1_keys"] + 10 * stats["b2_keys"])
            assert directory_bytes <= 2 * 100 + 10

    def test_errors(self):
        arc = ArcPolicy(capacity=100)
        with pytest.raises(EvictionError):
            arc.pop_victim()
        with pytest.raises(MissingKeyError):
            arc.on_hit("x")
        with pytest.raises(ConfigurationError):
            ArcPolicy(capacity=0)


def _used(arc):
    stats = arc.stats()
    return stats["t1_bytes"] + stats["t2_bytes"]
