"""Admission controllers and the section 4.1 concurrency extensions."""

import threading
import random

import pytest

from repro.core import (
    AlwaysAdmit,
    CampPolicy,
    LruPolicy,
    ProbabilisticAdmission,
    SecondHitAdmission,
    ShardedCampPolicy,
    ThreadSafePolicy,
)
from repro.errors import ConfigurationError, EvictionError, MissingKeyError


class TestAlwaysAdmit:
    def test_admits_everything(self):
        controller = AlwaysAdmit()
        assert controller.admit("k", 1, 1)
        controller.on_access("k")
        assert controller.admit("k", 10 ** 9, 0)


class TestProbabilisticAdmission:
    def test_probability_one_admits_all(self):
        controller = ProbabilisticAdmission(1.0)
        assert all(controller.admit(f"k{i}", 1, 1) for i in range(100))

    def test_deterministic_with_seed(self):
        a = ProbabilisticAdmission(0.5, seed=7)
        b = ProbabilisticAdmission(0.5, seed=7)
        decisions_a = [a.admit(f"k{i}", 1, 1) for i in range(200)]
        decisions_b = [b.admit(f"k{i}", 1, 1) for i in range(200)]
        assert decisions_a == decisions_b

    def test_rate_roughly_matches(self):
        controller = ProbabilisticAdmission(0.3, seed=1)
        admitted = sum(controller.admit(f"k{i}", 1, 1) for i in range(5000))
        assert 0.25 < admitted / 5000 < 0.35

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticAdmission(0.0)
        with pytest.raises(ConfigurationError):
            ProbabilisticAdmission(1.5)


class TestSecondHitAdmission:
    def test_first_request_rejected(self):
        controller = SecondHitAdmission(window=100)
        assert not controller.admit("a", 1, 1)

    def test_second_request_admitted(self):
        controller = SecondHitAdmission(window=100)
        controller.admit("a", 1, 1)
        assert controller.admit("a", 1, 1)

    def test_hits_keep_key_warm(self):
        controller = SecondHitAdmission(window=100)
        controller.on_access("a")
        assert controller.admit("a", 1, 1)

    def test_rotation_eventually_forgets(self):
        controller = SecondHitAdmission(window=10)
        controller.on_access("old")
        # two full generations of distinct keys flush "old"
        for i in range(25):
            controller.on_access(f"filler{i}")
        assert not controller.seen("old")

    def test_one_hit_wonders_never_admitted(self):
        controller = SecondHitAdmission(window=50)
        decisions = [controller.admit(f"unique{i}", 1, 1) for i in range(40)]
        assert not any(decisions)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            SecondHitAdmission(window=0)


class TestThreadSafePolicy:
    def test_delegation(self):
        policy = ThreadSafePolicy(LruPolicy())
        policy.on_insert("a", 1, 1)
        policy.on_hit("a")
        assert "a" in policy
        assert len(policy) == 1
        assert policy.pop_victim() == "a"

    def test_inner_accessor(self):
        inner = CampPolicy()
        assert ThreadSafePolicy(inner).inner is inner

    def test_concurrent_mixed_operations(self):
        """Hammer one shared CAMP from 8 threads; invariants must hold."""
        policy = ThreadSafePolicy(CampPolicy())
        errors = []

        def worker(thread_id):
            rng = random.Random(thread_id)
            try:
                for i in range(300):
                    key = f"t{thread_id}-k{i}"
                    policy.on_insert(key, rng.randrange(1, 50),
                                     rng.choice([1, 100, 10_000]))
                    if rng.random() < 0.5:
                        try:
                            policy.on_hit(key)
                        except MissingKeyError:
                            # another thread's pop_victim evicted the key
                            # between our insert and hit — a benign race
                            pass
                    if len(policy) > 100:
                        try:
                            policy.pop_victim()
                        except EvictionError:
                            pass
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        policy.inner.check_invariants()


class TestShardedCamp:
    def test_distributes_keys(self):
        policy = ShardedCampPolicy(shards=4)
        for i in range(200):
            policy.on_insert(f"k{i}", 1, 1)
        sizes = policy.shard_sizes()
        assert sum(sizes) == 200
        assert all(size > 0 for size in sizes)

    def test_single_shard_equals_camp(self):
        sharded = ShardedCampPolicy(shards=1, precision=None)
        camp = CampPolicy(precision=None)
        rng = random.Random(9)
        trace = [(f"k{rng.randrange(30)}", rng.randrange(1, 40),
                  rng.choice([1, 100, 10_000])) for _ in range(500)]
        evictions = {id(sharded): [], id(camp): []}
        sizes = {}
        for policy in (sharded, camp):
            for key, size, cost in trace:
                size = sizes.setdefault(key, size)
                if key in policy:
                    policy.on_hit(key)
                else:
                    while len(policy) >= 12:
                        evictions[id(policy)].append(policy.pop_victim())
                    policy.on_insert(key, size, cost)
        assert evictions[id(sharded)] == evictions[id(camp)]

    def test_victim_is_global_minimum_head(self):
        policy = ShardedCampPolicy(shards=4, precision=None)
        policy.on_insert("cheap", 10, 1)
        for i in range(20):
            policy.on_insert(f"dear{i}", 10, 10_000)
        assert policy.pop_victim() == "cheap"

    def test_evict_empty_raises(self):
        with pytest.raises(EvictionError):
            ShardedCampPolicy(shards=2).pop_victim()

    def test_invalid_shards(self):
        with pytest.raises(ConfigurationError):
            ShardedCampPolicy(shards=0)

    def test_stats_aggregate(self):
        policy = ShardedCampPolicy(shards=3)
        for i in range(30):
            policy.on_insert(f"k{i}", 1, 1)
        stats = policy.stats()
        assert stats["shards"] == 3
        assert stats["queue_count"] >= 1

    def test_concurrent_shard_access(self):
        policy = ShardedCampPolicy(shards=4)
        errors = []

        def worker(thread_id):
            try:
                for i in range(200):
                    key = f"t{thread_id}-{i}"
                    policy.on_insert(key, 1, 1)
                    policy.on_hit(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(policy) == 800
