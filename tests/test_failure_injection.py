"""Failure injection: misbehaving peers, crashing policies, node loss.

A production-quality cache layer must stay consistent when its
collaborators misbehave; these tests break things on purpose.
"""

import socket
import threading

import pytest

from repro.cache import KVS
from repro.cluster import CooperativeCluster
from repro.core import LruPolicy
from repro.core.policy import EvictionPolicy
from repro.errors import ProtocolError, ReproError
from repro.twemcache import SocketClient, TwemcacheEngine, TwemcacheServer


class TestMisbehavingServer:
    """The socket client against endpoints that lie or die."""

    def _one_shot_server(self, payload: bytes):
        """A TCP server that sends ``payload`` then closes."""
        listener = socket.create_server(("127.0.0.1", 0))

        def serve():
            conn, _ = listener.accept()
            conn.recv(65536)
            if payload:
                conn.sendall(payload)
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return listener.getsockname(), listener

    def test_connection_closed_mid_response(self):
        address, listener = self._one_shot_server(b"VALUE k 0 100\r\nshort")
        try:
            client = SocketClient(address)
            with pytest.raises(ProtocolError):
                client.get("k")
        finally:
            listener.close()

    def test_garbage_reply(self):
        address, listener = self._one_shot_server(b"BANANAS\r\n")
        try:
            client = SocketClient(address)
            with pytest.raises(ProtocolError):
                client.get("k")
        finally:
            listener.close()

    def test_malformed_value_header(self):
        address, listener = self._one_shot_server(b"VALUE k 0\r\nEND\r\n")
        try:
            client = SocketClient(address)
            with pytest.raises(ProtocolError):
                client.get("k")
        finally:
            listener.close()

    def test_server_survives_client_disconnect_mid_set(self):
        engine = TwemcacheEngine(1 << 20, slab_size=1 << 16)
        with TwemcacheServer(engine) as server:
            raw = socket.create_connection(server.address)
            raw.sendall(b"set k 0 0 100\r\npartial")   # missing bytes
            raw.close()
            # the server must keep serving others
            with SocketClient(server.address) as client:
                assert client.set("ok", b"fine")
                assert client.get("ok").value == b"fine"
            engine.check_consistency()


class _FaultyPolicy(EvictionPolicy):
    """LRU that raises on the Nth victim selection."""

    name = "faulty"

    def __init__(self, fail_on_eviction: int) -> None:
        self._inner = LruPolicy()
        self._fail_on = fail_on_eviction
        self._evictions = 0

    def on_hit(self, key):
        self._inner.on_hit(key)

    def on_insert(self, key, size, cost):
        self._inner.on_insert(key, size, cost)

    def pop_victim(self, incoming=None):
        self._evictions += 1
        if self._evictions == self._fail_on:
            raise RuntimeError("injected policy crash")
        return self._inner.pop_victim(incoming)

    def on_remove(self, key):
        self._inner.on_remove(key)

    def __contains__(self, key):
        return key in self._inner

    def __len__(self):
        return len(self._inner)


class TestCrashingPolicy:
    def test_kvs_accounting_survives_policy_crash(self):
        """A policy exception propagates, but the store's byte accounting
        and residency map stay consistent (no phantom items)."""
        kvs = KVS(30, _FaultyPolicy(fail_on_eviction=2))
        kvs.put("a", 10, 1)
        kvs.put("b", 10, 1)
        kvs.put("c", 10, 1)
        kvs.put("d", 10, 1)   # first eviction: fine
        with pytest.raises(RuntimeError):
            kvs.put("e", 10, 1)   # second eviction: injected crash
        # the failed insert must not have been half-applied
        assert "e" not in kvs
        assert kvs.used_bytes == sum(
            item.size for item in kvs.resident_items())
        assert kvs.used_bytes <= kvs.capacity


class TestClusterNodeLoss:
    def test_requests_reroute_after_node_removal(self):
        cluster = CooperativeCluster(["n1", "n2", "n3"],
                                     capacity_per_node=20_000, replicas=2)
        keys = [f"k{i}" for i in range(200)]
        for key in keys:
            cluster.get(key, 50, 100)
        # drop a node from the ring; survivors keep serving every key
        cluster.ring.remove_node("n2")
        for key in keys:
            outcome = cluster.get(key, 50, 100)
            assert outcome in ("local", "remote", "miss")
        holders = {name for key in keys
                   for name in cluster.ring.preference_list(key, 2)}
        assert "n2" not in holders

    def test_empty_ring_raises(self):
        cluster = CooperativeCluster(["only"], capacity_per_node=1000)
        cluster.ring.remove_node("only")
        with pytest.raises(ReproError):
            cluster.get("k", 10, 1)
