"""Failure injection: misbehaving peers, crashing policies, node loss.

A production-quality cache layer must stay consistent when its
collaborators misbehave; these tests break things on purpose.
"""

import socket
import threading

import pytest

from repro.cache import KVS
from repro.cache.store import StoreConfig
from repro.cluster import CooperativeCluster
from repro.core import LruPolicy, make_policy
from repro.core.policy import EvictionPolicy
from repro.errors import ProtocolError, ReproError
from repro.faults import Fault, FaultPlan, inject
from repro.persistence import (
    AppendOnlyLog,
    PersistenceError,
    RecoveryManager,
    Snapshotter,
    log_path_for,
    snapshot_generations,
)
from repro.tiering import DiskTier
from repro.twemcache import SocketClient, TwemcacheEngine, TwemcacheServer


class TestMisbehavingServer:
    """The socket client against endpoints that lie or die."""

    def _one_shot_server(self, payload: bytes):
        """A TCP server that sends ``payload`` then closes."""
        listener = socket.create_server(("127.0.0.1", 0))

        def serve():
            conn, _ = listener.accept()
            conn.recv(65536)
            if payload:
                conn.sendall(payload)
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return listener.getsockname(), listener

    def test_connection_closed_mid_response(self):
        address, listener = self._one_shot_server(b"VALUE k 0 100\r\nshort")
        try:
            client = SocketClient(address)
            with pytest.raises(ProtocolError):
                client.get("k")
        finally:
            listener.close()

    def test_garbage_reply(self):
        address, listener = self._one_shot_server(b"BANANAS\r\n")
        try:
            client = SocketClient(address)
            with pytest.raises(ProtocolError):
                client.get("k")
        finally:
            listener.close()

    def test_malformed_value_header(self):
        address, listener = self._one_shot_server(b"VALUE k 0\r\nEND\r\n")
        try:
            client = SocketClient(address)
            with pytest.raises(ProtocolError):
                client.get("k")
        finally:
            listener.close()

    def test_server_survives_client_disconnect_mid_set(self):
        engine = TwemcacheEngine(1 << 20, slab_size=1 << 16)
        with TwemcacheServer(engine) as server:
            raw = socket.create_connection(server.address)
            raw.sendall(b"set k 0 0 100\r\npartial")   # missing bytes
            raw.close()
            # the server must keep serving others
            with SocketClient(server.address) as client:
                assert client.set("ok", b"fine")
                assert client.get("ok").value == b"fine"
            engine.check_consistency()


class _FaultyPolicy(EvictionPolicy):
    """LRU that raises on the Nth victim selection."""

    name = "faulty"

    def __init__(self, fail_on_eviction: int) -> None:
        self._inner = LruPolicy()
        self._fail_on = fail_on_eviction
        self._evictions = 0

    def on_hit(self, key):
        self._inner.on_hit(key)

    def on_insert(self, key, size, cost):
        self._inner.on_insert(key, size, cost)

    def pop_victim(self, incoming=None):
        self._evictions += 1
        if self._evictions == self._fail_on:
            raise RuntimeError("injected policy crash")
        return self._inner.pop_victim(incoming)

    def on_remove(self, key):
        self._inner.on_remove(key)

    def __contains__(self, key):
        return key in self._inner

    def __len__(self):
        return len(self._inner)


class TestCrashingPolicy:
    def test_kvs_accounting_survives_policy_crash(self):
        """A policy exception propagates, but the store's byte accounting
        and residency map stay consistent (no phantom items)."""
        kvs = KVS(30, _FaultyPolicy(fail_on_eviction=2))
        kvs.put("a", 10, 1)
        kvs.put("b", 10, 1)
        kvs.put("c", 10, 1)
        kvs.put("d", 10, 1)   # first eviction: fine
        with pytest.raises(RuntimeError):
            kvs.put("e", 10, 1)   # second eviction: injected crash
        # the failed insert must not have been half-applied
        assert "e" not in kvs
        assert kvs.used_bytes == sum(
            item.size for item in kvs.resident_items())
        assert kvs.used_bytes <= kvs.capacity


class TestPersistenceFailures:
    """Durable state under crashes: kills mid-save, torn logs, bit rot."""

    def _snapshot_once(self, tmp_path, keys=20):
        kvs = KVS(10_000, make_policy("camp", 10_000))
        for i in range(keys):
            kvs.insert(f"k{i}", 40, 10)
        Snapshotter(tmp_path).save(kvs)
        return kvs

    def test_kill_mid_snapshot_leaves_old_generation_intact(self, tmp_path,
                                                            monkeypatch):
        import repro.persistence.snapshot as snapshot_module
        original = self._snapshot_once(tmp_path)
        # the kill lands between writing the temp file and publishing it:
        # os.replace never runs, so generation 1 must stay authoritative
        killed = {}

        def die_before_publish(src, dst):
            killed["temp"] = src
            raise OSError("killed -9 (injected)")

        monkeypatch.setattr(snapshot_module.os, "replace",
                            die_before_publish)
        with pytest.raises(PersistenceError):
            Snapshotter(tmp_path).save(original)
        monkeypatch.undo()
        assert snapshot_generations(tmp_path) == [1]
        target = KVS(10_000, make_policy("camp", 10_000))
        report = RecoveryManager(tmp_path).recover_into(target)
        assert report.generation == 1
        assert len(target) == len(original)

    def test_orphan_temp_file_is_ignored_by_recovery(self, tmp_path):
        original = self._snapshot_once(tmp_path)
        # a killed process can leave the temp file behind with no chance
        # to clean up; recovery must not even look at it
        (tmp_path / "snapshot-000002.snap.tmp").write_bytes(b"half-writ")
        target = KVS(10_000, make_policy("camp", 10_000))
        report = RecoveryManager(tmp_path).recover_into(target)
        assert report.generation == 1
        assert len(target) == len(original)

    def test_truncated_log_tail_replays_valid_prefix(self, tmp_path):
        self._snapshot_once(tmp_path)
        log_path = log_path_for(tmp_path, 1)
        with AppendOnlyLog(log_path) as log:
            log.log_insert("post1", 40, 10)
            log.log_insert("post2", 40, 10)
        with open(log_path, "rb+") as handle:
            handle.truncate(log_path.stat().st_size - 5)   # torn tail
        target = KVS(10_000, make_policy("camp", 10_000))
        report = RecoveryManager(tmp_path).recover_into(target)
        assert report.torn_tail_truncated
        assert report.log_records_replayed == 1
        assert "post1" in target and "post2" not in target
        # the repair really truncated: a second recovery reads it clean
        second = KVS(10_000, make_policy("camp", 10_000))
        assert not RecoveryManager(tmp_path).recover_into(
            second).torn_tail_truncated

    def test_garbage_log_tail_replays_valid_prefix(self, tmp_path):
        self._snapshot_once(tmp_path)
        log_path = log_path_for(tmp_path, 1)
        with AppendOnlyLog(log_path) as log:
            log.log_insert("post1", 40, 10)
        with open(log_path, "ab") as handle:
            handle.write(b"\xff" * 37)   # garbage, not a torn frame
        target = KVS(10_000, make_policy("camp", 10_000))
        report = RecoveryManager(tmp_path).recover_into(target)
        assert report.log_records_replayed == 1
        assert report.torn_tail_truncated
        assert "post1" in target

    def test_checksum_mismatched_snapshot_falls_back_a_generation(
            self, tmp_path):
        kvs = KVS(10_000, make_policy("camp", 10_000))
        snapshotter = Snapshotter(tmp_path, keep_generations=2)
        for i in range(10):
            kvs.insert(f"old{i}", 40, 10)
        snapshotter.save(kvs)
        kvs.insert("newer", 40, 10)
        snapshotter.save(kvs)
        # bit rot inside generation 2's item section
        newest = snapshotter.path_for(2)
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        newest.write_bytes(bytes(raw))
        target = KVS(10_000, make_policy("camp", 10_000))
        report = RecoveryManager(tmp_path).recover_into(target)
        assert report.corrupt_generations == [2]
        assert report.generation == 1
        assert "newer" not in target and "old3" in target

    def test_every_generation_corrupt_recovers_empty(self, tmp_path):
        self._snapshot_once(tmp_path)
        path = Snapshotter(tmp_path).path_for(1)
        path.write_bytes(b"\x00" * 64)
        target = KVS(10_000, make_policy("camp", 10_000))
        report = RecoveryManager(tmp_path).recover_into(target)
        assert not report.recovered
        assert report.corrupt_generations == [1]
        assert len(target) == 0

    def test_store_warm_build_survives_corrupt_newest_generation(
            self, tmp_path):
        store = (StoreConfig(10_000).policy("camp")
                 .persistence(tmp_path, keep_generations=2).build())
        store.put("a", 40, 10)
        store.save()
        store.put("b", 40, 10)
        generation = store.save()
        store.persistence.close()
        newest = Snapshotter(tmp_path).path_for(generation)
        raw = bytearray(newest.read_bytes())
        raw[-10] ^= 0x10
        newest.write_bytes(bytes(raw))
        warm = (StoreConfig(10_000).policy("camp")
                .persistence(tmp_path, keep_generations=2).build())
        assert warm.last_recovery.corrupt_generations == [generation]
        assert warm.last_recovery.generation == generation - 1
        assert "a" in warm
        warm.persistence.close()


class TestInjectedDiskFaults:
    """Disk faults through the :mod:`repro.faults` file shim: ENOSPC
    and short writes on every append/publish path must fail cleanly
    (an exception, never silent loss), leave prior durable state
    intact, and succeed on the next attempt once the fault clears."""

    def _snapshot_once(self, tmp_path, keys=20):
        kvs = KVS(10_000, make_policy("camp", 10_000))
        for i in range(keys):
            kvs.insert(f"k{i}", 40, 10)
        Snapshotter(tmp_path).save(kvs)
        return kvs

    @pytest.mark.parametrize("fault", [
        Fault(kind="enospc", seam="file", target="snap"),
        Fault(kind="short_write", seam="file", target="snap",
              keep_bytes=16),
    ])
    def test_snapshot_write_fault_keeps_prior_generation(self, tmp_path,
                                                         fault):
        original = self._snapshot_once(tmp_path)
        with inject(FaultPlan([fault])):
            with pytest.raises(PersistenceError):
                Snapshotter(tmp_path).save(original)
        # generation 1 stays authoritative; no temp orphan left behind
        assert snapshot_generations(tmp_path) == [1]
        assert not list(tmp_path.glob("*.tmp"))
        target = KVS(10_000, make_policy("camp", 10_000))
        assert RecoveryManager(tmp_path).recover_into(target).generation == 1
        assert len(target) == len(original)
        # the disk "frees up": the very next save publishes generation 2
        Snapshotter(tmp_path).save(original)
        assert 2 in snapshot_generations(tmp_path)

    @pytest.mark.parametrize("fault", [
        Fault(kind="enospc", seam="file", target="aol"),
        Fault(kind="short_write", seam="file", target="aol",
              keep_bytes=5),
    ])
    def test_aol_append_fault_fails_cleanly_and_recovers(self, tmp_path,
                                                         fault):
        self._snapshot_once(tmp_path)
        log_path = log_path_for(tmp_path, 1)
        with AppendOnlyLog(log_path) as log:
            log.log_insert("pre", 40, 10)
            with inject(FaultPlan([fault])):
                with pytest.raises(PersistenceError):
                    log.log_insert("doomed", 40, 10)
            # the failed append truncated its torn frame: the next
            # append lands on a clean boundary and replays whole
            log.log_insert("post", 40, 10)
        target = KVS(10_000, make_policy("camp", 10_000))
        report = RecoveryManager(tmp_path).recover_into(target)
        assert not report.torn_tail_truncated
        assert report.log_records_replayed == 2
        assert "pre" in target and "post" in target
        assert "doomed" not in target

    @pytest.mark.parametrize("fault", [
        Fault(kind="enospc", seam="file", target="segment"),
        Fault(kind="short_write", seam="file", target="segment",
              keep_bytes=7),
    ])
    def test_disk_tier_append_fault_keeps_prior_copy_live(self, tmp_path,
                                                          fault):
        tier = DiskTier(tmp_path, capacity_bytes=1 << 20,
                        segment_bytes=1 << 16)
        assert tier.put("stable", b"v1" * 20, size=60, cost=5)
        with inject(FaultPlan([fault])):
            with pytest.raises(PersistenceError):
                tier.put("stable", b"v2" * 20, size=60, cost=5)
        # the failed supersede left the original record live...
        record = tier.get("stable")
        assert record is not None and record.value == b"v1" * 20
        # ...the segment file is clean (no torn frame), so a cold
        # recovery adopts it...
        rebuilt = DiskTier(tmp_path, capacity_bytes=1 << 20,
                           segment_bytes=1 << 16)
        survivor = rebuilt.get("stable")
        assert survivor is not None and survivor.value == b"v1" * 20
        # ...and the next append on the original tier goes through
        assert tier.put("stable", b"v3" * 20, size=60, cost=5)
        assert tier.get("stable").value == b"v3" * 20


class TestClusterNodeLoss:
    def test_requests_reroute_after_node_removal(self):
        cluster = CooperativeCluster(["n1", "n2", "n3"],
                                     capacity_per_node=20_000, replicas=2)
        keys = [f"k{i}" for i in range(200)]
        for key in keys:
            cluster.get(key, 50, 100)
        # drop a node from the ring; survivors keep serving every key
        cluster.ring.remove_node("n2")
        for key in keys:
            outcome = cluster.get(key, 50, 100)
            assert outcome in ("local", "remote", "miss")
        holders = {name for key in keys
                   for name in cluster.ring.preference_list(key, 2)}
        assert "n2" not in holders

    def test_empty_ring_raises(self):
        cluster = CooperativeCluster(["only"], capacity_per_node=1000)
        cluster.ring.remove_node("only")
        with pytest.raises(ReproError):
            cluster.get("k", 10, 1)
