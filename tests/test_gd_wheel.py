"""GD-Wheel tests — approximate Greedy Dual over hierarchical cost wheels."""

import random

import pytest

from repro.core import GdWheelPolicy
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)


class TestBasics:
    def test_low_cost_evicted_before_high_cost(self):
        wheel = GdWheelPolicy()
        wheel.on_insert("cheap", 1, 1)
        wheel.on_insert("dear", 1, 50)
        assert wheel.pop_victim() == "cheap"
        assert wheel.pop_victim() == "dear"

    def test_eviction_order_approximates_priority_order(self):
        wheel = GdWheelPolicy(num_slots=64)
        rng = random.Random(0)
        costs = {f"k{i}": rng.randrange(1, 60) for i in range(40)}
        for key, cost in costs.items():
            wheel.on_insert(key, 1, cost)
        order = [wheel.pop_victim() for _ in range(40)]
        # within wheel-0 granularity (1), order must be exactly by cost then
        # insertion; check monotone non-decreasing cost sequence
        evicted_costs = [costs[k] for k in order]
        assert evicted_costs == sorted(evicted_costs)

    def test_hit_refreshes_priority(self):
        wheel = GdWheelPolicy()
        wheel.on_insert("a", 1, 5)
        wheel.on_insert("b", 1, 5)
        wheel.on_hit("a")  # moves a to L + 5 again, same as b... then evict
        victim = wheel.pop_victim()
        assert victim in {"a", "b"}

    def test_inflation_advances_with_evictions(self):
        wheel = GdWheelPolicy()
        for i, cost in enumerate([1, 10, 20, 30]):
            wheel.on_insert(f"k{i}", 1, cost)
        wheel.pop_victim()
        wheel.pop_victim()
        assert wheel.inflation >= 1

    def test_high_cost_lands_in_upper_wheel_and_migrates(self):
        wheel = GdWheelPolicy(num_slots=4, levels=3)
        wheel.on_insert("far", 1, 50)   # beyond wheel 0 span (4)
        wheel.on_insert("near", 1, 2)
        assert wheel.pop_victim() == "near"
        # evicting "far" requires migrating it down
        assert wheel.pop_victim() == "far"
        assert wheel.stats()["migrated_items"] >= 1

    def test_overflow_beyond_top_wheel_clamps(self):
        wheel = GdWheelPolicy(num_slots=2, levels=2)
        wheel.on_insert("huge", 1, 10 ** 6)
        wheel.on_insert("small", 1, 1)
        assert wheel.pop_victim() == "small"
        assert wheel.pop_victim() == "huge"

    def test_fifo_within_slot(self):
        wheel = GdWheelPolicy()
        wheel.on_insert("first", 1, 5)
        wheel.on_insert("second", 1, 5)
        assert wheel.pop_victim() == "first"


class TestBookkeeping:
    def test_remove(self):
        wheel = GdWheelPolicy()
        wheel.on_insert("a", 1, 5)
        wheel.on_insert("b", 1, 7)
        wheel.on_remove("a")
        assert "a" not in wheel
        assert wheel.pop_victim() == "b"

    def test_len_and_contains(self):
        wheel = GdWheelPolicy()
        assert len(wheel) == 0
        wheel.on_insert("a", 1, 5)
        assert len(wheel) == 1
        assert "a" in wheel

    def test_stats(self):
        wheel = GdWheelPolicy()
        wheel.on_insert("a", 1, 5)
        stats = wheel.stats()
        assert stats["wheel_counts"] == 1
        wheel.reset_stats()
        assert wheel.stats()["migrated_items"] == 0

    def test_errors(self):
        wheel = GdWheelPolicy()
        with pytest.raises(EvictionError):
            wheel.pop_victim()
        with pytest.raises(MissingKeyError):
            wheel.on_hit("x")
        with pytest.raises(MissingKeyError):
            wheel.on_remove("x")
        wheel.on_insert("x", 1, 1)
        with pytest.raises(DuplicateKeyError):
            wheel.on_insert("x", 1, 1)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            GdWheelPolicy(num_slots=1)
        with pytest.raises(ConfigurationError):
            GdWheelPolicy(levels=0)


class TestStress:
    def test_random_churn_conserves_items(self):
        wheel = GdWheelPolicy(num_slots=8, levels=3)
        rng = random.Random(42)
        resident = set()
        for step in range(3000):
            r = rng.random()
            if r < 0.5 or not resident:
                key = f"k{step}"
                wheel.on_insert(key, rng.randrange(1, 100),
                                rng.choice([1, 100, 10_000]))
                resident.add(key)
            elif r < 0.8:
                key = wheel.pop_victim()
                assert key in resident
                resident.discard(key)
            elif r < 0.9:
                key = rng.choice(sorted(resident))
                wheel.on_hit(key)
            else:
                key = rng.choice(sorted(resident))
                wheel.on_remove(key)
                resident.discard(key)
            assert len(wheel) == len(resident)
        # drain completely
        while resident:
            resident.discard(wheel.pop_victim())
        assert len(wheel) == 0
