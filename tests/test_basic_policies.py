"""LRU / FIFO / LFU tests, including an LRU-vs-OrderedDict oracle."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FifoPolicy, LfuPolicy, LruPolicy
from repro.errors import DuplicateKeyError, EvictionError, MissingKeyError


class TestLru:
    def test_evicts_least_recent(self):
        lru = LruPolicy()
        for key in "abc":
            lru.on_insert(key, 1, 1)
        lru.on_hit("a")
        assert lru.pop_victim() == "b"

    def test_order_introspection(self):
        lru = LruPolicy()
        for key in "abc":
            lru.on_insert(key, 1, 1)
        lru.on_hit("b")
        assert list(lru.keys_lru_to_mru()) == ["a", "c", "b"]

    def test_remove(self):
        lru = LruPolicy()
        for key in "abc":
            lru.on_insert(key, 1, 1)
        lru.on_remove("b")
        assert "b" not in lru
        assert lru.pop_victim() == "a"

    def test_errors(self):
        lru = LruPolicy()
        with pytest.raises(EvictionError):
            lru.pop_victim()
        with pytest.raises(MissingKeyError):
            lru.on_hit("x")
        with pytest.raises(MissingKeyError):
            lru.on_remove("x")
        lru.on_insert("x", 1, 1)
        with pytest.raises(DuplicateKeyError):
            lru.on_insert("x", 1, 1)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["touch", "insert", "evict",
                                               "remove"]),
                              st.integers(0, 15)),
                    max_size=150))
    def test_matches_ordereddict_oracle(self, ops):
        """LRU must agree with the canonical OrderedDict implementation."""
        lru = LruPolicy()
        oracle = OrderedDict()
        for op, key_id in ops:
            key = f"k{key_id}"
            if op == "insert" and key not in oracle:
                lru.on_insert(key, 1, 1)
                oracle[key] = True
            elif op == "touch" and key in oracle:
                lru.on_hit(key)
                oracle.move_to_end(key)
            elif op == "evict" and oracle:
                expected, _ = oracle.popitem(last=False)
                assert lru.pop_victim() == expected
            elif op == "remove" and key in oracle:
                lru.on_remove(key)
                del oracle[key]
            assert len(lru) == len(oracle)
            assert list(lru.keys_lru_to_mru()) == list(oracle.keys())


class TestFifo:
    def test_hits_do_not_reorder(self):
        fifo = FifoPolicy()
        for key in "abc":
            fifo.on_insert(key, 1, 1)
        fifo.on_hit("a")
        fifo.on_hit("a")
        assert fifo.pop_victim() == "a"

    def test_insertion_order_eviction(self):
        fifo = FifoPolicy()
        for key in "abcd":
            fifo.on_insert(key, 1, 1)
        assert [fifo.pop_victim() for _ in range(4)] == list("abcd")

    def test_remove_mid_queue(self):
        fifo = FifoPolicy()
        for key in "abc":
            fifo.on_insert(key, 1, 1)
        fifo.on_remove("a")
        assert fifo.pop_victim() == "b"

    def test_errors(self):
        fifo = FifoPolicy()
        with pytest.raises(EvictionError):
            fifo.pop_victim()
        with pytest.raises(MissingKeyError):
            fifo.on_hit("ghost")


class TestLfu:
    def test_evicts_least_frequent(self):
        lfu = LfuPolicy()
        for key in "abc":
            lfu.on_insert(key, 1, 1)
        lfu.on_hit("a")
        lfu.on_hit("a")
        lfu.on_hit("b")
        assert lfu.pop_victim() == "c"
        assert lfu.pop_victim() == "b"
        assert lfu.pop_victim() == "a"

    def test_tie_breaks_by_recency_of_insertion(self):
        lfu = LfuPolicy()
        lfu.on_insert("old", 1, 1)
        lfu.on_insert("new", 1, 1)
        assert lfu.pop_victim() == "old"

    def test_frequency_counter(self):
        lfu = LfuPolicy()
        lfu.on_insert("a", 1, 1)
        assert lfu.frequency_of("a") == 1
        lfu.on_hit("a")
        assert lfu.frequency_of("a") == 2

    def test_min_freq_recovers_after_bucket_drain(self):
        lfu = LfuPolicy()
        lfu.on_insert("a", 1, 1)
        lfu.on_hit("a")          # a at freq 2
        lfu.on_insert("b", 1, 1)  # b at freq 1
        assert lfu.pop_victim() == "b"
        assert lfu.pop_victim() == "a"

    def test_remove_updates_buckets(self):
        lfu = LfuPolicy()
        lfu.on_insert("a", 1, 1)
        lfu.on_insert("b", 1, 1)
        lfu.on_hit("a")
        lfu.on_remove("b")
        assert lfu.pop_victim() == "a"

    def test_errors(self):
        lfu = LfuPolicy()
        with pytest.raises(EvictionError):
            lfu.pop_victim()
        with pytest.raises(MissingKeyError):
            lfu.frequency_of("x")

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["touch", "insert", "evict"]),
                              st.integers(0, 10)),
                    max_size=120))
    def test_matches_naive_oracle(self, ops):
        """LFU victim = minimum (freq, last-insert-order among that freq)."""
        lfu = LfuPolicy()
        freqs = {}
        arrival = {}  # key -> bucket arrival counter
        clock = 0
        for op, key_id in ops:
            key = f"k{key_id}"
            clock += 1
            if op == "insert" and key not in freqs:
                lfu.on_insert(key, 1, 1)
                freqs[key] = 1
                arrival[key] = clock
            elif op == "touch" and key in freqs:
                lfu.on_hit(key)
                freqs[key] += 1
                arrival[key] = clock
            elif op == "evict" and freqs:
                expected = min(freqs, key=lambda k: (freqs[k], arrival[k]))
                assert lfu.pop_victim() == expected
                del freqs[expected]
                del arrival[expected]
            assert len(lfu) == len(freqs)
