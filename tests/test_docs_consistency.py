"""Documentation/code consistency guards.

Keeps DESIGN.md's experiment index, the registry, the benchmark modules
and the CLI honest with one another — documentation that drifts from the
code is worse than none.
"""

import pathlib
import re

import pytest

from repro.experiments import EXPERIMENTS
from repro.core import policy_names

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestExperimentIndex:
    def test_every_registry_entry_has_a_bench_or_shares_one(self):
        """Each experiment id is runnable and at least one benchmark module
        references its figure family."""
        bench_sources = "\n".join(
            path.read_text(encoding="utf-8")
            for path in (REPO / "benchmarks").glob("test_*.py"))
        for experiment_id in EXPERIMENTS:
            token = f'"{experiment_id}"'
            assert token in bench_sources or \
                experiment_id.startswith("fig") and \
                experiment_id[:4] in bench_sources, \
                f"no benchmark references experiment {experiment_id!r}"

    def test_design_md_mentions_every_figure(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        for figure in ("Table 1", "Fig 4", "Fig 5a", "Fig 5b", "Fig 5c",
                       "Fig 5d", "Fig 6a", "Fig 6c", "Fig 6d", "Fig 7",
                       "Fig 8a", "Fig 8b", "Fig 8c", "Fig 9a", "Fig 9b",
                       "Fig 9c"):
            assert figure in design, f"DESIGN.md lost {figure}"

    def test_design_md_module_references_exist(self):
        """Every `repro.x.y` dotted module named in DESIGN.md is importable."""
        import importlib
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        modules = set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", design))
        assert modules, "DESIGN.md no longer names any modules"
        for dotted in modules:
            # strip attribute-style tails like repro.cache.metrics.Occupancy
            parts = dotted.split(".")
            for depth in range(len(parts), 1, -1):
                candidate = ".".join(parts[:depth])
                try:
                    importlib.import_module(candidate)
                    break
                except ModuleNotFoundError:
                    continue
            else:
                pytest.fail(f"DESIGN.md references missing module {dotted}")

    def test_experiments_md_covers_every_registry_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for artifact in ("Table 1", "Fig 4", "Fig 5a", "Fig 5b", "Fig 5c",
                         "Fig 5d", "Fig 7", "Fig 8a", "Fig 8c", "Fig 9a"):
            assert artifact in text, f"EXPERIMENTS.md lost {artifact}"

    def test_readme_examples_exist(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for match in re.findall(r"examples/(\w+\.py)", readme):
            assert (REPO / "examples" / match).exists(), \
                f"README references missing example {match}"

    def test_readme_policy_claims_match_registry(self):
        names = set(policy_names())
        for expected in ("camp", "gds", "lru", "pooled-lru", "gd-wheel",
                         "arc", "2q", "lru-k", "slru", "random"):
            assert expected in names

    def test_all_example_scripts_have_main_and_docstring(self):
        for path in (REPO / "examples").glob("*.py"):
            source = path.read_text(encoding="utf-8")
            assert '"""' in source.split("\n", 2)[2][:400] or \
                source.lstrip().startswith(('#!/usr/bin/env python3', '"""')), \
                f"{path.name} lacks a docstring header"
            assert 'if __name__ == "__main__":' in source, \
                f"{path.name} is not runnable"
