"""The disk victim tier, broken on purpose.

Property tests for the one invariant a two-tier cache must never lose —
a key lives in DRAM or on disk, never both — plus failure injection on
the segment files (torn tails, garbage frames, a crash mid-demotion) in
the style of ``tests/test_failure_injection.py``: after every injected
fault, recovery serves only intact records and never a corrupt one.
"""

import os
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.outcomes import Outcome
from repro.cache.store import StoreConfig
from repro.tiering import (
    AlwaysDemote,
    CostDensityFilter,
    DiskTier,
    NeverDemote,
    TieredBackend,
)


def segment_files(directory) -> "list[pathlib.Path]":
    return sorted(pathlib.Path(directory).glob("segment-*.seg"))


def fill(tier: DiskTier, count: int, *, size: int = 200,
         payload: bool = True) -> "list[str]":
    keys = []
    for index in range(count):
        key = f"key-{index:04d}"
        value = f"value-{index:04d}".encode() if payload else None
        assert tier.put(key, value, size, cost=10.0)
        keys.append(key)
    return keys


class TestResidencyDisjointness:
    """A key must never be charged in L1 and L2 at the same time."""

    @settings(max_examples=25, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.integers(0, 15),      # key id
                  st.sampled_from("aid"),  # access/insert/delete
                  st.integers(20, 60)),    # size
        min_size=1, max_size=120))
    def test_disjoint_under_churn(self, tmp_path_factory, ops):
        directory = tmp_path_factory.mktemp("churn")
        store = (StoreConfig(400)
                 .tiered(str(directory), 4000, recover=False)
                 .build())
        backend = store.kvs
        keys = [f"k{index}" for index in range(16)]
        try:
            for key_id, action, size in ops:
                key = keys[key_id]
                if action == "a":
                    store.access(key, size, float(size))
                elif action == "i":
                    store.put(key, size, float(size),
                              value=key.encode())
                else:
                    store.delete(key)
                # the invariant under test: L1 and L2 never both hold it
                for probe in keys:
                    in_l1 = backend.kvs.peek(probe) is not None
                    in_l2 = backend.tier.contains(probe)
                    assert not (in_l1 and in_l2), (
                        f"{probe} resident in both tiers after "
                        f"{action}({key})")
            backend.check_consistency()
        finally:
            backend.close()

    def test_promotion_leaves_no_disk_copy(self, tmp_path):
        store = (StoreConfig(300)
                 .tiered(str(tmp_path), 10_000, recover=False)
                 .build())
        backend = store.kvs
        # overflow DRAM so early keys demote to disk
        for index in range(12):
            store.put(f"p{index}", 100, 50.0, value=b"x" * 10)
        demoted = [key for key in (f"p{index}" for index in range(12))
                   if backend.resident_level(key) == 2]
        assert demoted, "expected DRAM overflow to demote something"
        victim = demoted[0]
        outcome = store.access(victim, 100, 50.0).outcome
        assert outcome is Outcome.HIT_L2
        assert backend.resident_level(victim) == 1
        assert not backend.tier.contains(victim)
        backend.check_consistency()
        backend.close()


class TestTornSegmentTail:
    def test_torn_tail_truncated_and_rest_served(self, tmp_path):
        tier = DiskTier(str(tmp_path), 1 << 20, recover=False)
        keys = fill(tier, 20)
        tier.close()

        newest = segment_files(tmp_path)[-1]
        intact_size = newest.stat().st_size
        # tear the tail mid-frame: append half a record's worth of a
        # fresh put, as if the process died inside write()
        with newest.open("r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.write(b"\x99" * 11)

        recovered = DiskTier(str(tmp_path), 1 << 20, recover=True)
        assert recovered.torn_segments == 1
        assert recovered.recovered_records == len(keys)
        for key in keys:
            record = recovered.get(key)
            assert record is not None
            assert record.value == f"value-{key[-4:]}".encode()
        # the torn bytes are gone from disk, not just skipped
        assert newest.stat().st_size == intact_size
        recovered.check_invariants()
        recovered.close()

    def test_crash_mid_demotion_serves_everything_intact(self, tmp_path):
        """Kill the store mid-demotion (last record half-written): every
        record before the tear must survive and serve."""
        store = (StoreConfig(500)
                 .tiered(str(tmp_path), 1 << 20, recover=False)
                 .build())
        backend = store.kvs
        for index in range(30):
            store.put(f"c{index}", 100, 25.0, value=b"v" * 20)
        demoted = [key for key in backend.tier.keys()]
        assert demoted, "expected demotions before the crash"
        # no close(): the process dies, and the tear eats the tail record
        newest = segment_files(tmp_path)[-1]
        with newest.open("r+b") as handle:
            handle.truncate(max(newest.stat().st_size - 7, 12))

        recovered = DiskTier(str(tmp_path), 1 << 20, recover=True)
        assert recovered.recovered_records >= len(demoted) - 1
        served = sum(1 for key in demoted
                     if recovered.get(key) is not None)
        assert served >= len(demoted) - 1
        recovered.check_invariants()
        recovered.close()
        backend.close()


class TestRecoveryAccounting:
    def test_same_segment_supersede_keeps_live_bytes_in_sync(self, tmp_path):
        """Regression: a record superseded (or tombstoned) by a later
        frame in the *same* segment must be debited from that segment's
        live bytes during recovery, not just from the index."""
        tier = DiskTier(str(tmp_path), 1 << 20, recover=False)
        for _ in range(3):                       # supersede in place
            tier.put("hot", b"payload", 300, cost=5.0)
        tier.put("gone", b"bye", 200, cost=5.0)
        tier.delete("gone")                      # tombstone, same segment
        tier.close()

        recovered = DiskTier(str(tmp_path), 1 << 20, recover=True)
        assert recovered.get("hot") is not None
        assert recovered.get("gone") is None
        recovered.check_invariants()             # live-byte accounting
        recovered.close()


class TestGarbageFrames:
    def test_garbage_mid_segment_stops_scan_cleanly(self, tmp_path):
        tier = DiskTier(str(tmp_path), 1 << 20, recover=False)
        keys = fill(tier, 10)
        offsets = {key: tier.peek(key).offset for key in keys}
        tier.close()

        # flip bytes inside the 6th record's frame: CRC now fails there
        target = segment_files(tmp_path)[-1]
        with target.open("r+b") as handle:
            handle.seek(offsets[keys[5]] + 12)
            handle.write(b"\xff\x00\xff\x00")

        recovered = DiskTier(str(tmp_path), 1 << 20, recover=True)
        # records before the garbage frame survive; the scan cannot
        # trust anything after an unframed hole, so the rest are gone
        for key in keys[:5]:
            assert recovered.get(key) is not None
        for key in keys[5:]:
            assert recovered.get(key) is None
        recovered.check_invariants()
        recovered.close()

    def test_bad_magic_segment_is_quarantined(self, tmp_path):
        tier = DiskTier(str(tmp_path), 1 << 20, segment_bytes=1024,
                        recover=False)
        keys = fill(tier, 40)   # several sealed segments
        tier.close()
        files = segment_files(tmp_path)
        assert len(files) > 2
        with files[0].open("r+b") as handle:
            handle.write(b"NOTMAGIC")

        recovered = DiskTier(str(tmp_path), 1 << 20, segment_bytes=1024,
                             recover=True)
        served = [key for key in keys if recovered.get(key) is not None]
        # the poisoned segment's records are lost, the rest all serve
        assert served
        assert len(served) < len(keys)
        recovered.check_invariants()
        recovered.close()

    def test_corrupt_read_never_served_and_entry_dropped(self, tmp_path):
        """Corruption discovered at read time (after a clean recovery)
        must surface as a miss, never as garbage data."""
        tier = DiskTier(str(tmp_path), 1 << 20, recover=False)
        keys = fill(tier, 5)
        entry = tier.peek(keys[2])
        target = segment_files(tmp_path)[-1]
        with target.open("r+b") as handle:
            handle.seek(entry.offset + 10)
            handle.write(b"\xde\xad\xbe\xef")

        assert tier.get(keys[2]) is None
        assert tier.corrupt_reads == 1
        assert not tier.contains(keys[2])   # dropped, not retried
        for key in keys[:2] + keys[3:]:
            assert tier.get(key) is not None
        tier.check_invariants()
        tier.close()


class TestDemotionFilters:
    def test_cost_density_filter_thresholds(self):
        choosy = CostDensityFilter(min_cost_per_byte=0.5)
        assert choosy.should_demote("k", 100, 60.0)
        assert not choosy.should_demote("k", 100, 40.0)
        assert AlwaysDemote().should_demote("k", 1, 0.0)
        assert not NeverDemote().should_demote("k", 1, 1e9)

    def test_never_demote_writes_nothing(self, tmp_path):
        tier = DiskTier(str(tmp_path), 1 << 20, recover=False)
        backend = None
        try:
            from repro.cache.kvs import KVS
            from repro.core import CampPolicy
            backend = TieredBackend(KVS(300, CampPolicy()), tier,
                                    demotion_filter=NeverDemote())
            for index in range(12):
                backend.insert(f"n{index}", 100, 10.0, value=b"z")
            assert backend.demotions == 0
            assert backend.filtered_drops > 0
            assert len(tier) == 0
        finally:
            (backend or tier).close()


class TestTtlThroughTheTier:
    def test_demoted_ttl_expires_on_disk(self, tmp_path):
        clock = [1000.0]
        store = (StoreConfig(300).clock(lambda: clock[0])
                 .tiered(str(tmp_path), 1 << 20, recover=False)
                 .build())
        backend = store.kvs
        store.put("mortal", 100, 10.0, ttl=50.0, value=b"m")
        index = 0
        while backend.resident_level("mortal") == 1:   # push it to disk
            store.put(f"f{index}", 100, 10.0, value=b"x")
            index += 1
        assert backend.resident_level("mortal") == 2
        clock[0] += 100.0          # lapses while on disk
        assert store.access("mortal", 100, 10.0).outcome \
            is Outcome.MISS_INSERTED
        backend.close()

    def test_promoted_ttl_survives_with_remaining_life(self, tmp_path):
        clock = [1000.0]
        store = (StoreConfig(300).clock(lambda: clock[0])
                 .tiered(str(tmp_path), 1 << 20, recover=False)
                 .build())
        backend = store.kvs
        store.put("mortal", 100, 10.0, ttl=50.0, value=b"m")
        index = 0
        while backend.resident_level("mortal") == 1:
            store.put(f"f{index}", 100, 10.0, value=b"x")
            index += 1
        assert backend.resident_level("mortal") == 2
        clock[0] += 20.0
        assert store.access("mortal", 100, 10.0).outcome is Outcome.HIT_L2
        item = backend.kvs.peek("mortal")
        assert item is not None
        assert item.expire_at == pytest.approx(clock[0] + 30.0, abs=1.0)
        backend.close()
