"""Workload-generation tests: distributions, BG model, synthetics, phases."""

import collections

import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.workloads import (
    BgConfig,
    BgWorkload,
    HotspotDistribution,
    Trace,
    TraceRecord,
    UniformDistribution,
    ZipfDistribution,
    equal_size_variable_cost_trace,
    phase_boundaries,
    phased_trace,
    read_trace,
    solve_zipf_theta,
    three_cost_trace,
    uniform_trace,
    variable_size_constant_cost_trace,
    write_trace,
)


class TestZipf:
    def test_solver_produces_requested_skew(self):
        n = 2000
        theta = solve_zipf_theta(n, key_share=0.2, request_share=0.7)
        dist = ZipfDistribution(n, theta=theta, seed=1)
        draws = [dist.sample() for _ in range(40_000)]
        hot = sum(1 for d in draws if d < 0.2 * n)
        assert 0.65 < hot / len(draws) < 0.75

    def test_rank_zero_most_popular(self):
        dist = ZipfDistribution(100, theta=1.0, seed=2)
        counts = collections.Counter(dist.sample() for _ in range(20_000))
        assert counts[0] > counts[50]

    def test_uniform_when_theta_zero(self):
        dist = ZipfDistribution(10, theta=0.0, seed=3)
        counts = collections.Counter(dist.sample() for _ in range(20_000))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ZipfDistribution(0)
        with pytest.raises(ConfigurationError):
            ZipfDistribution(10, theta=-1)
        with pytest.raises(ConfigurationError):
            solve_zipf_theta(10, key_share=0.0)


class TestHotspot:
    def test_exact_hot_share(self):
        dist = HotspotDistribution(1000, key_share=0.2, request_share=0.7,
                                   seed=4)
        draws = [dist.sample() for _ in range(50_000)]
        hot = sum(1 for d in draws if d < dist.hot_count)
        assert 0.68 < hot / len(draws) < 0.72

    def test_all_ranks_in_range(self):
        dist = HotspotDistribution(50, seed=5)
        assert all(0 <= dist.sample() < 50 for _ in range(1000))


class TestUniformDistribution:
    def test_range(self):
        dist = UniformDistribution(10, seed=0)
        assert all(0 <= dist.sample() < 10 for _ in range(100))


class TestTraceRecordIO:
    def test_round_trip_line(self):
        record = TraceRecord("VP:1", 1024, 100)
        assert TraceRecord.from_line(record.to_line()) == record

    def test_float_cost(self):
        record = TraceRecord.from_line("k,10,2.5")
        assert record.cost == 2.5

    def test_bad_lines(self):
        for line in ["", "a,b", "a,xx,1", "a,10,yy", ",10,1", "a,0,1",
                     "a,10,-1"]:
            with pytest.raises(TraceFormatError):
                TraceRecord.from_line(line)

    def test_file_round_trip(self, tmp_path):
        trace = three_cost_trace(n_keys=20, n_requests=100, seed=1)
        path = tmp_path / "t.csv"
        assert write_trace(trace, path) == 100
        back = read_trace(path)
        assert list(back) == list(trace)

    def test_gzip_round_trip(self, tmp_path):
        trace = three_cost_trace(n_keys=20, n_requests=100, seed=1)
        path = tmp_path / "t.csv.gz"
        write_trace(trace, path)
        back = read_trace(path)
        assert list(back) == list(trace)

    def test_gzip_detected_by_magic_without_suffix(self, tmp_path):
        # a gzip trace that lost its .gz name (piped through tooling)
        # must still load: detection is by the \x1f\x8b magic bytes
        trace = three_cost_trace(n_keys=20, n_requests=100, seed=1)
        gz_path = tmp_path / "t.csv.gz"
        write_trace(trace, gz_path)
        bare = tmp_path / "exported-trace"
        bare.write_bytes(gz_path.read_bytes())
        back = read_trace(bare)
        assert list(back) == list(trace)

    def test_plain_text_named_gz_still_reads(self, tmp_path):
        # the converse mislabel: plain CSV wearing a .gz suffix
        trace = three_cost_trace(n_keys=10, n_requests=50, seed=2)
        plain = tmp_path / "t.csv"
        write_trace(trace, plain)
        mislabeled = tmp_path / "mislabeled.csv.gz"
        mislabeled.write_bytes(plain.read_bytes())
        assert list(read_trace(mislabeled)) == list(trace)


class TestTraceAggregates:
    def test_unique_bytes(self):
        trace = Trace([TraceRecord("a", 10, 1), TraceRecord("b", 20, 1),
                       TraceRecord("a", 10, 1)])
        assert trace.unique_keys == 2
        assert trace.unique_bytes == 30

    def test_capacity_for_ratio(self):
        trace = Trace([TraceRecord("a", 100, 1)])
        assert trace.capacity_for_ratio(0.5) == 50
        assert trace.capacity_for_ratio(0.0001) == 1   # floor of 1

    def test_cost_histogram(self):
        trace = Trace([TraceRecord("a", 1, 1), TraceRecord("b", 1, 100),
                       TraceRecord("a", 1, 1)])
        assert trace.cost_histogram() == {1: 2, 100: 1}

    def test_concat(self):
        t1 = Trace([TraceRecord("a", 1, 1)])
        t2 = Trace([TraceRecord("b", 1, 1)])
        assert len(t1.concat(t2)) == 2


class TestBgWorkload:
    def test_sizes_and_costs_stable_per_key(self):
        workload = BgWorkload(BgConfig(members=50, requests=2000, seed=9))
        trace = workload.generate()
        seen = {}
        for record in trace:
            if record.key in seen:
                assert seen[record.key] == (record.size, record.cost)
            else:
                seen[record.key] = (record.size, record.cost)

    def test_synthetic_costs_from_paper_set(self):
        workload = BgWorkload(BgConfig(members=50, requests=500, seed=9))
        trace = workload.generate()
        assert {record.cost for record in trace} <= {1, 100, 10_000}

    def test_synthetic_costs_roughly_equiprobable(self):
        workload = BgWorkload(BgConfig(members=3000, requests=30_000, seed=10))
        trace = workload.generate()
        key_costs = {}
        for record in trace:
            key_costs[record.key] = record.cost
        counts = collections.Counter(key_costs.values())
        total = sum(counts.values())
        for cost in (1, 100, 10_000):
            assert 0.28 < counts[cost] / total < 0.39

    def test_rdbms_cost_model(self):
        workload = BgWorkload(BgConfig(members=50, requests=500,
                                       cost_model="rdbms", seed=11))
        trace = workload.generate()
        assert all(record.cost > 0 for record in trace)
        assert any(isinstance(record.cost, float) for record in trace)

    def test_skew_roughly_70_20(self):
        workload = BgWorkload(BgConfig(members=2000, requests=40_000, seed=12))
        trace = workload.generate()
        counts = collections.Counter(record.key for record in trace)
        ordered = [count for _, count in counts.most_common()]
        top20 = sum(ordered[:max(1, len(ordered) // 5)])
        assert top20 / len(trace) > 0.55   # skew survives the key mapping

    def test_key_prefix(self):
        workload = BgWorkload(BgConfig(members=10, requests=50,
                                       key_prefix="tf3:", seed=13))
        trace = workload.generate()
        assert all(record.key.startswith("tf3:") for record in trace)

    def test_deterministic_with_seed(self):
        a = BgWorkload(BgConfig(members=20, requests=200, seed=5)).generate()
        b = BgWorkload(BgConfig(members=20, requests=200, seed=5)).generate()
        assert list(a) == list(b)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            BgConfig(members=0)
        with pytest.raises(ConfigurationError):
            BgConfig(cost_model="quantum")
        with pytest.raises(ConfigurationError):
            BgConfig(actions=())


class TestSynthetics:
    def test_three_cost_values(self):
        trace = three_cost_trace(n_keys=100, n_requests=1000, seed=2)
        assert {r.cost for r in trace} <= {1, 100, 10_000}

    def test_variable_size_constant_cost(self):
        trace = variable_size_constant_cost_trace(n_keys=200,
                                                  n_requests=2000, seed=3)
        assert {r.cost for r in trace} == {1}
        sizes = {r.size for r in trace}
        assert max(sizes) / min(sizes) > 10  # spans orders of magnitude

    def test_equal_size_variable_cost(self):
        trace = equal_size_variable_cost_trace(n_keys=200, n_requests=2000,
                                               seed=4)
        assert {r.size for r in trace} == {1024}
        costs = {r.cost for r in trace}
        assert len(costs) > 50   # "many more distinct cost values"

    def test_uniform(self):
        trace = uniform_trace(n_keys=10, n_requests=100, seed=5)
        assert len(trace) == 100

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            three_cost_trace(n_keys=0)
        with pytest.raises(ConfigurationError):
            variable_size_constant_cost_trace(size_range=(10, 5))
        with pytest.raises(ConfigurationError):
            equal_size_variable_cost_trace(cost_range=(0, 5))


class TestPhases:
    def test_disjoint_namespaces(self):
        trace = phased_trace(phases=3, requests_per_phase=100, n_keys=20,
                             seed=1)
        namespaces = {record.key.split(":")[0] for record in trace}
        assert namespaces == {"tf1", "tf2", "tf3"}

    def test_keys_never_recur_across_phases(self):
        trace = phased_trace(phases=3, requests_per_phase=100, n_keys=20,
                             seed=1)
        last_seen = {}
        for index, record in enumerate(trace):
            namespace = record.key.split(":")[0]
            last_seen.setdefault(namespace, []).append(index)
        # every namespace occupies one contiguous block
        for indices in last_seen.values():
            assert indices == list(range(indices[0], indices[-1] + 1))

    def test_phase_boundaries(self):
        trace = phased_trace(phases=4, requests_per_phase=50, n_keys=10,
                             seed=2)
        assert phase_boundaries(trace) == [0, 50, 100, 150]

    def test_custom_phase_factory(self):
        trace = phased_trace(
            phases=2, requests_per_phase=10,
            phase_factory=lambda i, prefix: uniform_trace(
                n_keys=5, n_requests=10, key_prefix=prefix, seed=i))
        assert len(trace) == 20

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            phased_trace(phases=0)
