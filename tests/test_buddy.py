"""Buddy allocator tests: split/coalesce correctness and arena tiling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.twemcache import BuddyAllocator


class TestBasics:
    def test_allocates_power_of_two_blocks(self):
        buddy = BuddyAllocator(1024, min_block=64)
        assert buddy.block_size_for(1) == 64
        assert buddy.block_size_for(64) == 64
        assert buddy.block_size_for(65) == 128
        assert buddy.block_size_for(1000) == 1024

    def test_allocate_free_round_trip(self):
        buddy = BuddyAllocator(1024, min_block=64)
        offset = buddy.allocate(100)
        assert buddy.allocated_bytes == 128
        buddy.free(offset)
        assert buddy.allocated_bytes == 0
        buddy.check_invariants()

    def test_distinct_offsets(self):
        buddy = BuddyAllocator(1024, min_block=64)
        offsets = [buddy.allocate(64) for _ in range(16)]
        assert len(set(offsets)) == 16
        buddy.check_invariants()

    def test_arena_floors_to_power_of_two(self):
        buddy = BuddyAllocator(1000, min_block=64)
        assert buddy.arena_bytes == 512

    def test_exhaustion_raises(self):
        buddy = BuddyAllocator(256, min_block=64)
        for _ in range(4):
            buddy.allocate(64)
        with pytest.raises(AllocationError):
            buddy.allocate(1)

    def test_oversized_raises(self):
        buddy = BuddyAllocator(256, min_block=64)
        with pytest.raises(AllocationError):
            buddy.allocate(512)

    def test_double_free_raises(self):
        buddy = BuddyAllocator(256, min_block=64)
        offset = buddy.allocate(64)
        buddy.free(offset)
        with pytest.raises(AllocationError):
            buddy.free(offset)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            BuddyAllocator(256, min_block=60)   # not a power of two
        with pytest.raises(ConfigurationError):
            BuddyAllocator(16, min_block=64)    # arena < min block


class TestCoalescing:
    def test_buddies_merge_on_free(self):
        buddy = BuddyAllocator(256, min_block=64)
        a = buddy.allocate(64)
        b = buddy.allocate(64)
        c = buddy.allocate(128)
        buddy.free(a)
        buddy.free(b)
        buddy.free(c)
        # everything merged back: one 256-byte allocation must now succeed
        offset = buddy.allocate(256)
        assert offset == 0
        buddy.check_invariants()

    def test_fragmented_arena_cannot_serve_big_block(self):
        buddy = BuddyAllocator(256, min_block=64)
        offsets = [buddy.allocate(64) for _ in range(4)]
        buddy.free(offsets[0])
        buddy.free(offsets[2])   # two free 64s, but not buddies
        with pytest.raises(AllocationError):
            buddy.allocate(128)
        buddy.check_invariants()

    def test_split_preserves_alignment(self):
        buddy = BuddyAllocator(1024, min_block=64)
        for size in (64, 128, 256, 64):
            buddy.allocate(size)
        for offset, (block, _) in buddy.allocations().items():
            assert offset % block == 0
        buddy.check_invariants()


class TestFragmentationMetric:
    def test_zero_when_idle(self):
        assert BuddyAllocator(256).fragmentation() == 0.0

    def test_counts_rounding_waste(self):
        buddy = BuddyAllocator(1024, min_block=64)
        buddy.allocate(65)   # occupies 128
        assert buddy.fragmentation() == pytest.approx(1 - 65 / 128)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["alloc", "free"]),
                          st.integers(1, 300)),
                min_size=1, max_size=120))
def test_buddy_invariants_under_churn(ops):
    buddy = BuddyAllocator(4096, min_block=64)
    live = []
    for op, size in ops:
        if op == "alloc":
            try:
                live.append(buddy.allocate(size))
            except AllocationError:
                pass
        elif live:
            buddy.free(live.pop(random.Random(size).randrange(len(live))))
    buddy.check_invariants()
    for offset in live:
        buddy.free(offset)
    assert buddy.allocated_bytes == 0
    assert buddy.free_bytes == buddy.arena_bytes
    buddy.check_invariants()
