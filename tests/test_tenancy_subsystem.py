"""Multi-tenant arbitration: ghost curves, arbiter convergence, bounds."""

import random

import pytest

from repro.cache import KVS
from repro.core import CampPolicy, LruPolicy
from repro.core.policy import CacheItem
from repro.errors import ConfigurationError, EvictionError
from repro.sim import simulate_tenants
from repro.tenancy import (
    Arbiter,
    GhostCache,
    TenantManager,
    TenantSpec,
)
from repro.workloads import (
    mixed_tenant_trace,
    prefix_trace,
    scan_trace,
    three_cost_trace,
)


def _item(key, size, cost=1):
    return CacheItem(key, size, cost)


class TestGhostCache:
    def test_miss_without_history_is_cold(self):
        ghost = GhostCache(1000)
        assert ghost.record_miss("a", 10, 5) is None
        assert ghost.ghost_hits == 0

    def test_eviction_then_miss_is_a_ghost_hit(self):
        ghost = GhostCache(1000)
        ghost.record_eviction(_item("a", 10, 5))
        hit = ghost.record_miss("a", 10, 5)
        assert hit is not None
        assert hit.depth == 10          # only itself was evicted since
        assert hit.cost == 5
        assert "a" not in ghost         # consumed by the hit

    def test_depth_counts_bytes_evicted_since(self):
        ghost = GhostCache(1000)
        ghost.record_eviction(_item("a", 10))
        ghost.record_eviction(_item("b", 20))
        ghost.record_eviction(_item("c", 30))
        hit = ghost.record_miss("a", 10, 1)
        assert hit.depth == 60          # a + everything evicted after it

    def test_byte_bound_evicts_oldest_metadata(self):
        ghost = GhostCache(100)
        for index in range(20):
            ghost.record_eviction(_item(f"k{index}", 10))
        assert ghost.used_bytes <= 100
        assert len(ghost) == 10
        assert "k0" not in ghost and "k19" in ghost

    def test_entry_bound_independent_of_bytes(self):
        ghost = GhostCache(10_000, max_entries=5)
        for index in range(8):
            ghost.record_eviction(_item(f"k{index}", 1))
        assert len(ghost) == 5

    def test_re_eviction_of_same_key_does_not_leak_bytes(self):
        ghost = GhostCache(1000)
        for _ in range(5):
            ghost.record_eviction(_item("a", 100))
        assert len(ghost) == 1
        assert ghost.used_bytes == 100

    def test_depth_is_constant_time_snapshot(self):
        """Depth counts all bytes evicted since the entry, even bytes of
        entries the bounded ghost has since dropped."""
        ghost = GhostCache(100, max_entries=3)
        ghost.record_eviction(_item("a", 10))
        for index in range(4):
            ghost.record_eviction(_item(f"b{index}", 20))
        # "a" itself was shrunk away; the deepest survivor is b1
        hit = ghost.record_miss("b1", 20, 1)
        assert hit is not None
        assert hit.depth == 60          # b1 + b2 + b3

    def test_oversized_item_clamped_to_capacity(self):
        ghost = GhostCache(100)
        ghost.record_eviction(_item("big", 500))
        assert ghost.used_bytes <= 100
        assert "big" in ghost

    def test_curve_is_cumulative_and_bounded(self):
        ghost = GhostCache(640, buckets=4)
        for index in range(4):
            ghost.record_eviction(_item(f"k{index}", 100))
        # k0 is deepest (depth 400), k3 shallowest (depth 100)
        ghost.record_miss("k3", 100, 7)
        ghost.record_miss("k0", 100, 9)
        curve = ghost.curve()
        assert len(curve) == 4
        extras = [point[0] for point in curve]
        assert extras == sorted(extras)
        gains = [point[1] for point in curve]
        assert gains == sorted(gains)           # cumulative, non-decreasing
        assert gains[-1] == pytest.approx(16)   # both costs eventually
        assert curve[0][1] == pytest.approx(7)  # shallow hit counts early

    def test_window_gain_interpolates_within_bucket(self):
        ghost = GhostCache(400, buckets=4)      # bucket = 100 bytes
        ghost.record_eviction(_item("a", 50))
        ghost.record_miss("a", 50, 10)          # depth 50 -> bucket 0
        assert ghost.window_gain(100) == pytest.approx(10)
        assert ghost.window_gain(50) == pytest.approx(5)   # half the bucket
        assert ghost.window_gain(0) == 0.0

    def test_reset_window_clears_gains_not_entries(self):
        ghost = GhostCache(1000)
        ghost.record_eviction(_item("a", 10))
        ghost.record_eviction(_item("b", 10))
        ghost.record_miss("a", 10, 3)
        ghost.reset_window()
        assert ghost.window_gain(1000) == 0.0
        assert "b" in ghost
        assert ghost.ghost_hits == 1            # lifetime counter survives

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            GhostCache(0)
        with pytest.raises(ConfigurationError):
            GhostCache(10, max_entries=0)
        with pytest.raises(ConfigurationError):
            GhostCache(10, buckets=0)


class TestKvsResize:
    def test_grow_is_free(self):
        kvs = KVS(100, LruPolicy())
        kvs.put("a", 50, 1)
        assert kvs.resize(200) == []
        assert kvs.capacity == 200
        assert "a" in kvs

    def test_shrink_evicts_down_to_budget(self):
        kvs = KVS(100, LruPolicy())
        for index in range(10):
            kvs.put(f"k{index}", 10, 1)
        evicted = kvs.resize(45)
        assert [item.key for item in evicted] == ["k0", "k1", "k2", "k3",
                                                  "k4", "k5"]
        assert kvs.used_bytes <= 45
        kvs.check_consistency()

    def test_shrink_notifies_listeners_like_demand_eviction(self):
        events = []

        class Recorder:
            def on_insert(self, item):
                pass

            def on_evict(self, item, explicit):
                events.append((item.key, explicit))

        kvs = KVS(100, LruPolicy())
        kvs.add_listener(Recorder())
        kvs.put("a", 60, 1)
        kvs.put("b", 40, 1)
        kvs.resize(50)
        assert ("a", False) in events

    def test_resize_under_load_invariants(self):
        """Random interleaving of requests and resizes keeps accounting,
        policy agreement and the capacity bound intact."""
        policy = CampPolicy(precision=5)
        kvs = KVS(2000, policy)
        rng = random.Random(11)
        for step in range(1500):
            key = f"k{rng.randrange(80)}"
            if not kvs.get(key):
                kvs.put(key, rng.randrange(1, 200),
                        rng.choice([1, 100, 10_000]))
            if step % 50 == 25:
                kvs.resize(rng.randrange(200, 3000))
            assert kvs.used_bytes <= kvs.capacity
        kvs.check_consistency()
        policy.check_invariants()

    def test_resize_rejects_bad_capacity(self):
        kvs = KVS(100, LruPolicy())
        with pytest.raises(ConfigurationError):
            kvs.resize(0)

    def test_shrink_with_desynced_policy_raises(self):
        kvs = KVS(100, LruPolicy())
        kvs.put("a", 80, 1)
        kvs.policy.on_remove("a")     # sabotage: policy forgets the key
        with pytest.raises(EvictionError):
            kvs.resize(10)


def two_tenant_manager(total=100_000, rebalance_every=500, **arbiter_kwargs):
    specs = [TenantSpec("hot", floor=0.1, ceiling=0.9),
             TenantSpec("cold", floor=0.1, ceiling=0.9)]
    arbiter = Arbiter(**arbiter_kwargs) if arbiter_kwargs else None
    return TenantManager(total, specs, rebalance_every=rebalance_every,
                         arbiter=arbiter)


class TestTenantManager:
    def test_routing_by_prefix(self):
        manager = two_tenant_manager()
        manager.put("hot:a", 100, 5)
        assert manager.get("hot:a")
        assert "hot:a" in manager.tenant("hot").kvs
        assert "hot:a" not in manager.tenant("cold").kvs

    def test_unknown_namespace_raises(self):
        manager = two_tenant_manager()
        with pytest.raises(ConfigurationError):
            manager.get("mystery:a")

    def test_initial_split_honours_shares(self):
        specs = [TenantSpec("big", share=0.75, floor=0.1),
                 TenantSpec("small", share=0.25, floor=0.1)]
        manager = TenantManager(100_000, specs, rebalance_every=None)
        assert manager.tenant("big").kvs.capacity == 75_000
        assert manager.tenant("small").kvs.capacity == 25_000

    def test_equal_split_by_default(self):
        manager = two_tenant_manager(total=100_000)
        assert manager.tenant("hot").kvs.capacity == 50_000
        assert manager.tenant("cold").kvs.capacity == 50_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TenantManager(0, [TenantSpec("a")])
        with pytest.raises(ConfigurationError):
            TenantManager(100, [])
        with pytest.raises(ConfigurationError):
            TenantManager(100, [TenantSpec("a"), TenantSpec("a")])
        with pytest.raises(ConfigurationError):
            TenantManager(100, [TenantSpec("a", floor=0.6),
                                TenantSpec("b", floor=0.6)])
        with pytest.raises(ConfigurationError):
            TenantManager(100, [TenantSpec("a:b")])
        with pytest.raises(ConfigurationError):
            TenantManager(100, [TenantSpec("a", share=0.7),
                                TenantSpec("b", share=0.7)])

    def test_partition_isolation(self):
        """Flooding one tenant never evicts another tenant's pairs."""
        manager = two_tenant_manager(total=10_000, rebalance_every=None)
        manager.put("hot:keep", 1000, 10)
        for index in range(100):
            manager.put(f"cold:junk{index}", 400, 1)
        assert manager.get("hot:keep")
        manager.check_consistency()

    def test_arbiter_moves_bytes_to_high_miss_cost_tenant(self):
        """Convergence: the tenant whose misses cost more ends up with
        more bytes, and floors/ceilings hold at every step."""
        manager = two_tenant_manager(total=60_000, rebalance_every=400)
        rng = random.Random(7)
        floor = manager.tenant("hot").floor_bytes
        ceiling = manager.tenant("hot").ceiling_bytes
        for _ in range(12_000):
            # identical working sets (300 keys x 400B, neither fits), so
            # the only asymmetry is what a miss costs: 10000 vs 1
            if rng.random() < 0.5:
                manager.access(f"hot:k{rng.randrange(300)}", 400, 10_000)
            else:
                manager.access(f"cold:k{rng.randrange(300)}", 400, 1)
            for tenant in manager.tenants():
                assert floor <= tenant.kvs.capacity <= ceiling
        hot = manager.tenant("hot").kvs.capacity
        cold = manager.tenant("cold").kvs.capacity
        assert hot > cold, (hot, cold)
        assert len(manager.transfers) > 0
        for transfer in manager.transfers:
            assert transfer.receiver == "hot"
        manager.check_consistency()

    def test_budget_conserved_across_transfers(self):
        manager = two_tenant_manager(total=50_000, rebalance_every=300)
        rng = random.Random(3)
        for _ in range(6000):
            tenant = "hot" if rng.random() < 0.6 else "cold"
            cost = 5000 if tenant == "hot" else 1
            manager.access(f"{tenant}:k{rng.randrange(200)}", 300, cost)
        total = sum(t.kvs.capacity for t in manager.tenants())
        assert total <= manager.total_bytes
        assert total >= manager.total_bytes - len(manager.tenants())
        manager.check_consistency()

    def test_static_mode_never_transfers(self):
        manager = two_tenant_manager(rebalance_every=None)
        rng = random.Random(5)
        for _ in range(2000):
            manager.access(f"hot:k{rng.randrange(50)}", 500, 1000)
        assert manager.transfers == []
        assert manager.tenant("hot").kvs.capacity == 50_000

    def test_ghost_bounded_by_spec(self):
        specs = [TenantSpec("a", ghost_fraction=0.1, ghost_entries=16),
                 TenantSpec("b")]
        manager = TenantManager(10_000, specs, rebalance_every=None)
        ghost = manager.tenant("a").ghost
        assert ghost.capacity_bytes == 1000
        assert ghost.max_entries == 16
        rng = random.Random(1)
        for index in range(400):
            manager.access(f"a:k{index}", rng.randrange(50, 400), 10)
        assert ghost.used_bytes <= 1000
        assert len(ghost) <= 16


class TestArbiter:
    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Arbiter(step_fraction=0.0)
        with pytest.raises(ConfigurationError):
            Arbiter(step_fraction=0.6)
        with pytest.raises(ConfigurationError):
            Arbiter(min_gain=-1)

    def test_single_tenant_never_rebalances(self):
        manager = TenantManager(10_000, [TenantSpec("only")],
                                rebalance_every=10)
        for index in range(100):
            manager.access(f"only:k{index % 5}", 100, 10)
        assert manager.transfers == []

    def test_no_transfer_when_gains_tie(self):
        manager = two_tenant_manager(rebalance_every=None)
        assert manager.rebalance() is None

    def test_min_gain_hysteresis_blocks_small_advantages(self):
        manager = two_tenant_manager(rebalance_every=None,
                                     min_gain=1e12)
        tenant = manager.tenant("hot")
        tenant.ghost.record_eviction(CacheItem("hot:x", 100, 50))
        tenant.ghost.record_miss("hot:x", 100, 50)
        assert manager.rebalance() is None

    def test_ceiling_blocks_further_growth(self):
        specs = [TenantSpec("greedy", floor=0.1, ceiling=0.5),
                 TenantSpec("other", floor=0.1, ceiling=1.0)]
        manager = TenantManager(10_000, specs, rebalance_every=None,
                                arbiter=Arbiter(step_fraction=0.2))
        greedy = manager.tenant("greedy")
        for _ in range(20):
            greedy.ghost.record_eviction(CacheItem("greedy:x", 100, 9999))
            greedy.ghost.record_miss("greedy:x", 100, 9999)
            manager.rebalance()
        assert greedy.kvs.capacity <= greedy.ceiling_bytes
        manager.check_consistency()


class TestSimulateTenants:
    def test_two_skewed_tenants_end_to_end(self):
        expensive = three_cost_trace(n_keys=100, n_requests=3000,
                                     costs=(10_000,),
                                     size_values=(512, 1024), seed=1)
        cheap = scan_trace(n_keys=1500, n_requests=3000, size=64,
                           cost=10, seed=2)
        mixed = mixed_tenant_trace({"exp": expensive, "chp": cheap}, seed=3)
        specs = [TenantSpec("exp", floor=0.1, ceiling=0.9),
                 TenantSpec("chp", floor=0.1, ceiling=0.9)]
        manager = TenantManager(int(mixed.unique_bytes * 0.4), specs,
                                rebalance_every=400)
        result = simulate_tenants(manager, mixed, sample_every=500)
        assert result.total_requests == 6000
        assert set(result.per_tenant) == {"exp", "chp"}
        assert result.allocations["exp"] > result.allocations["chp"]
        assert result.samples
        assert result.total_cost_missed == pytest.approx(
            sum(m.cost_missed for m in result.per_tenant.values()))
        manager.check_consistency()

    def test_unknown_tenant_metrics_raises(self):
        manager = two_tenant_manager()
        trace = prefix_trace(three_cost_trace(n_keys=5, n_requests=20,
                                              seed=1), "hot")
        result = simulate_tenants(manager, trace)
        with pytest.raises(ConfigurationError):
            result.metrics("nope")


class TestMixedTenantTrace:
    def test_keys_prefixed_and_counts_preserved(self):
        a = three_cost_trace(n_keys=10, n_requests=50, seed=1)
        b = scan_trace(n_keys=10, n_requests=30, seed=2)
        mixed = mixed_tenant_trace({"a": a, "b": b}, seed=3)
        assert len(mixed) == 80
        counts = {"a": 0, "b": 0}
        for record in mixed:
            tenant, _, _ = record.key.partition(":")
            counts[tenant] += 1
        assert counts == {"a": 50, "b": 30}

    def test_per_tenant_order_preserved(self):
        a = scan_trace(n_keys=100, n_requests=40, seed=1)
        mixed = mixed_tenant_trace(
            {"a": a, "b": scan_trace(n_keys=10, n_requests=40, seed=2)},
            seed=5)
        a_keys = [r.key.partition(":")[2] for r in mixed
                  if r.key.startswith("a:")]
        assert a_keys == [r.key for r in a]

    def test_scan_trace_shape(self):
        trace = scan_trace(n_keys=20, n_requests=60, size=8, cost=3, seed=0)
        assert len(trace) == 60
        assert trace.unique_keys == 20
        assert all(r.size == 8 and r.cost == 3 for r in trace)

    def test_scan_trace_hot_mixin(self):
        trace = scan_trace(n_keys=50, n_requests=500, hot_fraction=0.3,
                           hot_keys=5, seed=1)
        hot = sum(1 for r in trace if ":hot" in r.key or
                  r.key.startswith("hot"))
        assert 50 < hot < 250

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mixed_tenant_trace({})
        with pytest.raises(ConfigurationError):
            mixed_tenant_trace(
                {"a:b": scan_trace(n_keys=1, n_requests=1)})
        with pytest.raises(ConfigurationError):
            scan_trace(hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            prefix_trace(scan_trace(n_keys=1, n_requests=1), "")
