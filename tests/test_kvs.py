"""KVS store tests: byte accounting, eviction loop, admission, listeners."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import KVS
from repro.core import (
    CampPolicy,
    LruPolicy,
    PooledLruPolicy,
    SecondHitAdmission,
    make_policy,
    policy_names,
    pools_from_cost_values,
)
from repro.errors import ConfigurationError


class TestBasics:
    def test_get_miss_then_put_then_hit(self):
        kvs = KVS(100, LruPolicy())
        assert not kvs.get("a")
        assert kvs.put("a", 10, 1)
        assert kvs.get("a")
        assert kvs.used_bytes == 10
        assert len(kvs) == 1

    def test_eviction_frees_space(self):
        kvs = KVS(25, LruPolicy())
        kvs.put("a", 10, 1)
        kvs.put("b", 10, 1)
        kvs.put("c", 10, 1)   # evicts "a"
        assert "a" not in kvs
        assert "b" in kvs and "c" in kvs
        assert kvs.eviction_count == 1
        kvs.check_consistency()

    def test_multi_eviction_for_large_item(self):
        kvs = KVS(30, LruPolicy())
        for key in ["a", "b", "c"]:
            kvs.put(key, 10, 1)
        kvs.put("big", 25, 1)  # must evict several
        assert "big" in kvs
        assert kvs.used_bytes <= 30
        kvs.check_consistency()

    def test_item_larger_than_capacity_rejected(self):
        kvs = KVS(20, LruPolicy())
        assert not kvs.put("huge", 21, 1)
        assert kvs.rejected_too_large == 1
        assert len(kvs) == 0

    def test_overwrite_replaces(self):
        kvs = KVS(100, LruPolicy())
        kvs.put("a", 10, 1)
        kvs.put("a", 20, 2)
        assert kvs.used_bytes == 20
        assert len(kvs) == 1
        kvs.check_consistency()

    def test_delete(self):
        kvs = KVS(100, LruPolicy())
        kvs.put("a", 10, 1)
        assert kvs.delete("a")
        assert not kvs.delete("a")
        assert kvs.used_bytes == 0
        kvs.check_consistency()

    def test_item_overhead_charged(self):
        kvs = KVS(100, LruPolicy(), item_overhead=5)
        kvs.put("a", 10, 1)
        assert kvs.used_bytes == 15

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            KVS(0, LruPolicy())
        with pytest.raises(ConfigurationError):
            KVS(10, LruPolicy(), item_overhead=-1)


class TestPooledIntegration:
    def test_pool_eviction_with_global_space_free(self):
        """Pooled LRU evicts even when the store has free bytes overall."""
        pools = pools_from_cost_values([1, 100], [0.5, 0.5])
        kvs = KVS(100, PooledLruPolicy(100, pools))
        kvs.put("cheap1", 40, 1)
        kvs.put("cheap2", 30, 1)   # pool(cost=1) capacity 50 -> evict cheap1
        assert "cheap1" not in kvs
        assert kvs.free_bytes >= 50
        kvs.check_consistency()

    def test_item_larger_than_pool_rejected(self):
        pools = pools_from_cost_values([1, 100], [0.5, 0.5])
        kvs = KVS(100, PooledLruPolicy(100, pools))
        assert not kvs.put("fat-cheap", 60, 1)   # pool capacity is 50
        assert kvs.rejected_too_large == 1


class TestAdmission:
    def test_doorkeeper_blocks_first_insertion(self):
        kvs = KVS(100, LruPolicy(), admission=SecondHitAdmission(window=10))
        assert not kvs.put("a", 10, 1)
        assert kvs.rejected_admission == 1
        assert kvs.put("a", 10, 1)   # second attempt admitted
        assert "a" in kvs

    def test_hits_refresh_admission_history(self):
        admission = SecondHitAdmission(window=10)
        kvs = KVS(100, LruPolicy(), admission=admission)
        kvs.put("a", 10, 1)
        kvs.put("a", 10, 1)
        assert kvs.get("a")   # records access via on_access
        assert admission.seen("a")


class TestOverwriteRejection:
    """Regression: a rejected replacement must keep the resident copy.

    The old ``put`` deleted the existing key *before* the too-large and
    admission checks, so a rejected replacement silently dropped the old
    value.
    """

    def test_too_large_replacement_keeps_old_item(self):
        kvs = KVS(50, LruPolicy())
        assert kvs.put("a", 10, 7)
        assert not kvs.put("a", 60, 1)     # can never fit
        assert "a" in kvs
        assert kvs.used_bytes == 10
        item = kvs.peek("a")
        assert item.size == 10 and item.cost == 7
        assert kvs.rejected_too_large == 1
        kvs.check_consistency()

    def test_pool_rejected_replacement_keeps_old_item(self):
        pools = pools_from_cost_values([1, 100], [0.5, 0.5])
        kvs = KVS(100, PooledLruPolicy(100, pools))
        assert kvs.put("a", 30, 1)
        assert not kvs.put("a", 60, 1)     # larger than its pool
        assert "a" in kvs and kvs.used_bytes == 30
        kvs.check_consistency()

    def test_admission_rejected_replacement_keeps_old_item(self):
        class DenyAll:
            def admit(self, key, size, cost):
                return False

            def on_access(self, key):
                pass

        kvs = KVS(100, LruPolicy())
        assert kvs.put("a", 10, 1)
        kvs._admission = DenyAll()
        assert not kvs.put("a", 20, 2)
        assert "a" in kvs and kvs.used_bytes == 10
        assert kvs.rejected_admission == 1
        kvs.check_consistency()


class TestResize:
    def test_shrink_evicts_through_policy(self):
        kvs = KVS(100, LruPolicy())
        for key in ("a", "b", "c"):
            kvs.put(key, 30, 1)
        evicted = kvs.resize(40)
        assert [item.key for item in evicted] == ["a", "b"]
        assert kvs.capacity == 40 and kvs.used_bytes == 30
        kvs.check_consistency()

    def test_grow_raises_ceiling_without_evictions(self):
        kvs = KVS(30, LruPolicy())
        for key in ("a", "b", "c"):
            kvs.put(key, 10, 1)
        assert kvs.resize(100) == []
        assert kvs.capacity == 100
        assert kvs.eviction_count == 0
        assert len(kvs) == 3
        # the new headroom is immediately usable
        assert kvs.put("big", 60, 1)
        assert kvs.used_bytes == 90
        kvs.check_consistency()

    def test_grow_notifies_no_listeners(self):
        events = []

        class Recorder:
            def on_insert(self, item):
                events.append(("insert", item.key))

            def on_evict(self, item, explicit):
                events.append(("evict", item.key))

        kvs = KVS(30, LruPolicy())
        kvs.add_listener(Recorder())
        kvs.put("a", 10, 1)
        events.clear()
        kvs.resize(100)
        assert events == []


class TestListeners:
    def test_insert_and_evict_events(self):
        events = []

        class Recorder:
            def on_insert(self, item):
                events.append(("insert", item.key))

            def on_evict(self, item, explicit):
                events.append(("evict", item.key, explicit))

        kvs = KVS(20, LruPolicy())
        kvs.add_listener(Recorder())
        kvs.put("a", 10, 1)
        kvs.put("b", 10, 1)
        kvs.put("c", 10, 1)    # evicts a
        kvs.delete("b")
        assert ("insert", "a") in events
        assert ("evict", "a", False) in events
        assert ("evict", "b", True) in events

    def test_listeners_notified_in_registration_order(self):
        calls = []

        class Ordered:
            def __init__(self, tag):
                self._tag = tag

            def on_insert(self, item):
                calls.append((self._tag, "insert", item.key))

            def on_evict(self, item, explicit):
                calls.append((self._tag, "evict", item.key))

        kvs = KVS(20, LruPolicy())
        kvs.add_listener(Ordered("first"))
        kvs.add_listener(Ordered("second"))
        kvs.put("a", 10, 1)
        kvs.put("b", 15, 1)    # evicts "a"
        assert calls == [
            ("first", "insert", "a"), ("second", "insert", "a"),
            ("first", "evict", "a"), ("second", "evict", "a"),
            ("first", "insert", "b"), ("second", "insert", "b"),
        ]

    def test_resize_eviction_order_notifies_listeners_per_victim(self):
        order = []

        class Recorder:
            def on_insert(self, item):
                pass

            def on_evict(self, item, explicit):
                order.append((item.key, explicit))

        kvs = KVS(100, LruPolicy())
        kvs.add_listener(Recorder())
        for key in ("a", "b", "c"):
            kvs.put(key, 30, 1)
        kvs.resize(35)
        assert order == [("a", False), ("b", False)]


class TestEveryPolicyThroughKvs:
    @pytest.mark.parametrize("name", list(policy_names()))
    def test_random_workload_consistency(self, name):
        """Every registered policy must survive a churny workload inside the
        store with byte accounting intact."""
        capacity = 2000
        policy = make_policy(name, capacity)
        kvs = KVS(capacity, policy)
        rng = random.Random(hash(name) & 0xFFFF)
        for step in range(800):
            key = f"k{rng.randrange(60)}"
            if not kvs.get(key):
                kvs.put(key, rng.randrange(1, 300),
                        rng.choice([1, 100, 10_000]))
            if step % 97 == 0:
                kvs.delete(key)
            if step % 100 == 0:
                kvs.check_consistency()
        kvs.check_consistency()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 25), st.integers(1, 40),
                          st.sampled_from([1, 100, 10_000])),
                min_size=1, max_size=200),
       st.integers(50, 400))
def test_camp_kvs_property(requests, capacity):
    """CAMP inside the KVS: accounting and CAMP invariants always hold."""
    policy = CampPolicy()
    kvs = KVS(capacity, policy)
    for key_id, size, cost in requests:
        key = f"k{key_id}"
        if not kvs.get(key):
            kvs.put(key, size, cost)
        assert kvs.used_bytes <= capacity
    kvs.check_consistency()
    policy.check_invariants()
