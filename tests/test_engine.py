"""Twemcache engine tests: the four-step allocation path, expiry, CAMP mode."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.twemcache import ITEM_HEADER_SIZE, TwemcacheEngine, VirtualClock


def small_engine(eviction="lru", memory=1 << 20, slab_size=1 << 18, **kw):
    return TwemcacheEngine(memory, eviction=eviction, slab_size=slab_size,
                           **kw)


def whole_slab_value_len(engine, key):
    """Value length putting key+value+header exactly in the largest class."""
    largest = engine.allocator.classes[-1].chunk_size
    return largest - ITEM_HEADER_SIZE - len(key)


class TestGetSetDelete:
    def test_round_trip(self):
        engine = small_engine()
        assert engine.set("k", b"value", flags=3, cost=10)
        item = engine.get("k")
        assert item.value == b"value"
        assert item.flags == 3
        assert item.cost == 10
        engine.check_consistency()

    def test_miss_returns_none(self):
        engine = small_engine()
        assert engine.get("ghost") is None
        assert engine.misses == 1

    def test_overwrite_frees_old_chunk(self):
        engine = small_engine()
        engine.set("k", b"a" * 50)
        engine.set("k", b"b" * 5000)   # different slab class
        assert engine.get("k").value == b"b" * 5000
        assert len(engine) == 1
        engine.check_consistency()

    def test_delete(self):
        engine = small_engine()
        engine.set("k", b"v")
        assert engine.delete("k")
        assert not engine.delete("k")
        assert engine.get("k") is None
        engine.check_consistency()

    def test_value_too_large_rejected(self):
        engine = small_engine(slab_size=1 << 12)
        assert not engine.set("k", b"x" * (1 << 13))

    def test_too_large_replacement_keeps_old_value(self):
        """A rejected overwrite must not report STORED nor drop the old
        copy."""
        engine = small_engine(slab_size=1 << 12)
        assert engine.set("k", b"v" * 10)
        assert not engine.set("k", b"x" * (1 << 13))   # no class fits
        assert engine.get("k").value == b"v" * 10
        engine.check_consistency()

    def test_calcified_replacement_keeps_old_value(self):
        """A replacement whose class cannot get a chunk leaves the
        resident copy untouched (previously it was silently dropped)."""
        engine = TwemcacheEngine(1 << 12, eviction="lru",
                                 slab_size=1 << 12,
                                 random_slab_eviction=False)
        small = 60 - ITEM_HEADER_SIZE
        assert engine.set("small0", b"s" * small)   # claims the only slab
        big = whole_slab_value_len(engine, "small0")
        # the big class owns no slabs and cannot get one: rejected,
        # and the small old copy must survive the failed overwrite
        assert not engine.set("small0", b"B" * big)
        assert engine.get("small0").value == b"s" * small
        engine.check_consistency()

    def test_touch_cost(self):
        engine = small_engine()
        engine.set("k", b"v", cost=1)
        assert engine.touch_cost("k", 999)
        assert engine.get("k").cost == 999
        assert not engine.touch_cost("ghost", 1)

    def test_invalid_eviction_kind(self):
        with pytest.raises(ConfigurationError):
            TwemcacheEngine(1 << 20, eviction="random")


class TestExpiry:
    def test_expired_item_misses(self):
        clock = VirtualClock()
        engine = small_engine(clock=clock)
        engine.set("k", b"v", expire_after=10)
        assert engine.get("k") is not None
        clock.advance(11)
        assert engine.get("k") is None
        engine.check_consistency()

    def test_expired_reclaim_on_set(self):
        """Step 1: an expired pair of the class is replaced first."""
        clock = VirtualClock()
        # exactly one chunk available per class-1 slab budget
        engine = TwemcacheEngine(1 << 12, eviction="lru",
                                 slab_size=1 << 12, clock=clock)
        big = whole_slab_value_len(engine, "old")
        engine.set("old", b"x" * big, expire_after=5)
        clock.advance(10)
        assert engine.set("new", b"y" * big)
        assert engine.expired_reclaims >= 1 or engine.evictions >= 1
        assert "new" in engine
        assert "old" not in engine
        engine.check_consistency()

    def test_zero_exptime_never_expires(self):
        clock = VirtualClock()
        engine = small_engine(clock=clock)
        engine.set("k", b"v", expire_after=0)
        clock.advance(10 ** 9)
        assert engine.get("k") is not None


class TestEvictionPath:
    def test_lru_eviction_within_class(self):
        engine = TwemcacheEngine(1 << 12, eviction="lru", slab_size=1 << 12,
                                 random_slab_eviction=False)
        big = whole_slab_value_len(engine, "second")
        engine.set("first", b"x" * big)
        engine.set("second", b"y" * big)   # must evict "first"
        assert "first" not in engine
        assert "second" in engine
        assert engine.evictions == 1
        engine.check_consistency()

    def test_camp_eviction_prefers_cheap(self):
        engine = TwemcacheEngine(1 << 14, eviction="camp",
                                 slab_size=1 << 12,
                                 random_slab_eviction=False)
        # 4 slabs of one whole-slab class; fill with known costs
        big = whole_slab_value_len(engine, "newbie")
        engine.set("cheap", b"a" * big, cost=1)
        engine.set("dear1", b"b" * big, cost=10_000)
        engine.set("dear2", b"c" * big, cost=10_000)
        engine.set("dear3", b"d" * big, cost=10_000)
        engine.set("newbie", b"e" * big, cost=100)   # evicts ...
        assert "cheap" not in engine
        assert all(k in engine for k in ("dear1", "dear2", "dear3", "newbie"))
        engine.check_consistency()

    def test_random_slab_eviction_cures_calcification(self):
        """The paper's calcification scenario: all slabs assigned to class 1,
        then the workload shifts to a larger class."""
        engine = TwemcacheEngine(2 << 12, eviction="lru", slab_size=1 << 12,
                                 seed=3)
        # consume both slabs with small items
        small = 60 - ITEM_HEADER_SIZE
        i = 0
        while engine.allocator.allocated_slabs < 2:
            engine.set(f"small{i}", b"s" * small)
            i += 1
        # now a big item arrives: class has no slabs -> steal one
        big = whole_slab_value_len(engine, "big")
        assert engine.set("big", b"B" * big)
        assert engine.slab_reassignments == 1
        assert "big" in engine
        engine.check_consistency()

    def test_calcification_fails_without_random_eviction(self):
        engine = TwemcacheEngine(2 << 12, eviction="lru", slab_size=1 << 12,
                                 random_slab_eviction=False)
        small = 60 - ITEM_HEADER_SIZE
        i = 0
        while engine.allocator.allocated_slabs < 2:
            engine.set(f"small{i}", b"s" * small)
            i += 1
        big = whole_slab_value_len(engine, "big")
        assert not engine.set("big", b"B" * big)   # stuck: calcified
        engine.check_consistency()


class TestStoreFacadeRouting:
    def test_engine_requests_route_through_a_store(self):
        from repro.cache import Store
        engine = small_engine()
        assert isinstance(engine.store, Store)
        engine.set("k", b"v", cost=5)
        assert engine.store.get("k").hit
        assert engine.store.get("k").value.value == b"v"

    def test_get_or_compute_loads_once_and_serves_hits(self):
        engine = small_engine(eviction="camp")
        calls = []

        def loader(key):
            calls.append(key)
            return b"rendered"

        item = engine.get_or_compute("page:1", loader, cost=50)
        assert item.value == b"rendered" and item.cost == 50
        again = engine.get_or_compute("page:1", loader)
        assert again.value == b"rendered"
        assert calls == ["page:1"]
        assert engine.hits == 1 and engine.misses == 1
        engine.check_consistency()

    def test_get_or_compute_respects_ttl(self):
        clock = VirtualClock()
        engine = small_engine(clock=clock)
        engine.get_or_compute("k", lambda key: b"v1", expire_after=5)
        clock.advance(6)
        item = engine.get_or_compute("k", lambda key: b"v2")
        assert item.value == b"v2"
        engine.check_consistency()

    def test_get_or_compute_measures_cost(self):
        engine = small_engine()
        item = engine.get_or_compute("k", lambda key: b"v")
        assert item.cost > 0
        engine.check_consistency()

    def test_store_put_on_engine_requires_a_value(self):
        """The slab backend holds real payloads: a put without a value
        (and value-less put_many rows) must be refused, not stored
        empty."""
        engine = small_engine()
        with pytest.raises(ConfigurationError):
            engine.store.put("k", 100, 1)
        with pytest.raises(ConfigurationError):
            engine.store.put_many([("k", 100, 1)])
        assert "k" not in engine


class TestChurnConsistency:
    @pytest.mark.parametrize("eviction", ["lru", "camp"])
    def test_random_workload(self, eviction):
        engine = TwemcacheEngine(1 << 20, eviction=eviction,
                                 slab_size=1 << 16, seed=11)
        rng = random.Random(5)
        for step in range(1500):
            key = f"k{rng.randrange(200)}"
            if engine.get(key) is None:
                size = rng.choice([30, 200, 1500, 8000])
                engine.set(key, b"v" * size,
                           cost=rng.choice([1, 100, 10_000]))
            if step % 37 == 0:
                engine.delete(key)
            if step % 250 == 0:
                engine.check_consistency()
        engine.check_consistency()
        stats = engine.stats()
        assert stats["items"] == len(engine)
        assert stats["hits"] + stats["misses"] >= 1500
