"""Sync/async server parity over the shared sans-IO protocol core.

Both servers are thin transports over one
:class:`~repro.twemcache.protocol.ServerSession`, so for any command
script they must produce byte-identical response streams *and* identical
engine state evolution (same eviction decisions, same counters).  The
property tests here generate command scripts with hypothesis and drive
them through:

* two in-process sessions under different chunk splits (the sans-IO
  machine must not care where ``recv`` boundaries fall), and
* the real :class:`TwemcacheServer` (threaded) and
  :class:`AsyncTwemcacheServer` (asyncio) over TCP.
"""

import socket

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.twemcache import (
    AsyncTwemcacheServer,
    ServerSession,
    TwemcacheEngine,
    TwemcacheServer,
)
from repro.twemcache.protocol import CRLF

KEYS = [f"k{i}" for i in range(40)]

#: engine small enough that generated scripts cause real evictions
ENGINE_KW = dict(memory_bytes=1 << 16, eviction="camp", slab_size=1 << 13,
                 seed=7)


def fresh_engine() -> TwemcacheEngine:
    return TwemcacheEngine(**ENGINE_KW)


# ----------------------------------------------------------------------
# script generation
# ----------------------------------------------------------------------
def _render(op) -> bytes:
    kind = op[0]
    if kind in ("set", "add", "replace"):
        _, key, value, flags, cost = op
        header = f"{kind} {key} {flags} 0 {len(value)} {cost}"
        return header.encode() + CRLF + value + CRLF
    if kind == "get":
        return ("get " + " ".join(op[1])).encode() + CRLF
    if kind == "delete":
        return f"delete {op[1]}".encode() + CRLF
    if kind in ("incr", "decr"):
        return f"{op[0]} {op[1]} {op[2]}".encode() + CRLF
    if kind == "touch":
        return f"touch {op[1]} 0".encode() + CRLF
    if kind == "flush_all":
        return b"flush_all" + CRLF
    if kind == "stats":
        return b"stats" + CRLF
    if kind == "bad":
        return op[1]
    raise AssertionError(kind)


keys = st.sampled_from(KEYS)
values = st.binary(min_size=0, max_size=200)

operations = st.one_of(
    st.tuples(st.sampled_from(["set", "add", "replace"]), keys, values,
              st.integers(0, 7), st.integers(0, 50)),
    st.tuples(st.just("get"), st.lists(keys, min_size=1, max_size=3)),
    st.tuples(st.just("delete"), keys),
    st.tuples(st.sampled_from(["incr", "decr"]), keys, st.integers(0, 9)),
    st.tuples(st.just("touch"), keys),
    st.tuples(st.just("bad"),
              st.sampled_from([b"bogus x" + CRLF, b"delete" + CRLF,
                               b"get" + CRLF, b"stats now" + CRLF])),
)

scripts = st.lists(operations, min_size=1, max_size=40).map(
    lambda ops: b"".join(_render(op) for op in ops))


# ----------------------------------------------------------------------
# sans-IO chunking invariance
# ----------------------------------------------------------------------
@given(script=scripts, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_session_output_is_chunking_invariant(script, seed):
    """Arbitrary recv boundaries — mid-line, mid-payload — must not
    change a single response byte or any engine decision."""
    import random
    rng = random.Random(seed)

    def run(chunks):
        engine = fresh_engine()
        session = ServerSession(engine)
        out = bytearray()
        for chunk in chunks:
            data, close = session.receive(chunk)
            out += data
            assert not close     # scripts contain no framing errors
        return bytes(out), engine

    whole, engine_a = run([script])
    pieces = []
    position = 0
    while position < len(script):
        step = rng.randint(1, 13)
        pieces.append(script[position:position + step])
        position += step
    split, engine_b = run(pieces)

    assert whole == split
    assert engine_a.stats() == engine_b.stats()
    assert sorted(engine_a._items) == sorted(engine_b._items)


# ----------------------------------------------------------------------
# threaded vs asyncio over real sockets
# ----------------------------------------------------------------------
def _drive(server, script: bytes) -> bytes:
    """Send the whole pipelined script plus quit; read the response
    stream to EOF."""
    with socket.create_connection(server.address, timeout=10) as sock:
        sock.sendall(script + b"quit" + CRLF)
        received = bytearray()
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return bytes(received)
            received += chunk


def _run_script_through(server_cls, script: bytes):
    engine = fresh_engine()
    with server_cls(engine) as server:
        response = _drive(server, script)
    return response, engine.stats(), sorted(engine._items)


@given(script=scripts)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_threaded_and_async_servers_are_byte_identical(script):
    threaded = _run_script_through(TwemcacheServer, script)
    asynced = _run_script_through(AsyncTwemcacheServer, script)
    assert threaded[0] == asynced[0]          # byte-identical responses
    assert threaded[1] == asynced[1]          # identical counters/evictions
    assert threaded[2] == asynced[2]          # identical residency


def test_parity_includes_stats_and_admin_verbs():
    """A directed script touching every verb family, including stats
    (deterministic counters) after identical histories."""
    script = b"".join([
        b"set a 1 0 3 5" + CRLF + b"abc" + CRLF,
        b"set b 0 0 2 9" + CRLF + b"xy" + CRLF,
        b"get a b" + CRLF,
        b"incr c 1" + CRLF,
        b"set c 0 0 1 1" + CRLF + b"7" + CRLF,
        b"incr c 3" + CRLF,
        b"decr c 100" + CRLF,
        b"touch a 0" + CRLF,
        b"delete b" + CRLF,
        b"get a b c" + CRLF,
        b"version" + CRLF,
        b"stats" + CRLF,
        b"flush_all" + CRLF,
        b"stats" + CRLF,
    ])
    threaded = _run_script_through(TwemcacheServer, script)
    asynced = _run_script_through(AsyncTwemcacheServer, script)
    assert threaded == asynced
    assert b"VERSION repro-camp/1.0" in threaded[0]
    assert b"STAT items" in threaded[0]
