"""Consistent-hash ring and cooperative-cluster tests."""

import random

import pytest

from repro.cluster import CooperativeCluster, HashRing
from repro.errors import ClusterError, ConfigurationError


class TestHashRing:
    def test_primary_is_stable(self):
        ring = HashRing()
        for name in ("a", "b", "c"):
            ring.add_node(name)
        assert ring.primary("key1") == ring.primary("key1")

    def test_preference_list_distinct(self):
        ring = HashRing()
        for name in ("a", "b", "c", "d"):
            ring.add_node(name)
        holders = ring.preference_list("k", 3)
        assert len(holders) == len(set(holders)) == 3

    def test_preference_list_capped_at_node_count(self):
        ring = HashRing()
        ring.add_node("only")
        assert ring.preference_list("k", 5) == ["only"]

    def test_balanced_distribution(self):
        ring = HashRing(vnodes=128)
        for name in ("a", "b", "c", "d"):
            ring.add_node(name)
        counts = {name: 0 for name in ring.nodes}
        for i in range(8000):
            counts[ring.primary(f"key{i}")] += 1
        for count in counts.values():
            assert 0.15 < count / 8000 < 0.40   # roughly 25% each

    def test_removal_moves_only_owned_keys(self):
        ring = HashRing(vnodes=64)
        for name in ("a", "b", "c"):
            ring.add_node(name)
        before = {f"k{i}": ring.primary(f"k{i}") for i in range(500)}
        ring.remove_node("b")
        for key, owner in before.items():
            if owner != "b":
                assert ring.primary(key) == owner

    def test_errors(self):
        ring = HashRing()
        with pytest.raises(ClusterError):
            ring.primary("k")
        ring.add_node("a")
        with pytest.raises(ClusterError):
            ring.add_node("a")
        with pytest.raises(ClusterError):
            ring.remove_node("b")
        with pytest.raises(ConfigurationError):
            ring.preference_list("k", 0)
        with pytest.raises(ConfigurationError):
            HashRing(vnodes=0)


class TestCooperativeCluster:
    def build(self, replicas=2, capacity=5_000):
        return CooperativeCluster(["n1", "n2", "n3"],
                                  capacity_per_node=capacity,
                                  replicas=replicas)

    def test_miss_then_local_hit(self):
        cluster = self.build()
        assert cluster.get("k", 100, 10) == "miss"
        assert cluster.get("k", 100, 10) == "local"
        assert cluster.stats()["misses"] == 1
        assert cluster.stats()["local_hits"] == 1

    def test_replication_count(self):
        cluster = self.build(replicas=2)
        cluster.get("k", 100, 10)
        assert len(cluster.resident_nodes("k")) == 2

    def test_remote_hit_rereplicates(self):
        cluster = self.build(replicas=2)
        cluster.get("k", 100, 10)
        holders = cluster.ring.preference_list("k", 2)
        primary = cluster.node(holders[0])
        primary.kvs.delete("k")   # simulate primary losing its copy
        assert cluster.get("k", 100, 10) == "remote"
        assert "k" in primary

    def test_last_replica_gets_reprieve(self):
        cluster = CooperativeCluster(["n1"], capacity_per_node=1_000,
                                     replicas=1)
        node = cluster.node("n1")
        # fill with cheap items, then push a stream through: every victim is
        # a last replica, so the policy grants one reprieve each
        for i in range(30):
            cluster.get(f"k{i}", 100, 1)
        assert cluster.stats()["reprieves"] > 0
        assert len(node.kvs) <= 10

    def test_spared_pair_eventually_evicted(self):
        """The paper's challenge: a never-again-accessed last replica must
        not occupy memory forever."""
        cluster = CooperativeCluster(["n1"], capacity_per_node=1_000,
                                     replicas=1)
        cluster.get("dead", 100, 500)   # expensive, never touched again
        # L climbs ~1 per (resident count) evictions, so give the stream
        # comfortably more than 500 * 10 filler misses
        for i in range(8000):
            cluster.get(f"filler{i}", 100, 1)
        assert cluster.resident_nodes("dead") == []

    def test_workload_distribution(self):
        cluster = self.build(capacity=50_000)
        rng = random.Random(0)
        for _ in range(3000):
            key = f"k{rng.randrange(300)}"
            cluster.get(key, rng.randrange(50, 200),
                        rng.choice([1, 100, 10_000]))
        stats = cluster.stats()
        assert stats["local_hits"] > 0
        assert stats["resident_items"] > 0
        sizes = [len(node.kvs) for node in cluster.nodes()]
        assert all(size > 0 for size in sizes)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            CooperativeCluster([], 1000)
        with pytest.raises(ConfigurationError):
            CooperativeCluster(["a", "a"], 1000)
        with pytest.raises(ConfigurationError):
            CooperativeCluster(["a"], 1000, replicas=0)
        with pytest.raises(ClusterError):
            self.build().node("ghost")
