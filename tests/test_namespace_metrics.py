"""Per-namespace metrics (the intro's two-application breakdown)."""

import pytest

from repro.cache import KVS, PerNamespaceMetrics
from repro.core import CampPolicy, LruPolicy
from repro.errors import ConfigurationError
from repro.workloads import Trace, TraceRecord


class TestPerNamespaceMetrics:
    def test_split_by_prefix(self):
        metrics = PerNamespaceMetrics()
        metrics.record("ads:1", 10, 100, hit=False)   # cold
        metrics.record("ads:1", 10, 100, hit=False)   # counted miss
        metrics.record("vp:2", 5, 1, hit=False)       # cold
        metrics.record("vp:2", 5, 1, hit=True)        # counted hit
        assert metrics.namespaces() == ["ads", "vp"]
        assert metrics.metrics("ads").miss_rate == 1.0
        assert metrics.metrics("vp").miss_rate == 0.0

    def test_unknown_namespace_raises(self):
        with pytest.raises(ConfigurationError):
            PerNamespaceMetrics().metrics("ghost")

    def test_summary_rows_shape(self):
        metrics = PerNamespaceMetrics()
        metrics.record("a:1", 1, 5, hit=False)
        metrics.record("a:1", 1, 5, hit=False)
        rows = metrics.summary_rows()
        assert rows == [("a", 2, 1.0, 1.0, 5.0)]

    def test_extended_summary_rows_add_rate_and_bytes(self):
        metrics = PerNamespaceMetrics()
        metrics.record("a:1", 1, 5, hit=False)   # cold
        metrics.record("a:1", 1, 5, hit=False)   # counted miss, cost 5
        metrics.record("a:1", 1, 5, hit=True)    # counted hit
        rows = metrics.summary_rows(extended=True)
        assert len(rows[0]) == 7
        namespace, requests, _, _, _, cost_miss_rate, resident = rows[0]
        assert (namespace, requests) == ("a", 3)
        assert cost_miss_rate == pytest.approx(2.5)   # 5 over 2 counted
        assert resident == 0                          # not subscribed

    def test_resident_bytes_tracked_as_listener(self):
        kvs = KVS(100, LruPolicy())
        metrics = PerNamespaceMetrics()
        kvs.add_listener(metrics)
        kvs.put("a:1", 40, 1)
        kvs.put("b:1", 30, 1)
        assert metrics.resident_bytes("a") == 40
        assert metrics.resident_bytes("b") == 30
        kvs.put("b:2", 50, 1)     # evicts a:1 (LRU), b:1 survives
        assert metrics.resident_bytes("a") == 0
        assert metrics.resident_bytes("b") == 80
        rows = metrics.summary_rows(extended=True)
        assert rows == []          # residency tracking records no requests

    def test_cost_miss_rate_zero_without_counted_requests(self):
        metrics = PerNamespaceMetrics()
        metrics.record("a:1", 1, 5, hit=False)   # cold only
        assert metrics.metrics("a").cost_miss_rate == 0.0

    def test_cold_exclusion_is_per_key_not_per_namespace(self):
        metrics = PerNamespaceMetrics()
        metrics.record("a:1", 1, 5, hit=False)   # cold
        metrics.record("a:2", 1, 5, hit=False)   # also cold (distinct key)
        assert metrics.metrics("a").cold_requests == 2
        assert metrics.metrics("a").misses == 0

    def test_two_application_scenario(self):
        """CAMP shields the expensive application: its per-namespace
        cost-miss ratio is far lower than under LRU."""
        records = []
        import random
        rng = random.Random(4)
        for _ in range(20_000):
            if rng.random() < 0.9:
                records.append(
                    TraceRecord(f"profile:{rng.randrange(500)}", 100, 1))
            else:
                records.append(
                    TraceRecord(f"ads:{rng.randrange(50)}", 100, 10_000))
        trace = Trace(records)
        outcomes = {}
        for name, policy in (("camp", CampPolicy(5)), ("lru", LruPolicy())):
            kvs = KVS(trace.capacity_for_ratio(0.2), policy)
            metrics = PerNamespaceMetrics()
            for record in trace:
                hit = kvs.get(record.key)
                metrics.record(record.key, record.size, record.cost, hit)
                if not hit:
                    kvs.put(record.key, record.size, record.cost)
            outcomes[name] = metrics
        camp_ads = outcomes["camp"].metrics("ads").cost_miss_ratio
        lru_ads = outcomes["lru"].metrics("ads").cost_miss_ratio
        assert camp_ads < lru_ads
