"""Experiment registry tests: every figure runs at tiny scale and shows the
paper's qualitative shape where tiny-scale noise allows asserting it."""

import pytest

from repro.analysis import Table
from repro.errors import ConfigurationError
from repro.experiments import (
    get_scale,
    list_experiments,
    primary_trace,
    run_experiment,
)


class TestRegistry:
    def test_every_experiment_listed(self):
        ids = {spec.experiment_id for spec in list_experiments()}
        expected = {"table1", "fig4", "fig5a", "fig5b", "fig5cd", "fig6ab",
                    "fig6c", "fig6d", "fig7", "fig8ab", "fig8c", "fig9",
                    "ablation-heap", "ablation-rounding",
                    "ablation-admission", "ablation-competitors",
                    "ablation-sharding"}
        assert expected <= ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_unknown_scale_raises(self):
        with pytest.raises(ConfigurationError):
            get_scale("galactic")

    def test_traces_cached(self):
        assert primary_trace("tiny") is primary_trace("tiny")


@pytest.mark.parametrize("experiment_id", [
    "table1", "fig4", "fig5a", "fig5b", "fig5cd", "fig6ab", "fig6c",
    "fig6d", "fig7", "fig8ab", "fig8c", "fig9", "ablation-heap",
    "ablation-rounding", "ablation-admission", "ablation-competitors",
    "ablation-sharding",
])
def test_experiment_runs_at_tiny_scale(experiment_id):
    tables = run_experiment(experiment_id, scale="tiny")
    assert tables, "experiment produced no tables"
    for table in tables:
        assert isinstance(table, Table)
        assert table.rows, f"{table.title} has no rows"
        # rendering must not crash
        assert table.to_ascii()
        assert table.to_csv()


class TestPaperShapes:
    """Qualitative claims assertable at tiny scale."""

    def test_table1_exact(self):
        table = run_experiment("table1", "tiny")[0]
        rows = {row[0]: (row[1], row[2]) for row in table.rows}
        assert rows["000001010"] == ("000000000", "000001010")

    def test_fig4_camp_visits_fewer_nodes(self):
        table = run_experiment("fig4", "tiny")[0]
        for row in table.rows:
            _, gds_visits, camp_visits = row[0], row[1], row[2]
            assert camp_visits < gds_visits

    def test_fig5a_flat_over_precision(self):
        """Cost-miss ratio varies little with precision (the 5a claim)."""
        table = run_experiment("fig5a", "tiny")[0]
        for column_name in table.columns[1:]:
            values = [v for v in table.column(column_name)]
            spread = max(values) - min(values)
            assert spread < 0.2, f"{column_name} spread {spread}"

    def test_fig5b_queues_grow_with_precision(self):
        table = run_experiment("fig5b", "tiny")[0]
        first_col = table.columns[1]
        values = table.column(first_col)
        assert values[-1] >= values[0]   # ∞ precision has most queues

    def test_fig5c_camp_beats_lru(self):
        cost_table = run_experiment("fig5cd", "tiny")[0]
        camp = cost_table.column("camp(p=5)")
        lru = cost_table.column("lru")
        assert sum(c < l for c, l in zip(camp, lru)) >= len(camp) - 1

    def test_fig7_camp_miss_rate_below_lru(self):
        """Size-aware CAMP keeps small items: lower miss rate (Figure 7)."""
        table = run_experiment("fig7", "tiny")[0]
        camp = table.column("camp(p=5)")
        lru = table.column("lru")
        assert sum(c <= l for c, l in zip(camp, lru)) >= len(camp) - 1

    def test_fig8c_equisize_has_more_queues_at_high_precision(self):
        table = run_experiment("fig8c", "tiny")[0]
        last_row = table.rows[-1]   # infinite precision
        assert last_row[1] >= last_row[2]

    def test_fig9_camp_cost_not_worse(self):
        cost_table = run_experiment("fig9", "tiny")[0]
        lru = cost_table.column("lru")
        camp = cost_table.column("camp(p=5)")
        assert sum(c <= l for c, l in zip(camp, lru)) >= len(camp) - 1

    def test_rounding_ablation_regular_collapses_queues(self):
        table = run_experiment("ablation-rounding", "tiny")[0]
        msb = {row[1]: row[2] for row in table.rows if row[0] == "camp-msb"}
        regular = {row[1]: row[2] for row in table.rows
                   if row[0] == "regular"}
        # truncating low bits at precision p=8 collapses small ratios far
        # more than MSB rounding collapses anything
        assert regular[8] <= msb[8]
