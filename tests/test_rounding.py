"""Tests for CAMP's rounding scheme (paper section 2, Table 1, Props 2-3)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rounding import (
    RatioConverter,
    distinct_value_bound,
    epsilon_for_precision,
    precision_for_epsilon,
    regular_rounding,
    round_to_precision,
)
from repro.errors import ConfigurationError


class TestTable1:
    """The exact worked examples of the paper's Table 1 (precision 4)."""

    @pytest.mark.parametrize("value,expected", [
        (0b101101011, 0b101100000),
        (0b001010011, 0b001010000),
        (0b000001010, 0b000001010),  # b <= p: unchanged
        (0b000000111, 0b000000111),  # b <= p: unchanged
    ])
    def test_camp_rounding_column(self, value, expected):
        assert round_to_precision(value, 4) == expected

    @pytest.mark.parametrize("value,expected", [
        (0b101101011, 0b101100000),
        (0b001010011, 0b001010000),
        (0b000001010, 0b000000000),  # regular rounding loses small values
        (0b000000111, 0b000000000),
    ])
    def test_regular_rounding_column(self, value, expected):
        assert regular_rounding(value, 4) == expected


class TestRoundToPrecision:
    def test_zero_unchanged(self):
        assert round_to_precision(0, 4) == 0

    def test_small_values_identity(self):
        for precision in range(1, 8):
            for x in range(0, 2 ** precision):
                assert round_to_precision(x, precision) == x

    def test_precision_one_keeps_only_msb(self):
        assert round_to_precision(0b1101, 1) == 0b1000
        assert round_to_precision(255, 1) == 128

    def test_none_means_infinite_precision(self):
        assert round_to_precision(123456789, None) == 123456789

    def test_negative_value_raises(self):
        with pytest.raises(ConfigurationError):
            round_to_precision(-1, 4)

    def test_zero_precision_raises(self):
        with pytest.raises(ConfigurationError):
            round_to_precision(5, 0)

    def test_exact_powers_of_two_unchanged(self):
        for exponent in range(30):
            assert round_to_precision(1 << exponent, 3) == 1 << exponent

    @given(x=st.integers(0, 2 ** 62), p=st.integers(1, 16))
    def test_rounded_at_most_original(self, x, p):
        assert round_to_precision(x, p) <= x

    @given(x=st.integers(1, 2 ** 62), p=st.integers(1, 16))
    def test_proposition3_bound(self, x, p):
        """x <= (1 + eps) * x̄ with eps = 2**(1-p)."""
        rounded = round_to_precision(x, p)
        epsilon = epsilon_for_precision(p)
        assert x <= (1 + epsilon) * rounded

    @given(x=st.integers(1, 2 ** 62), p=st.integers(1, 16))
    def test_msb_preserved(self, x, p):
        assert round_to_precision(x, p).bit_length() == x.bit_length()

    @given(x=st.integers(0, 2 ** 62), p=st.integers(1, 16))
    def test_idempotent(self, x, p):
        once = round_to_precision(x, p)
        assert round_to_precision(once, p) == once

    @given(a=st.integers(0, 2 ** 40), b=st.integers(0, 2 ** 40),
           p=st.integers(1, 16))
    def test_monotone(self, a, b, p):
        """Rounding preserves order (weakly)."""
        if a <= b:
            assert round_to_precision(a, p) <= round_to_precision(b, p)

    @given(a=st.integers(1, 2 ** 40), b=st.integers(1, 2 ** 40),
           p=st.integers(1, 16))
    def test_distinct_orders_of_magnitude_stay_distinct(self, a, b, p):
        """Unlike regular rounding, values with different MSB never collide."""
        if a.bit_length() != b.bit_length():
            assert round_to_precision(a, p) != round_to_precision(b, p)


class TestProposition2:
    @given(upper=st.integers(1, 100_000), p=st.integers(1, 10))
    def test_distinct_count_within_bound(self, upper, p):
        distinct = {round_to_precision(x, p) for x in range(1, upper + 1)}
        assert len(distinct) <= distinct_value_bound(upper, p)

    def test_bound_formula(self):
        # U = 1023 -> ceil(log2(1024)) = 10 bits; p = 4 -> (10-4+1) * 16 = 112
        assert distinct_value_bound(1023, 4) == 112

    def test_bound_with_tiny_upper(self):
        assert distinct_value_bound(1, 4) >= 1

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            distinct_value_bound(0, 4)
        with pytest.raises(ConfigurationError):
            distinct_value_bound(10, 0)


class TestEpsilon:
    def test_epsilon_values(self):
        assert epsilon_for_precision(1) == 1.0
        assert epsilon_for_precision(5) == 2.0 ** -4
        assert epsilon_for_precision(11) == 2.0 ** -10

    def test_precision_for_epsilon_round_trip(self):
        for p in range(1, 20):
            eps = epsilon_for_precision(p)
            assert precision_for_epsilon(eps) == p

    def test_precision_for_epsilon_monotone(self):
        assert precision_for_epsilon(0.5) <= precision_for_epsilon(0.01)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            epsilon_for_precision(0)
        with pytest.raises(ConfigurationError):
            precision_for_epsilon(0)


class TestRatioConverter:
    def test_initial_multiplier(self):
        assert RatioConverter().multiplier == 1

    def test_observe_grows_only(self):
        conv = RatioConverter()
        assert conv.observe(100) is True
        assert conv.observe(50) is False
        assert conv.multiplier == 100

    def test_integer_arithmetic_is_exact(self):
        conv = RatioConverter()
        conv.observe(1000)
        # cost=3, size=1000 -> ratio 0.003 * 1000 = 3 exactly
        assert conv.to_integer(3, 1000) == 3

    def test_round_half_up(self):
        conv = RatioConverter()
        conv.observe(2)
        # cost=1, size=4 -> 1 * 2 / 4 = 0.5 -> rounds to 1
        assert conv.to_integer(1, 4) == 1
        # cost=3, size=4 -> 1.5 -> rounds (half-up) to 2
        assert conv.to_integer(3, 4) == 2

    def test_clamped_to_one(self):
        conv = RatioConverter()
        assert conv.to_integer(0, 10) == 1
        assert conv.to_integer(1, 1_000_000) == 1

    def test_float_costs_supported(self):
        conv = RatioConverter()
        conv.observe(100)
        assert conv.to_integer(0.25, 100) == 1  # 0.25 * 100/100
        assert conv.to_integer(2.5, 100) == 2 or conv.to_integer(2.5, 100) == 3

    def test_ratio_below_one_distinguishable_after_observe(self):
        """The multiplier trick keeps sub-1 ratios apart (paper's rationale)."""
        conv = RatioConverter()
        conv.observe(1024)
        small = conv.to_integer(1, 1024)   # ratio 2**-10
        medium = conv.to_integer(16, 1024)  # ratio 2**-6
        assert small < medium

    def test_invalid_inputs(self):
        conv = RatioConverter()
        with pytest.raises(ConfigurationError):
            conv.to_integer(1, 0)
        with pytest.raises(ConfigurationError):
            conv.to_integer(-1, 10)
        with pytest.raises(ConfigurationError):
            conv.observe(0)
        with pytest.raises(ConfigurationError):
            RatioConverter(initial_max_size=0)

    @given(cost=st.integers(0, 10 ** 9), size=st.integers(1, 10 ** 6),
           max_size=st.integers(1, 10 ** 6))
    def test_matches_fraction_rounding(self, cost, size, max_size):
        """Exact integer path == round-half-up of the true fraction."""
        conv = RatioConverter()
        conv.observe(max_size)
        expected = max(1, math.floor((cost * conv.multiplier / size) + 0.5))
        assert conv.to_integer(cost, size) == expected
