"""Pooled LRU tests — the partitioned-memory baseline of section 3."""

import pytest

from repro.core import (
    PooledLruPolicy,
    PoolSpec,
    cost_proportional_fractions,
    pools_from_cost_ranges,
    pools_from_cost_values,
)
from repro.core.policy import CacheItem
from repro.errors import ConfigurationError, EvictionError, MissingKeyError

THREE_COSTS = [1, 100, 10_000]


def three_pools(fractions=(1 / 3, 1 / 3, 1 / 3)):
    return pools_from_cost_values(THREE_COSTS, list(fractions))


class TestPoolSpec:
    def test_matches_half_open_range(self):
        spec = PoolSpec("p", 100, 10_000, 0.5)
        assert spec.matches(100)
        assert spec.matches(9999)
        assert not spec.matches(10_000)
        assert not spec.matches(99)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            PoolSpec("p", 0, 1, 1.5)

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            PoolSpec("p", 5, 5, 0.5)


class TestPoolConstruction:
    def test_pools_from_cost_values(self):
        pools = three_pools()
        assert len(pools) == 3
        assert pools[0].matches(1)
        assert pools[1].matches(100)
        assert pools[2].matches(10_000)
        assert not pools[0].matches(100)

    def test_pools_from_cost_ranges_default_floors(self):
        """Section 3.2: budget proportional to the lowest cost per range."""
        pools = pools_from_cost_ranges([(1, 100), (100, 10_000),
                                        (10_000, float("inf"))])
        total = 1 + 100 + 10_000
        assert pools[0].fraction == pytest.approx(1 / total)
        assert pools[1].fraction == pytest.approx(100 / total)
        assert pools[2].fraction == pytest.approx(10_000 / total)

    def test_cost_proportional_fractions(self):
        """Section 3: fraction ∝ total cost of requests per cost value."""
        fractions = cost_proportional_fractions(
            [(1, 1000), (100, 1000), (10_000, 1000)])
        total = 1 * 1000 + 100 * 1000 + 10_000 * 1000
        assert fractions[10_000] == pytest.approx(10_000 * 1000 / total)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_cost_proportional_dedicates_99_percent_to_expensive(self):
        """The paper: '99% of the cache is dedicated to the expensive pool'."""
        fractions = cost_proportional_fractions(
            [(1, 1000), (100, 1000), (10_000, 1000)])
        assert fractions[10_000] > 0.98

    def test_zero_cost_trace_falls_back_to_uniform(self):
        fractions = cost_proportional_fractions([(0, 50)])
        assert fractions == {0: 1.0}

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ConfigurationError):
            pools_from_cost_values([1, 2], [0.5])
        with pytest.raises(ConfigurationError):
            pools_from_cost_ranges([(1, 2)], [0.5, 0.5])

    def test_duplicate_cost_values_raise(self):
        with pytest.raises(ConfigurationError):
            pools_from_cost_values([1, 1], [0.5, 0.5])


class TestPooledEviction:
    def test_items_route_to_their_pool(self):
        policy = PooledLruPolicy(300, three_pools())
        policy.on_insert("cheap", 10, 1)
        policy.on_insert("mid", 10, 100)
        policy.on_insert("dear", 10, 10_000)
        used = policy.pool_utilization()
        assert used["cost=1"][0] == 10
        assert used["cost=100"][0] == 10
        assert used["cost=10000"][0] == 10

    def test_eviction_only_from_incoming_items_pool(self):
        policy = PooledLruPolicy(300, three_pools())
        policy.on_insert("cheap1", 60, 1)
        policy.on_insert("cheap2", 40, 1)   # cheap pool now full (100)
        policy.on_insert("dear", 10, 10_000)
        incoming = CacheItem("cheap3", 20, 1)
        assert policy.wants_eviction(incoming, 300 - 110)
        victim = policy.pop_victim(incoming)
        assert victim == "cheap1"            # LRU inside the cheap pool
        assert "dear" in policy              # other pools untouched

    def test_no_eviction_when_pool_has_room(self):
        policy = PooledLruPolicy(300, three_pools())
        policy.on_insert("dear", 90, 10_000)
        incoming = CacheItem("cheap", 50, 1)
        assert not policy.wants_eviction(incoming, 300 - 90)

    def test_cross_pool_isolation(self):
        """Cheap inserts can never push out expensive pairs (by design —
        and that is exactly the miss-rate pathology of Figure 5d)."""
        policy = PooledLruPolicy(300, three_pools())
        policy.on_insert("dear", 50, 10_000)
        for i in range(20):
            item = CacheItem(f"cheap{i}", 30, 1)
            while policy.wants_eviction(item, 10 ** 9):
                policy.pop_victim(item)
            policy.on_insert(item.key, item.size, item.cost)
        assert "dear" in policy

    def test_fits_respects_pool_capacity(self):
        policy = PooledLruPolicy(300, three_pools())
        assert not policy.fits(CacheItem("huge-cheap", 200, 1), 300)
        assert policy.fits(CacheItem("ok", 90, 1), 300)

    def test_pop_victim_without_context_picks_fullest_pool(self):
        policy = PooledLruPolicy(300, three_pools())
        policy.on_insert("cheap", 95, 1)
        policy.on_insert("dear", 10, 10_000)
        assert policy.pop_victim() == "cheap"

    def test_pop_victim_empty_pool_raises(self):
        policy = PooledLruPolicy(300, three_pools())
        with pytest.raises(EvictionError):
            policy.pop_victim(CacheItem("cheap", 10, 1))

    def test_lru_within_pool(self):
        policy = PooledLruPolicy(300, three_pools())
        policy.on_insert("a", 30, 1)
        policy.on_insert("b", 30, 1)
        policy.on_hit("a")
        assert policy.pop_victim(CacheItem("c", 50, 1)) == "b"

    def test_remove(self):
        policy = PooledLruPolicy(300, three_pools())
        policy.on_insert("a", 30, 1)
        policy.on_remove("a")
        assert len(policy) == 0
        assert policy.pool_utilization()["cost=1"][0] == 0

    def test_errors(self):
        policy = PooledLruPolicy(300, three_pools())
        with pytest.raises(MissingKeyError):
            policy.on_hit("ghost")
        with pytest.raises(MissingKeyError):
            policy.on_remove("ghost")
        with pytest.raises(ConfigurationError):
            policy.on_insert("weird", 10, 55)   # no pool covers cost 55

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            PooledLruPolicy(0, three_pools())
        with pytest.raises(ConfigurationError):
            PooledLruPolicy(100, [])
        with pytest.raises(ConfigurationError):
            PooledLruPolicy(100, pools_from_cost_values(
                [1, 2], [0.8, 0.8]))  # fractions sum > 1

    def test_range_pools_cover_everything(self):
        policy = PooledLruPolicy(
            10_000,
            pools_from_cost_ranges([(0, 100), (100, 10_000),
                                    (10_000, float("inf"))]))
        for cost in [0, 1, 99, 100, 9_999, 10_000, 10 ** 9]:
            policy.on_insert(f"c{cost}", 1, cost)
        assert len(policy) == 7
