"""The extended memcached verb set: add/replace/incr/decr/touch/flush_all."""

import pytest

from repro.errors import ProtocolError
from repro.twemcache import (
    SocketClient,
    TwemcacheEngine,
    TwemcacheServer,
    VirtualClock,
    parse_command_line,
)


def engine(**kw):
    return TwemcacheEngine(1 << 20, slab_size=1 << 16, **kw)


class TestParsing:
    def test_add_and_replace_share_set_layout(self):
        for verb in ("add", "replace"):
            request = parse_command_line(f"{verb} k 1 0 5 100".encode())
            assert request.command == verb
            assert request.nbytes == 5
            assert request.cost == 100

    def test_incr_decr(self):
        request = parse_command_line(b"incr counter 5")
        assert (request.command, request.key, request.delta) == \
            ("incr", "counter", 5)
        request = parse_command_line(b"decr counter 2")
        assert request.command == "decr"

    def test_touch(self):
        request = parse_command_line(b"touch k 30")
        assert request.command == "touch"
        assert request.exptime == 30.0

    def test_flush_all(self):
        assert parse_command_line(b"flush_all").command == "flush_all"

    @pytest.mark.parametrize("line", [
        b"incr k", b"incr k -1", b"incr k abc", b"touch k",
        b"flush_all now", b"add k 0 0", b"replace k 0 0 xx",
    ])
    def test_malformed(self, line):
        with pytest.raises(ProtocolError):
            parse_command_line(line)


class TestEngineVerbs:
    def test_add_only_when_absent(self):
        eng = engine()
        assert eng.add("k", b"first")
        assert not eng.add("k", b"second")
        assert eng.get("k").value == b"first"

    def test_add_succeeds_over_expired(self):
        clock = VirtualClock()
        eng = engine(clock=clock)
        eng.set("k", b"old", expire_after=5)
        clock.advance(10)
        assert eng.add("k", b"new")
        assert eng.get("k").value == b"new"

    def test_replace_only_when_present(self):
        eng = engine()
        assert not eng.replace("k", b"nope")
        eng.set("k", b"old")
        assert eng.replace("k", b"new")
        assert eng.get("k").value == b"new"

    def test_incr_decr_roundtrip(self):
        eng = engine()
        eng.set("counter", b"10")
        assert eng.incr("counter", 5) == 15
        assert eng.decr("counter", 3) == 12
        assert eng.get("counter").value == b"12"

    def test_decr_clamps_at_zero(self):
        eng = engine()
        eng.set("counter", b"3")
        assert eng.decr("counter", 100) == 0

    def test_incr_missing_returns_none(self):
        assert engine().incr("ghost", 1) is None

    def test_incr_non_numeric_raises(self):
        eng = engine()
        eng.set("k", b"hello")
        with pytest.raises(ProtocolError):
            eng.incr("k", 1)

    def test_incr_preserves_cost_and_flags(self):
        eng = engine()
        eng.set("counter", b"1", flags=9, cost=10_000)
        eng.incr("counter", 1)
        item = eng.get("counter")
        assert item.flags == 9
        assert item.cost == 10_000

    def test_touch_extends_expiry(self):
        clock = VirtualClock()
        eng = engine(clock=clock)
        eng.set("k", b"v", expire_after=5)
        clock.advance(4)
        assert eng.touch("k", 100)
        clock.advance(50)
        assert eng.get("k") is not None

    def test_touch_missing(self):
        assert not engine().touch("ghost", 10)

    def test_flush_all(self):
        eng = engine()
        for i in range(10):
            eng.set(f"k{i}", b"v")
        eng.flush_all()
        assert len(eng) == 0
        eng.check_consistency()
        # storage is reusable afterwards
        assert eng.set("fresh", b"v")


@pytest.fixture()
def server():
    srv = TwemcacheServer(engine(eviction="camp")).start()
    yield srv
    srv.stop()


class TestServerVerbs:
    def test_add_replace_over_wire(self, server):
        with SocketClient(server.address) as client:
            client._send(b"add k 0 0 3\r\nabc\r\n")
            assert client._read_line() == b"STORED"
            client._send(b"add k 0 0 3\r\nxyz\r\n")
            assert client._read_line() == b"NOT_STORED"
            client._send(b"replace k 0 0 3\r\nxyz\r\n")
            assert client._read_line() == b"STORED"
            assert client.get("k").value == b"xyz"

    def test_incr_over_wire(self, server):
        with SocketClient(server.address) as client:
            client.set("n", b"41")
            client._send(b"incr n 1\r\n")
            assert client._read_line() == b"42"
            client._send(b"incr ghost 1\r\n")
            assert client._read_line() == b"NOT_FOUND"
            client.set("text", b"abc")
            client._send(b"incr text 1\r\n")
            assert client._read_line().startswith(b"CLIENT_ERROR")

    def test_touch_and_flush_over_wire(self, server):
        with SocketClient(server.address) as client:
            client.set("k", b"v")
            client._send(b"touch k 60\r\n")
            assert client._read_line() == b"TOUCHED"
            client._send(b"touch ghost 60\r\n")
            assert client._read_line() == b"NOT_FOUND"
            client._send(b"flush_all\r\n")
            assert client._read_line() == b"OK"
            assert client.get("k") is None
