"""Store facade tests: structured outcomes, read-through, TTL, batches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    KVS,
    AccessResult,
    Computed,
    Outcome,
    Store,
    StoreConfig,
)
from repro.core import LruPolicy, SecondHitAdmission, make_policy
from repro.core.concurrent import ThreadSafePolicy
from repro.errors import ConfigurationError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def lru_store(capacity=100, **kwargs):
    return Store(KVS(capacity, LruPolicy(), **kwargs))


class TestOutcomes:
    def test_get_miss_then_access_inserts_then_hit(self):
        store = lru_store()
        assert store.get("a").outcome is Outcome.MISS
        first = store.access("a", 10, 1)
        assert first.outcome is Outcome.MISS_INSERTED
        assert first.resident and not first.hit
        assert store.get("a").outcome is Outcome.HIT

    def test_truthiness_means_hit(self):
        store = lru_store()
        assert not store.access("a", 10, 1)
        assert store.access("a", 10, 1)

    def test_put_too_large_rejected(self):
        store = lru_store(capacity=20)
        result = store.put("huge", 21, 1)
        assert result.outcome is Outcome.MISS_REJECTED_TOO_LARGE
        assert result.rejected and not result.resident

    def test_put_rejected_by_admission(self):
        store = Store(KVS(100, LruPolicy(),
                          admission=SecondHitAdmission(window=8)))
        result = store.put("a", 10, 1)
        assert result.outcome is Outcome.MISS_REJECTED_ADMISSION
        assert store.put("a", 10, 1).outcome is Outcome.MISS_INSERTED

    def test_rejected_replacement_keeps_old_copy_resident(self):
        store = lru_store(capacity=30)
        assert store.put("a", 10, 1, value=b"old").resident
        result = store.put("a", 50, 1, value=b"new")
        assert result.outcome is Outcome.MISS_REJECTED_TOO_LARGE
        assert result.resident      # the OLD copy is still there
        assert store.get("a").value == b"old"
        store.check_consistency()


class TestReadThrough:
    def test_loader_runs_once_and_value_is_memoized(self):
        store = lru_store()
        calls = []

        def loader(key):
            calls.append(key)
            return b"payload"

        first = store.get_or_compute("k", loader)
        assert first.outcome is Outcome.MISS_INSERTED
        assert first.value == b"payload"
        assert first.size == len(b"payload")
        second = store.get_or_compute("k", loader)
        assert second.hit and second.value == b"payload"
        assert calls == ["k"]

    def test_cost_is_measured_from_the_loader(self):
        store = lru_store()
        result = store.get_or_compute("k", lambda key: b"x")
        assert result.cost > 0                      # wall seconds
        assert store.kvs.peek("k").cost == result.cost

    def test_computed_overrides_size_cost_ttl(self):
        clock = FakeClock()
        store = lru_store(clock=clock)
        result = store.get_or_compute(
            "k", lambda key: Computed(value=b"v", size=42, cost=777, ttl=5))
        assert result.size == 42 and result.cost == 777
        clock.advance(6)
        assert store.get("k").outcome is Outcome.EXPIRED

    def test_explicit_kwargs_beat_computed_fields(self):
        store = lru_store()
        result = store.get_or_compute(
            "k", lambda key: Computed(value=b"v", size=42, cost=777),
            size=10, cost=5)
        assert result.size == 10 and result.cost == 5

    def test_unsizable_value_raises_without_sizer(self):
        store = lru_store()
        with pytest.raises(ConfigurationError):
            store.get_or_compute("k", lambda key: object())

    def test_sizer_sizes_opaque_values(self):
        store = Store(KVS(100, LruPolicy()), sizer=lambda key, value: 7)
        result = store.get_or_compute("k", lambda key: object())
        assert result.size == 7 and result.resident

    def test_rejected_compute_still_returns_the_value(self):
        store = lru_store(capacity=10)
        result = store.get_or_compute("k", lambda key: b"x" * 50)
        assert result.outcome is Outcome.MISS_REJECTED_TOO_LARGE
        assert result.value == b"x" * 50

    def test_expired_flag_set_on_recompute(self):
        clock = FakeClock()
        store = lru_store(clock=clock)
        store.get_or_compute("k", lambda key: b"v", ttl=5)
        clock.advance(6)
        result = store.get_or_compute("k", lambda key: b"v2")
        assert result.outcome is Outcome.MISS_INSERTED
        assert result.expired
        assert result.value == b"v2"


class TestTtl:
    def test_expiry_reads_as_expired_then_miss(self):
        clock = FakeClock()
        store = lru_store(clock=clock)
        store.put("k", 10, 1, ttl=5)
        assert store.get("k").hit
        clock.advance(5)
        assert store.get("k").outcome is Outcome.EXPIRED
        assert store.get("k").outcome is Outcome.MISS
        assert store.kvs.expired_count == 1
        store.kvs.check_consistency()

    def test_touch_extends_and_clears_ttl(self):
        clock = FakeClock()
        store = lru_store(clock=clock)
        store.put("k", 10, 1, ttl=5)
        assert store.touch("k", 50)
        clock.advance(10)
        assert store.get("k").hit
        assert store.touch("k", None)      # never expire
        clock.advance(10 ** 6)
        assert store.get("k").hit
        assert not store.touch("ghost", 5)

    def test_expiry_notifies_listeners_as_explicit(self):
        """Lifecycle expiry must not look like capacity pressure."""
        events = []

        class Recorder:
            def on_insert(self, item):
                pass

            def on_evict(self, item, explicit):
                events.append((item.key, explicit))

        clock = FakeClock()
        kvs = KVS(100, LruPolicy(), clock=clock)
        kvs.add_listener(Recorder())
        kvs.insert("k", 10, 1, ttl=5)
        clock.advance(6)
        kvs.lookup("k")
        assert events == [("k", True)]

    def test_purge_expired(self):
        clock = FakeClock()
        kvs = KVS(100, LruPolicy(), clock=clock)
        for i in range(4):
            kvs.insert(f"k{i}", 10, 1, ttl=5)
        kvs.insert("stay", 10, 1)
        clock.advance(6)
        assert kvs.purge_expired(limit=3) == 3
        assert kvs.purge_expired() == 1
        assert len(kvs) == 1 and "stay" in kvs
        kvs.check_consistency()


class TestValueMemoization:
    def test_value_dropped_after_eviction(self):
        store = lru_store(capacity=20)
        store.put("a", 10, 1, value=b"va")
        store.put("b", 10, 1, value=b"vb")
        store.put("c", 10, 1, value=b"vc")    # evicts "a"
        assert "a" not in store
        assert store._values.keys() == {"b", "c"}
        store.check_consistency()

    def test_value_dropped_on_delete(self):
        store = lru_store()
        store.put("a", 10, 1, value=b"va")
        assert store.delete("a")
        assert store.get("a").value is None
        store.check_consistency()


class TestBatches:
    def test_get_many_counts_match_looped_gets(self):
        store = lru_store(capacity=1000)
        for i in range(10):
            store.put(f"k{i}", 10, 1)
        keys = [f"k{i}" for i in range(15)]
        batch = store.get_many(keys)
        assert len(batch) == 15
        assert batch.hits == 10 and batch.misses == 5
        assert list(batch)[:2] == [Outcome.HIT, Outcome.HIT]

    def test_put_many_outcomes(self):
        store = lru_store(capacity=100)
        batch = store.put_many([("a", 10, 1), ("b", 200, 1), ("c", 10, 1)])
        assert batch.outcomes == [Outcome.MISS_INSERTED,
                                  Outcome.MISS_REJECTED_TOO_LARGE,
                                  Outcome.MISS_INSERTED]
        assert batch.inserted == 2 and batch.rejected == 1

    def test_put_many_accepts_ttl_rows(self):
        clock = FakeClock()
        store = lru_store(clock=clock)
        store.put_many([("a", 10, 1, 5), ("b", 10, 1)])
        clock.advance(6)
        assert store.get("a").outcome is Outcome.EXPIRED
        assert store.get("b").hit

    def test_batch_under_thread_safe_wrapper(self):
        store = (StoreConfig(1000).policy("camp", precision=5)
                 .thread_safe().build())
        assert isinstance(store.kvs.policy, ThreadSafePolicy)
        store.put_many([(f"k{i}", 10, i + 1) for i in range(50)])
        batch = store.get_many([f"k{i}" for i in range(50)])
        assert batch.hits + batch.misses == 50
        store.check_consistency()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(1, 40),
                          st.sampled_from([1, 100, 10_000])),
                min_size=1, max_size=120),
       st.integers(60, 300),
       st.sampled_from(["camp", "lru", "gdsf"]),
       st.integers(1, 7))
def test_put_many_equals_sequential_puts(requests, capacity, policy_name,
                                         chunk):
    """Batched and sequential inserts are the same algorithm: identical
    residency and eviction counts for CAMP, LRU and GDSF."""
    sequential = Store(KVS(capacity, make_policy(policy_name, capacity)))
    batched = Store(KVS(capacity, make_policy(policy_name, capacity)))
    entries = [(f"k{key_id}", size, cost)
               for key_id, size, cost in requests]
    seq_outcomes = [sequential.put(*entry).outcome for entry in entries]
    batch_outcomes = []
    for start in range(0, len(entries), chunk):
        batch_outcomes.extend(
            batched.put_many(entries[start:start + chunk]).outcomes)
    assert seq_outcomes == batch_outcomes
    assert sorted(item.key for item in sequential.kvs.resident_items()) == \
        sorted(item.key for item in batched.kvs.resident_items())
    assert sequential.kvs.eviction_count == batched.kvs.eviction_count
    sequential.check_consistency()
    batched.check_consistency()


class TestStoreConfig:
    def test_policy_by_name_with_kwargs(self):
        store = StoreConfig(500).policy("camp", precision=3).build()
        assert store.kvs.policy.precision == 3

    def test_policy_instance(self):
        policy = LruPolicy()
        store = StoreConfig(500).policy(policy).build()
        assert store.kvs.policy is policy

    def test_policy_instance_rejects_kwargs(self):
        with pytest.raises(ConfigurationError):
            StoreConfig(500).policy(LruPolicy(), precision=3)

    def test_admission_item_overhead_listeners_metrics(self):
        events = []

        class Recorder:
            def on_insert(self, item):
                events.append(item.key)

            def on_evict(self, item, explicit):
                pass

        store = (StoreConfig(500)
                 .policy("lru")
                 .admission(SecondHitAdmission(window=4))
                 .item_overhead(5)
                 .listener(Recorder())
                 .track_metrics()
                 .build())
        assert store.put("a", 10, 1).outcome is Outcome.MISS_REJECTED_ADMISSION
        store.put("a", 10, 1)
        assert events == ["a"]
        assert store.kvs.used_bytes == 15
        store.access("a", 10, 1)
        store.access("a", 10, 1)
        assert store.metrics.hits == 1      # first access was cold

    def test_clock_feeds_ttl(self):
        clock = FakeClock()
        store = StoreConfig(500).policy("lru").clock(clock).build()
        store.put("k", 10, 1, ttl=2)
        clock.advance(3)
        assert store.get("k").outcome is Outcome.EXPIRED


class TestSimulatorIntegration:
    def test_simulate_accepts_a_store_and_reports_outcomes(self):
        from repro.sim import simulate
        from repro.workloads import three_cost_trace
        trace = three_cost_trace(n_keys=50, n_requests=500, seed=3)
        store = (StoreConfig(trace.capacity_for_ratio(0.25))
                 .policy("camp").build())
        result = simulate(store, trace)
        assert sum(result.outcomes.values()) == 500
        assert set(result.outcomes) <= {
            "hit", "miss_inserted", "miss_rejected_too_large",
            "miss_rejected_admission", "expired"}
        assert result.metrics.requests == 500

    def test_simulate_runs_do_not_blend_metrics(self):
        """Each simulate() call gets fresh metrics, even on a reused
        Store, and a passed-in Store's own metrics stay untouched."""
        from repro.sim import simulate
        from repro.workloads import three_cost_trace
        trace = three_cost_trace(n_keys=50, n_requests=500, seed=3)
        store = (StoreConfig(trace.capacity_for_ratio(0.25))
                 .policy("lru").track_metrics().build())
        own_metrics = store.metrics
        first = simulate(store, trace)
        second = simulate(store, trace)
        assert first.metrics.requests == 500
        assert second.metrics.requests == 500       # not 1000
        assert store.metrics is own_metrics
        assert own_metrics.requests == 0

    def test_manager_put_shim_reports_false_on_rejected_replacement(self):
        from repro.tenancy import TenantManager, TenantSpec
        manager = TenantManager(1_000, [TenantSpec("a", floor=0.1)],
                                rebalance_every=None)
        assert manager.put("a:k", 10, 1)
        assert not manager.put("a:k", 5_000, 1)     # can never fit
        assert manager.get("a:k")                   # old copy still served

    def test_tenant_manager_access_returns_structured_result(self):
        from repro.tenancy import TenantManager, TenantSpec
        manager = TenantManager(
            10_000, [TenantSpec("a", floor=0.1), TenantSpec("b", floor=0.1)],
            rebalance_every=None)
        result = manager.access("a:k1", 100, 5)
        assert isinstance(result, AccessResult)
        assert result.outcome is Outcome.MISS_INSERTED
        assert not result          # miss: falsy, like the old bool
        assert manager.access("a:k1", 100, 5).hit
        manager.check_consistency()
