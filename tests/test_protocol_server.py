"""Protocol parsing, TCP server/client integration, IQ session tests."""

import threading

import pytest

from repro.errors import ProtocolError
from repro.twemcache import (
    InProcessClient,
    IqSession,
    SocketClient,
    TwemcacheEngine,
    TwemcacheServer,
    VirtualClock,
    parse_command_line,
    replay_trace,
)
from repro.workloads import three_cost_trace


class TestProtocolParsing:
    def test_get_single(self):
        req = parse_command_line(b"get foo")
        assert req.command == "get"
        assert req.keys == ["foo"]

    def test_get_multi(self):
        req = parse_command_line(b"get a b c")
        assert req.keys == ["a", "b", "c"]

    def test_set_with_cost(self):
        req = parse_command_line(b"set k 1 0 5 10000")
        assert (req.command, req.key, req.flags, req.nbytes, req.cost) == \
            ("set", "k", 1, 5, 10_000)

    def test_set_without_cost(self):
        req = parse_command_line(b"set k 0 0 5")
        assert req.cost == 0

    def test_set_float_cost(self):
        req = parse_command_line(b"set k 0 0 5 2.75")
        assert req.cost == 2.75

    def test_delete(self):
        req = parse_command_line(b"delete foo")
        assert req.command == "delete"

    def test_bare_commands(self):
        for command in (b"stats", b"version", b"quit"):
            assert parse_command_line(command).command == command.decode()

    @pytest.mark.parametrize("line", [
        b"", b"get", b"set k 0 0", b"set k 0 0 xx", b"set k 0 0 -3",
        b"set k 0 0 5 -1", b"delete", b"delete a b", b"unknown x",
        b"stats now", b"\xff\xfe",
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ProtocolError):
            parse_command_line(line)


@pytest.fixture()
def server():
    engine = TwemcacheEngine(2 << 20, eviction="camp", slab_size=1 << 16)
    srv = TwemcacheServer(engine).start()
    yield srv
    srv.stop()


class TestServerIntegration:
    def test_set_get_delete_round_trip(self, server):
        with SocketClient(server.address) as client:
            assert client.set("hello", b"world", flags=7, cost=42)
            value = client.get("hello")
            assert value.value == b"world"
            assert value.flags == 7
            assert client.get("missing") is None
            assert client.delete("hello")
            assert not client.delete("hello")

    def test_binary_safe_values(self, server):
        with SocketClient(server.address) as client:
            payload = bytes(range(256)) * 4
            client.set("bin", payload)
            assert client.get("bin").value == payload

    def test_value_with_crlf_inside(self, server):
        with SocketClient(server.address) as client:
            payload = b"line1\r\nline2\r\nEND\r\n"
            client.set("tricky", payload)
            assert client.get("tricky").value == payload

    def test_stats_and_version(self, server):
        with SocketClient(server.address) as client:
            client.set("a", b"1")
            stats = client.stats()
            assert stats["items"] == 1
            assert client.version().startswith("VERSION")

    def test_concurrent_clients(self, server):
        errors = []

        def worker(worker_id):
            try:
                with SocketClient(server.address) as client:
                    for i in range(50):
                        key = f"w{worker_id}-{i}"
                        assert client.set(key, f"v{i}".encode(), cost=i)
                        got = client.get(key)
                        assert got is None or got.value == f"v{i}".encode()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        server.engine.check_consistency()

    def test_protocol_error_reported_not_fatal(self, server):
        with SocketClient(server.address) as client:
            client._send(b"bogus command\r\n")
            line = client._read_line()
            assert line.startswith(b"CLIENT_ERROR")
            # the connection still works afterwards
            assert client.set("still", b"alive")

    def test_multi_key_get_and_get_many(self, server):
        """Regression: the sync client used to send only one key even
        though the protocol and server loop over every requested key."""
        with SocketClient(server.address) as client:
            client.set("a", b"1", flags=2)
            client.set("b", b"22")
            found = client.get_many(["a", "missing", "b"])
            assert {k: v.value for k, v in found.items()} == \
                {"a": b"1", "b": b"22"}
            assert found["a"].flags == 2
            assert client.get_many([]) == {}
            assert client.get_many(["missing"]) == {}
            # multi-key get(): one command, last requested hit wins
            assert client.get("a", "b").value == b"22"
            assert client.get("b", "missing").value == b"22"
            # the single-key shape is unchanged
            assert client.get("a").value == b"1"
            assert client.get("missing") is None


class TestFramingRobustness:
    """The threaded server must close, not desync, on broken frames.

    Before the sans-IO rewrite a short ``rfile.read(nbytes)`` or a bad
    trailer left the handler reinterpreting payload bytes as commands.
    """

    def test_bad_trailer_replies_error_then_closes(self, server):
        import socket as socket_module
        with socket_module.create_connection(server.address,
                                             timeout=10) as sock:
            # 5 declared bytes but 7 sent: the trailer check fails and
            # the embedded "version" line must never execute
            sock.sendall(b"set k 0 0 5 1\r\nabcdeXX" + b"version\r\n")
            received = bytearray()
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                received += chunk
        assert received.startswith(b"CLIENT_ERROR bad data chunk")
        assert b"VERSION" not in received
        assert "k" not in server.engine

    def test_client_death_mid_body_executes_nothing(self, server):
        import socket as socket_module
        with socket_module.create_connection(server.address,
                                             timeout=10) as sock:
            # promise 1000 body bytes, send a command-shaped fragment,
            # die: the fragment is body bytes, not a flush_all
            server.engine.set("survivor", b"v")
            sock.sendall(b"set k 0 0 1000 1\r\nflush_all\r\n")
        # the server saw EOF mid-frame; poll briefly for it to notice
        import time
        for _ in range(100):
            if "survivor" in server.engine:
                break
            time.sleep(0.01)
        assert "survivor" in server.engine
        assert "k" not in server.engine

    def test_split_frames_across_sends_still_parse(self, server):
        """The inverse guarantee: slow (non-broken) clients whose frames
        arrive in pieces are served normally."""
        import socket as socket_module
        import time as time_module
        with socket_module.create_connection(server.address,
                                             timeout=10) as sock:
            for piece in (b"set half 0", b" 0 6 3\r\nabc",
                          b"def", b"\r\n"):
                sock.sendall(piece)
                time_module.sleep(0.01)
            reply = sock.recv(100)
        assert reply == b"STORED\r\n"
        assert server.engine.get("half").value == b"abcdef"


class TestIqSession:
    def test_measured_cost_is_miss_to_set_interval(self):
        clock = VirtualClock()
        engine = TwemcacheEngine(1 << 20, eviction="camp",
                                 slab_size=1 << 16, clock=clock)
        session = IqSession(InProcessClient(engine), clock=clock)
        assert session.iqget("k") is None          # miss stamped at t=0
        clock.advance(2.5)                         # "computation time"
        assert session.iqset("k", b"value")
        assert engine.get("k").cost == pytest.approx(2.5)

    def test_override_bypasses_measurement(self):
        clock = VirtualClock()
        engine = TwemcacheEngine(1 << 20, slab_size=1 << 16, clock=clock)
        session = IqSession(InProcessClient(engine), clock=clock)
        session.iqget("k")
        clock.advance(100)
        session.iqset("k", b"v", cost_override=7)
        assert engine.get("k").cost == 7

    def test_set_without_pending_miss_costs_zero(self):
        engine = TwemcacheEngine(1 << 20, slab_size=1 << 16)
        session = IqSession(InProcessClient(engine))
        session.iqset("k", b"v")
        assert engine.get("k").cost == 0

    def test_hit_clears_pending(self):
        clock = VirtualClock()
        engine = TwemcacheEngine(1 << 20, slab_size=1 << 16, clock=clock)
        session = IqSession(InProcessClient(engine), clock=clock)
        session.iqget("k")
        session.iqset("k", b"v")
        assert session.iqget("k") is not None
        assert session.pending_misses == 0


class TestReplay:
    def test_replay_in_process(self):
        engine = TwemcacheEngine(1 << 20, eviction="camp",
                                 slab_size=1 << 16)
        trace = three_cost_trace(n_keys=200, n_requests=2000,
                                 size_range=(100, 2000), seed=3)
        result = replay_trace(InProcessClient(engine), trace)
        assert result.metrics.requests == 2000
        assert 0 <= result.miss_rate <= 1
        assert result.run_seconds > 0
        engine.check_consistency()

    def test_replay_over_sockets(self, server):
        trace = three_cost_trace(n_keys=100, n_requests=600,
                                 size_range=(100, 1000), seed=4)
        with SocketClient(server.address) as client:
            result = replay_trace(client, trace)
        assert result.metrics.requests == 600
        assert result.failed_sets == 0

    def test_camp_beats_lru_cost_in_engine(self):
        """Figure 9a's claim at miniature scale."""
        trace = three_cost_trace(n_keys=800, n_requests=12_000,
                                 size_range=(100, 1200), seed=5)
        outcomes = {}
        for kind in ("lru", "camp"):
            engine = TwemcacheEngine(1 << 19, eviction=kind,
                                     slab_size=1 << 14, seed=1)
            outcomes[kind] = replay_trace(InProcessClient(engine), trace)
        assert outcomes["camp"].cost_miss_ratio < \
            outcomes["lru"].cost_miss_ratio
