"""The durable-state subsystem: format, log, snapshots, recovery, wiring.

The property at the heart of the subsystem — a restored cache evicts
*identically* to one that never restarted — is exercised here per layer
(policy export/import round trips) and end-to-end
(``TestRestartEquivalence``: snapshot → restore → continue the trace,
compared decision-for-decision against an uninterrupted control on
seeded ≥10k-request workloads).
"""

import io
import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import KVS
from repro.cache.outcomes import Outcome
from repro.cache.store import StoreConfig
from repro.core import make_policy
from repro.core.concurrent import ThreadSafePolicy
from repro.errors import ConfigurationError
from repro.persistence import (
    AppendOnlyLog,
    PersistenceConfig,
    PersistenceError,
    PersistenceManager,
    RecoveryManager,
    SnapshotCorruptError,
    Snapshotter,
    SnapshotThread,
    load_snapshot,
    log_path_for,
    read_log,
    save_snapshot,
    snapshot_generations,
)
from repro.persistence.format import (
    LOG_MAGIC,
    iter_records,
    read_magic,
    read_record,
    scan_records,
    write_magic,
    write_record,
)
from repro.workloads import three_cost_trace, variable_size_constant_cost_trace


def build_kvs(policy="camp", capacity=10_000, clock=None, overhead=0):
    return KVS(capacity, make_policy(policy, capacity),
               item_overhead=overhead, clock=clock)


class ManualClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


class EvictionRecorder:
    """KVS listener capturing the eviction sequence once armed."""

    def __init__(self):
        self.events = []
        self.armed = False

    def on_insert(self, item):
        pass

    def on_evict(self, item, explicit):
        if self.armed:
            self.events.append((item.key, explicit))


# ---------------------------------------------------------------------------
# framed record format
# ---------------------------------------------------------------------------
class TestRecordFormat:
    def test_round_trip(self):
        buffer = io.BytesIO()
        write_magic(buffer, LOG_MAGIC)
        write_record(buffer, {"op": "insert", "k": "a"})
        write_record(buffer, {"op": "delete", "k": "b"})
        buffer.seek(0)
        read_magic(buffer, LOG_MAGIC)
        assert list(iter_records(buffer)) == [
            {"op": "insert", "k": "a"}, {"op": "delete", "k": "b"}]

    def test_bad_magic(self):
        buffer = io.BytesIO(b"NOTMAGIC")
        with pytest.raises(SnapshotCorruptError):
            read_magic(buffer, LOG_MAGIC)

    def test_flipped_bit_fails_checksum(self):
        buffer = io.BytesIO()
        write_record(buffer, {"k": "victim"})
        raw = bytearray(buffer.getvalue())
        raw[-1] ^= 0x40
        with pytest.raises(SnapshotCorruptError, match="checksum"):
            read_record(io.BytesIO(bytes(raw)))

    def test_torn_header_and_body(self):
        buffer = io.BytesIO()
        write_record(buffer, {"k": "a"})
        raw = buffer.getvalue()
        with pytest.raises(SnapshotCorruptError, match="header"):
            read_record(io.BytesIO(raw[:4]))
        with pytest.raises(SnapshotCorruptError, match="body"):
            read_record(io.BytesIO(raw[:-3]))

    def test_implausible_length_refused(self):
        import struct
        frame = struct.pack("<II", 1 << 30, 0)
        with pytest.raises(SnapshotCorruptError, match="implausible"):
            read_record(io.BytesIO(frame + b"x" * 64))

    def test_scan_reports_truncation_point(self):
        buffer = io.BytesIO()
        first = write_record(buffer, {"k": "a"})
        second = write_record(buffer, {"k": "b"})
        buffer.write(b"\x99\x01")   # torn third record
        buffer.seek(0)
        records, clean, valid = scan_records(buffer)
        assert [r["k"] for r in records] == ["a", "b"]
        assert not clean
        assert valid == first + second


# ---------------------------------------------------------------------------
# the append-only log
# ---------------------------------------------------------------------------
class TestAppendOnlyLog:
    def test_append_and_read_back(self, tmp_path):
        path = tmp_path / "ops.log"
        with AppendOnlyLog(path) as log:
            log.log_insert("a", 10, 5, ttl=3.0)
            log.log_delete("a")
            log.log_touch("b", ttl=1.0)
            assert log.records_appended == 3
        operations, clean, _ = read_log(path)
        assert clean
        assert [op["op"] for op in operations] == ["insert", "delete", "touch"]
        assert operations[0] == {"op": "insert", "k": "a", "s": 10,
                                 "c": 5, "ttl": 3.0}

    def test_append_resumes_across_handles(self, tmp_path):
        path = tmp_path / "ops.log"
        with AppendOnlyLog(path) as log:
            log.log_insert("a", 1, 1)
        with AppendOnlyLog(path) as log:
            log.log_insert("b", 2, 2)
            log.flush()
            assert log.size_bytes() == path.stat().st_size
        operations, clean, _ = read_log(path)
        assert clean and [op["k"] for op in operations] == ["a", "b"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_log(tmp_path / "absent.log") == ([], True, 0)

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(PersistenceError):
            AppendOnlyLog(tmp_path / "x.log", fsync="sometimes")
        with pytest.raises(PersistenceError):
            AppendOnlyLog(tmp_path / "x.log", fsync="batch", fsync_every=0)

    def test_batch_fsync_counts(self, tmp_path):
        with AppendOnlyLog(tmp_path / "b.log", fsync="batch",
                           fsync_every=2) as log:
            for i in range(5):
                log.log_insert(f"k{i}", 1, 1)
        operations, clean, _ = read_log(tmp_path / "b.log")
        assert clean and len(operations) == 5

    def test_closed_log_refuses_appends(self, tmp_path):
        log = AppendOnlyLog(tmp_path / "c.log")
        log.close()
        with pytest.raises(PersistenceError):
            log.log_insert("a", 1, 1)

    def test_repair_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "torn.log"
        with AppendOnlyLog(path) as log:
            log.log_insert("a", 1, 1)
            log.log_insert("b", 1, 1)
        whole = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe")   # a crash mid-append
        valid, truncated = AppendOnlyLog.repair(path)
        assert (valid, truncated) == (2, True)
        assert path.stat().st_size == whole
        # a clean log is left alone
        assert AppendOnlyLog.repair(path) == (2, False)

    def test_repair_unreadable_magic_starts_over(self, tmp_path):
        path = tmp_path / "junk.log"
        path.write_bytes(b"not a log at all")
        valid, truncated = AppendOnlyLog.repair(path)
        assert (valid, truncated) == (0, True)
        assert not path.exists()


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------
class TestSnapshot:
    def test_round_trip_items_and_policy(self, tmp_path):
        kvs = build_kvs("camp", overhead=8)
        for i in range(40):
            kvs.insert(f"k{i}", 50 + i, (i % 3 + 1) * 10)
        path = tmp_path / "s.snap"
        size = save_snapshot(path, kvs)
        assert size == path.stat().st_size
        data = load_snapshot(path)
        assert data.capacity == kvs.capacity
        assert data.item_overhead == 8
        assert data.item_count == len(kvs)
        assert data.policy_state["policy"] == "camp"
        assert {item.key for item in data.items} == \
            {item.key for item in kvs.resident_items()}

    def test_payloads_ride_along(self, tmp_path):
        kvs = build_kvs("lru")
        kvs.insert("a", 3, 1)
        kvs.insert("b", 4, 1)
        path = tmp_path / "p.snap"
        save_snapshot(path, kvs, payloads={"a": b"abc"})
        data = load_snapshot(path)
        assert data.payloads == {"a": b"abc"}

    def test_ttl_rebased_onto_restoring_clock(self, tmp_path):
        saver_clock = ManualClock(1000.0)
        kvs = build_kvs("lru", clock=saver_clock)
        kvs.insert("fresh", 10, 1, ttl=50.0)
        kvs.insert("stale", 10, 1, ttl=5.0)
        kvs.insert("forever", 10, 1)
        path = tmp_path / "ttl.snap"
        save_snapshot(path, kvs)
        # the restoring process's clock reads an unrelated epoch, and the
        # save happened 10 "seconds" of TTL ago
        data = load_snapshot(path, now=7.0)
        by_key = {item.key: item for item in data.items}
        assert by_key["fresh"].expire_at == pytest.approx(7.0 + 50.0)
        assert by_key["forever"].expire_at == 0.0
        restorer_clock = ManualClock(7.0)
        target = build_kvs("lru", clock=restorer_clock)
        target.restore(data.items, data.policy_state)
        restorer_clock.now = 20.0   # past "stale"'s remaining 5s TTL
        assert target.lookup("stale") is Outcome.EXPIRED
        assert target.lookup("fresh") is Outcome.HIT

    def test_lapsed_ttl_restores_as_expired_not_dropped(self, tmp_path):
        saver_clock = ManualClock(1000.0)
        kvs = build_kvs("lru", clock=saver_clock)
        kvs.insert("gone", 10, 1, ttl=5.0)
        path = tmp_path / "lapsed.snap"
        saver_clock.now = 1100.0   # TTL lapsed before the save... but the
        # resident map still lists it (lazy reclaim never ran)
        save_snapshot(path, kvs)
        data = load_snapshot(path, now=50.0)
        # still listed (policy state must agree with the item set) yet
        # expired as of "now" on the restoring clock
        assert data.item_count == 1
        target = build_kvs("lru", clock=ManualClock(50.0))
        target.restore(data.items, data.policy_state)
        assert target.lookup("gone") is Outcome.EXPIRED
        assert len(target) == 0

    def test_wrong_version_refused(self, tmp_path):
        import repro.persistence.snapshot as snapshot_module
        kvs = build_kvs("lru")
        kvs.insert("a", 1, 1)
        path = tmp_path / "v.snap"
        save_snapshot(path, kvs)
        original = snapshot_module.FORMAT_VERSION
        snapshot_module.FORMAT_VERSION = original + 1
        try:
            with pytest.raises(SnapshotCorruptError, match="version"):
                load_snapshot(path)
        finally:
            snapshot_module.FORMAT_VERSION = original

    def test_missing_footer_refused(self, tmp_path):
        kvs = build_kvs("lru")
        kvs.insert("a", 1, 1)
        path = tmp_path / "f.snap"
        save_snapshot(path, kvs)
        # chop the footer record off
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - 30])
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(path)

    def test_generations_and_pruning(self, tmp_path):
        snapshotter = Snapshotter(tmp_path, keep_generations=2)
        kvs = build_kvs("lru")
        kvs.insert("a", 1, 1)
        for expected in (1, 2, 3):
            assert snapshotter.save(kvs) == expected
        assert snapshot_generations(tmp_path) == [2, 3]
        assert snapshotter.latest_generation() == 3

    def test_keep_generations_validated(self, tmp_path):
        with pytest.raises(PersistenceError):
            Snapshotter(tmp_path, keep_generations=0)


# ---------------------------------------------------------------------------
# KVS.restore and the policy state hooks
# ---------------------------------------------------------------------------
class TestPolicyStateRoundTrip:
    @pytest.mark.parametrize("policy", ["camp", "lru", "gds", "gdsf"])
    def test_export_import_preserves_eviction_order(self, policy):
        source = build_kvs(policy, capacity=2_000)
        rng = random.Random(9)
        for i in range(120):
            source.insert(f"k{i}", rng.randrange(20, 80),
                          rng.choice([1, 8, 64]))
            if rng.random() < 0.4:
                source.lookup(f"k{rng.randrange(i + 1)}")
        state = source.policy.export_state()
        clone = make_policy(policy, 2_000)
        clone.import_state(state)
        assert len(clone) == len(source.policy)
        # drain both policies: identical victim sequences
        drained = []
        while len(clone):
            drained.append(clone.pop_victim())
        control = []
        while len(source.policy):
            control.append(source.policy.pop_victim())
        assert drained == control

    def test_import_refuses_wrong_kind(self):
        source = build_kvs("lru")
        source.insert("a", 1, 1)
        state = source.policy.export_state()
        with pytest.raises(ConfigurationError, match="cannot import"):
            make_policy("camp", 1000).import_state(state)

    def test_import_refuses_non_empty_policy(self):
        source = build_kvs("camp")
        source.insert("a", 1, 1)
        state = source.policy.export_state()
        target = make_policy("camp", 10_000)
        target.on_insert("occupied", 5, 1)
        with pytest.raises(ConfigurationError, match="empty"):
            target.import_state(state)

    def test_unsupported_policy_refuses_export(self):
        with pytest.raises(ConfigurationError, match="export"):
            make_policy("fifo", 1000).export_state()

    def test_thread_safe_wrapper_delegates(self):
        inner = make_policy("camp", 1000)
        wrapped = ThreadSafePolicy(inner)
        wrapped.on_insert("a", 10, 5)
        state = wrapped.export_state()
        assert state["policy"] == "camp"   # the inner kind, not the wrapper
        clone = ThreadSafePolicy(make_policy("camp", 1000))
        clone.import_state(state)
        assert "a" in clone

    def test_restore_refuses_non_empty_store(self):
        kvs = build_kvs("lru")
        kvs.insert("resident", 10, 1)
        with pytest.raises(ConfigurationError, match="empty"):
            kvs.restore([], {"policy": "lru", "entries": []})

    def test_restore_evicts_down_into_smaller_capacity(self):
        big = build_kvs("camp", capacity=4_000)
        for i in range(50):
            big.insert(f"k{i}", 60, (i % 3 + 1) * 10)
        state = big.policy.export_state()
        items = list(big.resident_items())
        small = build_kvs("camp", capacity=1_000)
        evicted = small.restore(items, state)
        assert evicted
        assert small.used_bytes <= 1_000
        assert len(small) + len(evicted) == len(items)
        small.check_consistency()


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------
class TestRecovery:
    def _populated_dir(self, tmp_path, n=30):
        kvs = build_kvs("camp")
        manager = PersistenceManager(
            kvs, PersistenceConfig(directory=tmp_path, compact_ratio=None))
        for i in range(n):
            kvs.insert(f"k{i}", 40, 10)
        manager.snapshot()
        # post-snapshot suffix: mutations land in the new generation's log
        kvs.insert("late1", 40, 10)
        kvs.insert("late2", 40, 10)
        kvs.delete("k0")
        manager.close()
        return kvs

    def test_snapshot_plus_log_replay(self, tmp_path):
        original = self._populated_dir(tmp_path)
        target = build_kvs("camp")
        report = RecoveryManager(tmp_path).recover_into(target)
        assert report.recovered
        assert report.log_records_replayed == 3
        assert not report.torn_tail_truncated
        assert {i.key for i in target.resident_items()} == \
            {i.key for i in original.resident_items()}
        target.check_consistency()

    def test_recover_standalone_rebuilds_store(self, tmp_path):
        original = self._populated_dir(tmp_path)
        kvs, report = RecoveryManager(tmp_path).recover()
        assert kvs.capacity == original.capacity
        assert kvs.policy.name == "camp"
        assert len(kvs) == len(original)

    def test_empty_directory_recovers_nothing(self, tmp_path):
        target = build_kvs("camp")
        report = RecoveryManager(tmp_path).recover_into(target)
        assert not report.recovered
        assert len(target) == 0
        with pytest.raises(PersistenceError, match="no loadable snapshot"):
            RecoveryManager(tmp_path).recover()

    def test_unknown_log_operation_refused(self, tmp_path):
        kvs = build_kvs("lru")
        kvs.insert("a", 1, 1)
        Snapshotter(tmp_path).save(kvs)
        with AppendOnlyLog(log_path_for(tmp_path, 1)) as log:
            log.append({"op": "frobnicate", "k": "a"})
        with pytest.raises(SnapshotCorruptError, match="frobnicate"):
            RecoveryManager(tmp_path).recover_into(build_kvs("lru"))


# ---------------------------------------------------------------------------
# the live-store manager
# ---------------------------------------------------------------------------
class TestPersistenceManager:
    def test_logs_inserts_and_explicit_removals_only(self, tmp_path):
        kvs = build_kvs("lru", capacity=200)
        manager = PersistenceManager(
            kvs, PersistenceConfig(directory=tmp_path, compact_ratio=None))
        for i in range(10):
            kvs.insert(f"k{i}", 50, 1)   # forces capacity evictions
        kvs.delete(f"k{9}")
        manager.flush()
        operations, clean, _ = read_log(manager.log.path)
        assert clean
        # capacity evictions are absent: replay re-derives them
        assert [op["op"] for op in operations].count("insert") == 10
        assert [op["op"] for op in operations].count("delete") == 1
        manager.close()

    def test_ratio_triggered_compaction(self, tmp_path):
        kvs = build_kvs("lru", capacity=100_000)
        manager = PersistenceManager(
            kvs, PersistenceConfig(directory=tmp_path, compact_ratio=0.001))
        for i in range(300):
            kvs.insert(f"key-{i:06d}", 30, 1)
        assert manager.stats()["auto_compactions"] >= 1
        assert manager.generation >= 1
        manager.close()

    def test_snapshot_rotates_and_prunes_logs(self, tmp_path):
        kvs = build_kvs("lru")
        manager = PersistenceManager(
            kvs, PersistenceConfig(directory=tmp_path, compact_ratio=None,
                                   keep_generations=1))
        kvs.insert("a", 10, 1)
        first = manager.snapshot()
        kvs.insert("b", 10, 1)
        second = manager.snapshot()
        assert second == first + 1
        assert snapshot_generations(tmp_path) == [second]
        assert not log_path_for(tmp_path, 0).exists()
        assert not log_path_for(tmp_path, first).exists()
        manager.close()

    def test_config_validation(self, tmp_path):
        with pytest.raises(PersistenceError):
            PersistenceConfig(directory=tmp_path, fsync="maybe").validate()
        with pytest.raises(PersistenceError):
            PersistenceConfig(directory=tmp_path, compact_ratio=0).validate()
        with pytest.raises(PersistenceError):
            PersistenceConfig(directory=tmp_path,
                              keep_generations=0).validate()

    def test_snapshot_thread_saves_and_survives_errors(self):
        saves = []
        failures = iter([True, False])

        def flaky_save():
            if next(failures, False):
                raise OSError("disk full")
            saves.append(1)

        errors = []
        thread = SnapshotThread(flaky_save, interval=0.01,
                                on_error=errors.append).start()
        deadline = threading.Event()
        for _ in range(200):
            if saves and errors:
                break
            deadline.wait(0.01)
        thread.stop()
        assert errors and saves
        assert not thread.running
        with pytest.raises(PersistenceError):
            SnapshotThread(lambda: None, interval=0)


# ---------------------------------------------------------------------------
# Store / StoreConfig wiring
# ---------------------------------------------------------------------------
class TestStorePersistence:
    def test_save_requires_configuration(self):
        store = StoreConfig(1000).policy("lru").build()
        with pytest.raises(ConfigurationError, match="no persistence"):
            store.save()

    def test_warm_rebuild_with_payloads(self, tmp_path):
        store = StoreConfig(1000).policy("camp").persistence(tmp_path).build()
        store.get_or_compute("a", lambda key: b"alpha", cost=5)
        store.get_or_compute("b", lambda key: b"beta", cost=5)
        store.save()
        store.persistence.close()
        warm = StoreConfig(1000).policy("camp").persistence(tmp_path).build()
        assert warm.last_recovery.items_restored == 2
        result = warm.get("a")
        assert result.hit and result.value == b"alpha"
        warm.persistence.close()

    def test_log_replayed_key_recomputes_lost_value_once(self, tmp_path):
        store = StoreConfig(1000).policy("camp").persistence(tmp_path).build()
        store.save()
        store.get_or_compute("k", lambda key: b"payload", cost=5)
        store.persistence.close()
        warm = StoreConfig(1000).policy("camp").persistence(tmp_path).build()
        # "k" came back from the log: metadata-resident, payload lost
        assert "k" in warm
        calls = []

        def loader(key):
            calls.append(key)
            return b"recomputed"

        first = warm.get_or_compute("k", loader)
        assert first.outcome is Outcome.HIT
        assert first.value == b"recomputed"
        second = warm.get_or_compute("k", loader)
        assert second.value == b"recomputed"
        assert calls == ["k"]   # re-memoized after the first reload
        warm.persistence.close()

    def test_none_returning_loader_is_not_reinvoked_on_hits(self, tmp_path):
        # negative caching: a loader may legitimately return None; hits
        # on such keys must stay cheap (only warm-restart-lost payloads
        # trigger the recompute-once path)
        store = StoreConfig(1000).policy("camp").persistence(tmp_path).build()
        calls = []

        def negative_loader(key):
            calls.append(key)
            return None

        first = store.get_or_compute("absent", negative_loader, size=10,
                                     cost=1)
        assert first.outcome is Outcome.MISS_INSERTED
        for _ in range(3):
            result = store.get_or_compute("absent", negative_loader)
            assert result.outcome is Outcome.HIT and result.value is None
        assert calls == ["absent"]
        store.persistence.close()

    def test_unsupported_policy_fails_at_build_not_first_save(self, tmp_path):
        with pytest.raises(ConfigurationError, match="export"):
            (StoreConfig(1000).policy("fifo")
             .persistence(tmp_path).build())

    def test_unwritable_directory_raises_persistence_error(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not directory")
        with pytest.raises(PersistenceError, match="cannot"):
            Snapshotter(blocker / "state")
        with pytest.raises(PersistenceError, match="cannot"):
            AppendOnlyLog(blocker / "state" / "x.log")

    def test_cold_build_when_recover_disabled(self, tmp_path):
        store = StoreConfig(1000).policy("lru").persistence(tmp_path).build()
        store.put("a", 10, 1)
        store.save()
        store.persistence.close()
        cold = (StoreConfig(1000).policy("lru")
                .persistence(tmp_path, recover=False).build())
        assert cold.last_recovery is None
        assert "a" not in cold
        cold.persistence.close()

    def test_touch_is_durable(self, tmp_path):
        clock = ManualClock(0.0)
        store = (StoreConfig(1000).policy("lru").clock(clock)
                 .persistence(tmp_path, compact_ratio=None).build())
        store.save()
        store.put("k", 10, 1, ttl=5.0)
        store.touch("k", ttl=500.0)   # the durable TTL extension
        store.persistence.close()
        clock.now = 60.0   # past the original 5s, inside the extended TTL
        warm = (StoreConfig(1000).policy("lru").clock(clock)
                .persistence(tmp_path).build())
        assert warm.last_recovery.log_records_replayed == 2
        assert warm.get("k").hit, "touched TTL was lost across the restart"
        warm.persistence.close()

    def test_mutations_after_generation_fallback_are_not_lost(self, tmp_path):
        store = (StoreConfig(10_000).policy("camp")
                 .persistence(tmp_path, keep_generations=2).build())
        store.put("a", 40, 10)
        store.save()
        store.put("b", 40, 10)
        newest = store.save()
        store.persistence.close()
        # bit-rot the newest snapshot: the next build falls back to gen 1
        path = Snapshotter(tmp_path).path_for(newest)
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0x10
        path.write_bytes(bytes(raw))
        warm = (StoreConfig(10_000).policy("camp")
                .persistence(tmp_path, keep_generations=2).build())
        assert warm.last_recovery.generation == newest - 1
        # the manager must not append to the corrupt generation's log:
        # it opens a fresh generation reflecting the live (fallen-back)
        # state, so this session's mutations survive the next restart
        assert warm.persistence.generation > newest
        warm.put("c", 40, 10)
        warm.persistence.close()
        again = (StoreConfig(10_000).policy("camp")
                 .persistence(tmp_path, keep_generations=2).build())
        assert "a" in again and "c" in again
        again.persistence.close()

    def test_save_and_compaction_safe_under_plain_lock(self, tmp_path):
        # a non-reentrant Lock: save() and ratio-triggered compaction run
        # the payload source while the store lock is held — any re-acquire
        # deadlocks, so this test just has to terminate
        store = (StoreConfig(100_000).policy("lru")
                 .lock(threading.Lock())
                 .persistence(tmp_path, compact_ratio=0.001).build())
        for i in range(200):   # plenty to trip auto-compaction
            store.put(f"key-{i:04d}", 30, 1, value=b"v" * 8)
        store.save()
        assert store.persistence.stats()["auto_compactions"] >= 1
        store.persistence.close()

    def test_restored_items_not_relogged(self, tmp_path):
        store = StoreConfig(1000).policy("lru").persistence(tmp_path).build()
        store.put("a", 10, 1)
        generation = store.save()
        store.persistence.close()
        warm = StoreConfig(1000).policy("lru").persistence(tmp_path).build()
        warm.persistence.flush()
        operations, _, _ = read_log(log_path_for(tmp_path, generation))
        assert operations == []   # recovery happened before logging began
        warm.persistence.close()


# ---------------------------------------------------------------------------
# the twemcache engine / server / tenancy integrations
# ---------------------------------------------------------------------------
class TestEnginePersistence:
    def _engine(self, tmp_path, **kwargs):
        from repro.twemcache import TwemcacheEngine
        return TwemcacheEngine(1 << 20, slab_size=1 << 16,
                               snapshot_path=str(tmp_path / "engine.snap"),
                               **kwargs)

    def test_save_load_round_trip(self, tmp_path):
        from repro.twemcache import TwemcacheEngine
        engine = self._engine(tmp_path)
        engine.set("a", b"alpha", flags=7, cost=10)
        engine.set("b", b"beta" * 100, cost=20)
        assert engine.save() == 2
        warm = TwemcacheEngine(1 << 20, slab_size=1 << 16)
        assert warm.load(str(tmp_path / "engine.snap")) == 2
        item = warm.get("a")
        assert item.value == b"alpha" and item.flags == 7
        assert warm.get("b").value == b"beta" * 100
        warm.check_consistency()

    def test_save_without_path_refuses(self):
        from repro.twemcache import TwemcacheEngine
        engine = TwemcacheEngine(1 << 20, slab_size=1 << 16)
        with pytest.raises(PersistenceError, match="no snapshot path"):
            engine.save()

    def test_expired_items_skipped_on_both_ends(self, tmp_path):
        from repro.twemcache import TwemcacheEngine
        clock = ManualClock(10.0)
        engine = TwemcacheEngine(1 << 20, slab_size=1 << 16, clock=clock,
                                 snapshot_path=str(tmp_path / "e.snap"))
        engine.set("keeper", b"x", expire_after=100.0)
        engine.set("lapsing", b"y", expire_after=5.0)
        clock.now = 16.0   # "lapsing" is dead at save time
        assert engine.save() == 1
        warm_clock = ManualClock(500.0)
        warm = TwemcacheEngine(1 << 20, slab_size=1 << 16, clock=warm_clock)
        assert warm.load(str(tmp_path / "e.snap")) == 1
        assert warm.get("keeper") is not None   # remaining TTL rebased
        warm_clock.now = 500.0 + 95.0
        assert warm.get("keeper") is None

    def test_snapshot_daemon_lifecycle(self, tmp_path):
        engine = self._engine(tmp_path)
        engine.set("a", b"v")
        daemon = engine.start_snapshot_daemon(interval=30.0)
        with pytest.raises(PersistenceError, match="already running"):
            engine.start_snapshot_daemon(interval=30.0)
        engine.stop_snapshot_daemon(final_save=True)
        assert not daemon.running
        assert (tmp_path / "engine.snap").exists()
        assert engine.stats()["snapshots_taken"] >= 1

    def test_server_save_verb(self, tmp_path):
        from repro.twemcache import SocketClient, TwemcacheServer
        engine = self._engine(tmp_path)
        with TwemcacheServer(engine) as server:
            with SocketClient(server.address) as client:
                assert client.set("k", b"value")
                assert client.save() is True
        assert (tmp_path / "engine.snap").exists()

    def test_server_save_without_path_reports_error(self):
        from repro.twemcache import (SocketClient, TwemcacheEngine,
                                     TwemcacheServer)
        engine = TwemcacheEngine(1 << 20, slab_size=1 << 16)
        with TwemcacheServer(engine) as server:
            with SocketClient(server.address) as client:
                assert client.save() is False


class TestTenancyPersistence:
    def _specs(self):
        from repro.tenancy import TenantSpec
        return [TenantSpec("ads", floor=0.1, ceiling=0.9),
                TenantSpec("scan", floor=0.1, ceiling=0.9)]

    def _manager(self, rebalance_every=None):
        from repro.tenancy import TenantManager
        return TenantManager(50_000, self._specs(),
                             rebalance_every=rebalance_every)

    def _drive(self, manager, requests=4_000, seed=3):
        rng = random.Random(seed)
        for _ in range(requests):
            tenant = "ads" if rng.random() < 0.7 else "scan"
            manager.access(f"{tenant}:k{rng.randrange(150)}",
                           rng.randrange(30, 120), rng.choice([1, 50]))

    def test_save_all_restore_all_round_trip(self, tmp_path):
        manager = self._manager(rebalance_every=500)
        self._drive(manager)
        # force a non-default split so allocation adoption is observable
        manager.tenant("scan").kvs.resize(
            manager.tenant("scan").kvs.capacity - 5_000)
        manager.tenant("ads").kvs.resize(
            manager.tenant("ads").kvs.capacity + 5_000)
        manager.check_consistency()
        generations = manager.save_all(tmp_path)
        assert generations == {"ads": 1, "scan": 1}
        assert (tmp_path / "ads" / "snapshot-000001.snap").exists()
        warm = self._manager(rebalance_every=500)
        reports = warm.restore_all(tmp_path)
        assert set(reports) == {"ads", "scan"}
        warm.check_consistency()
        # the arbiter's learned allocation came back too
        assert warm.allocations() == manager.allocations()
        for name in ("ads", "scan"):
            assert sorted(i.key for i in
                          warm.tenant(name).kvs.resident_items()) == \
                sorted(i.key for i in
                       manager.tenant(name).kvs.resident_items())

    def test_missing_tenant_directory_stays_cold(self, tmp_path):
        manager = self._manager()
        self._drive(manager)
        manager.save_all(tmp_path)
        import shutil
        shutil.rmtree(tmp_path / "scan")
        warm = self._manager()
        reports = warm.restore_all(tmp_path)
        assert set(reports) == {"ads"}
        assert len(warm.tenant("scan").kvs) == 0
        assert len(warm.tenant("ads").kvs) > 0

    def test_changed_bounds_fall_back_to_current_split(self, tmp_path):
        from repro.tenancy import TenantManager, TenantSpec
        manager = self._manager(rebalance_every=200)
        self._drive(manager)
        manager.save_all(tmp_path)
        # the new config pins "ads" into a band the saved split violates
        squeezed = TenantManager(50_000, [
            TenantSpec("ads", share=0.2, floor=0.15, ceiling=0.25),
            TenantSpec("scan", share=0.8, floor=0.1, ceiling=0.9)])
        reports = squeezed.restore_all(tmp_path)
        assert set(reports) == {"ads", "scan"}
        squeezed.check_consistency()   # bounds still hold after restore


# ---------------------------------------------------------------------------
# restart equivalence: the subsystem's headline property
# ---------------------------------------------------------------------------
class TestRestartEquivalence:
    """snapshot → restore → continue ≡ never restarting, exactly."""

    def _trace(self, policy_seed):
        rng = random.Random(policy_seed)
        if rng.random() < 0.5:
            return three_cost_trace(n_keys=400, n_requests=12_000,
                                    seed=policy_seed)
        return variable_size_constant_cost_trace(
            n_keys=400, n_requests=12_000, seed=policy_seed)

    @pytest.mark.parametrize("policy,seed", [
        ("camp", 11), ("camp", 23), ("lru", 11), ("gdsf", 11),
    ])
    def test_decision_sequences_identical(self, tmp_path, policy, seed):
        trace = self._trace(seed)
        assert len(trace) >= 10_000
        capacity = trace.capacity_for_ratio(0.25)
        split = len(trace) // 2
        control_recorder, restored_recorder = (EvictionRecorder(),
                                               EvictionRecorder())

        control = (StoreConfig(capacity).policy(policy)
                   .listener(control_recorder).build())
        durable = (StoreConfig(capacity).policy(policy)
                   .persistence(tmp_path, recover=False).build())
        for record in trace.records[:split]:
            control.access(record.key, record.size, record.cost)
            durable.access(record.key, record.size, record.cost)
        durable.save()
        durable.persistence.close()

        restored = (StoreConfig(capacity).policy(policy)
                    .listener(restored_recorder).persistence(tmp_path)
                    .build())
        assert len(restored) == len(control)
        control_recorder.armed = restored_recorder.armed = True
        control_outcomes, restored_outcomes = [], []
        for record in trace.records[split:]:
            control_outcomes.append(control.access(
                record.key, record.size, record.cost).outcome)
            restored_outcomes.append(restored.access(
                record.key, record.size, record.cost).outcome)
        restored.persistence.close()

        assert restored_outcomes == control_outcomes
        assert restored_recorder.events == control_recorder.events
        assert sorted(i.key for i in restored.kvs.resident_items()) == \
            sorted(i.key for i in control.kvs.resident_items())
        restored.check_consistency()

    @settings(max_examples=12, deadline=None)
    @given(policy=st.sampled_from(["camp", "lru", "gdsf"]),
           seed=st.integers(0, 10_000),
           restart_at=st.floats(0.2, 0.8))
    def test_equivalence_holds_for_arbitrary_restart_points(
            self, tmp_path_factory, policy, seed, restart_at):
        """Hypothesis sweep of the same property on smaller traces:
        any policy, any seed, any restart point."""
        tmp_path = tmp_path_factory.mktemp("equiv")
        trace = three_cost_trace(n_keys=120, n_requests=2_500, seed=seed)
        capacity = trace.capacity_for_ratio(0.25)
        split = int(len(trace) * restart_at)

        control = StoreConfig(capacity).policy(policy).build()
        durable = (StoreConfig(capacity).policy(policy)
                   .persistence(tmp_path, recover=False).build())
        for record in trace.records[:split]:
            control.access(record.key, record.size, record.cost)
            durable.access(record.key, record.size, record.cost)
        durable.save()
        durable.persistence.close()
        restored = (StoreConfig(capacity).policy(policy)
                    .persistence(tmp_path).build())
        for record in trace.records[split:]:
            expected = control.access(record.key, record.size,
                                      record.cost).outcome
            actual = restored.access(record.key, record.size,
                                     record.cost).outcome
            assert actual is expected
        restored.persistence.close()
        assert sorted(i.key for i in restored.kvs.resident_items()) == \
            sorted(i.key for i in control.kvs.resident_items())

    def test_camp_internal_clocks_round_trip(self, tmp_path):
        """The global L clock and per-item priorities, not just membership."""
        trace = three_cost_trace(n_keys=200, n_requests=6_000, seed=5)
        capacity = trace.capacity_for_ratio(0.25)
        store = (StoreConfig(capacity).policy("camp")
                 .persistence(tmp_path, recover=False).build())
        for record in trace:
            store.access(record.key, record.size, record.cost)
        state = store.kvs.policy.export_state()
        store.save()
        store.persistence.close()
        warm = (StoreConfig(capacity).policy("camp")
                .persistence(tmp_path).build())
        restored_state = warm.kvs.policy.export_state()
        assert restored_state["L"] == state["L"]
        assert restored_state["seq"] == state["seq"]
        assert restored_state["multiplier"] == state["multiplier"]
        assert restored_state["queues"] == state["queues"]
        warm.persistence.close()
