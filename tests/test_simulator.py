"""Simulator and sweep-runner tests, including hand-computed expectations."""

import pytest

from repro.analysis import Table
from repro.cache import KVS
from repro.core import CampPolicy, LruPolicy, SecondHitAdmission
from repro.errors import ConfigurationError
from repro.sim import (
    run_policy_on_trace,
    simulate,
    sweep_cache_sizes,
    sweep_parameter,
)
from repro.workloads import Trace, TraceRecord, three_cost_trace


def tiny_trace():
    # a, b fit together; c forces an eviction; re-request pattern is known
    return Trace([
        TraceRecord("a", 10, 1),   # cold miss
        TraceRecord("b", 10, 1),   # cold miss
        TraceRecord("a", 10, 1),   # hit
        TraceRecord("c", 10, 1),   # cold miss, evicts LRU victim (b)
        TraceRecord("b", 10, 1),   # MISS (counted)
        TraceRecord("a", 10, 1),   # hit or miss depending on evictions
    ])


class TestSimulateHandComputed:
    def test_lru_exact_metrics(self):
        kvs = KVS(20, LruPolicy())
        result = simulate(kvs, tiny_trace())
        # cold: a, b, c (3 requests).  Counted: a-hit, b-miss, a-...
        # After c inserted (evicting b): b requested -> miss, insert b evicts
        # LRU which is a (a was touched at req 3, c at 4 -> victim is a).
        # Final request a -> miss.
        assert result.metrics.cold_requests == 3
        assert result.metrics.hits == 1
        assert result.metrics.misses == 2
        assert result.metrics.miss_rate == pytest.approx(2 / 3)

    def test_infinite_cache_no_misses_after_cold(self):
        trace = three_cost_trace(n_keys=50, n_requests=1000, seed=0)
        kvs = KVS(trace.unique_bytes, LruPolicy())
        result = simulate(kvs, trace)
        assert result.metrics.misses == 0
        assert result.metrics.miss_rate == 0.0
        assert result.evictions == 0

    def test_tiny_cache_mostly_misses(self):
        trace = three_cost_trace(n_keys=500, n_requests=5000, seed=1)
        result = run_policy_on_trace(LruPolicy(), trace,
                                     cache_size_ratio=0.01)
        assert result.miss_rate > 0.5

    def test_occupancy_sampling(self):
        trace = Trace([TraceRecord(f"tf1:k{i}", 10, 1) for i in range(10)])
        result = run_policy_on_trace(LruPolicy(), trace,
                                     cache_size_ratio=0.5,
                                     sample_every=2, track_occupancy=True)
        assert result.occupancy is not None
        assert len(result.occupancy.samples) == 5

    def test_admission_controller_wired_through(self):
        trace = Trace([TraceRecord("a", 10, 1)] * 5)
        result = run_policy_on_trace(
            LruPolicy(), trace, cache_size_ratio=1.0,
            admission=SecondHitAdmission(window=100))
        # first request cold+rejected, second request miss+admitted, rest hits
        assert result.rejected_admission == 1
        assert result.metrics.hits == 3

    def test_invalid_parameters(self):
        trace = tiny_trace()
        with pytest.raises(ConfigurationError):
            run_policy_on_trace(LruPolicy(), trace, cache_size_ratio=0)
        kvs = KVS(100, LruPolicy())
        with pytest.raises(ConfigurationError):
            simulate(kvs, trace, sample_every=0)


class TestCampBeatsLruOnCost:
    def test_cost_miss_ratio_ordering(self):
        """The headline result (Figure 5c) in miniature: CAMP's cost-miss
        ratio beats LRU's on a skewed three-cost trace at a small cache."""
        trace = three_cost_trace(n_keys=2000, n_requests=30_000, seed=7)
        camp = run_policy_on_trace(CampPolicy(precision=5), trace, 0.1)
        lru = run_policy_on_trace(LruPolicy(), trace, 0.1)
        assert camp.cost_miss_ratio < lru.cost_miss_ratio


class TestSweeps:
    def test_sweep_cache_sizes_shape(self):
        trace = three_cost_trace(n_keys=200, n_requests=3000, seed=2)
        result = sweep_cache_sizes(
            trace,
            {"lru": lambda c: LruPolicy(),
             "camp": lambda c: CampPolicy()},
            cache_size_ratios=[0.1, 0.5])
        assert result.policies() == ["lru", "camp"]
        assert result.xs() == [0.1, 0.5]
        assert len(result.points) == 4
        series = result.series("camp", "cost_miss_ratio")
        assert len(series) == 2

    def test_bigger_cache_never_worse_for_lru(self):
        trace = three_cost_trace(n_keys=500, n_requests=10_000, seed=3)
        result = sweep_cache_sizes(
            trace, {"lru": lambda c: LruPolicy()},
            cache_size_ratios=[0.05, 0.25, 0.75])
        rates = [rate for _, rate in result.series("lru", "miss_rate")]
        assert rates[0] >= rates[1] >= rates[2]

    def test_sweep_parameter_precision(self):
        trace = three_cost_trace(n_keys=200, n_requests=3000, seed=4)
        result = sweep_parameter(
            trace,
            build=lambda p, capacity: CampPolicy(precision=p),
            values=[1, 3, None],
            cache_size_ratio=0.25,
            extra_stats=("queue_count",))
        assert [x for x, _ in result.series("camp", "queue_count")] == \
            [1, 3, None]
        for _, count in result.series("camp", "queue_count"):
            assert count >= 1

    def test_lookup_and_missing_lookup(self):
        trace = three_cost_trace(n_keys=50, n_requests=500, seed=5)
        result = sweep_cache_sizes(trace, {"lru": lambda c: LruPolicy()},
                                   cache_size_ratios=[0.5])
        point = result.lookup("lru", 0.5)
        assert point.policy == "lru"
        with pytest.raises(KeyError):
            result.lookup("lru", 0.9)

    def test_empty_factories_raise(self):
        trace = tiny_trace()
        with pytest.raises(ConfigurationError):
            sweep_cache_sizes(trace, {}, cache_size_ratios=[0.5])


class TestTableRendering:
    def test_ascii_and_csv(self):
        table = Table("demo", ["x", "value"])
        table.add_row(0.1, 0.5)
        table.add_row(0.2, None)
        text = table.to_ascii()
        assert "demo" in text and "0.1" in text and "-" in text
        csv = table.to_csv()
        assert csv.splitlines()[0] == "x,value"

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_access(self):
        table = Table("demo", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]
