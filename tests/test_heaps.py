"""Unit and property tests shared by all three heap backends.

Every heap (8-ary implicit, pairing, Fibonacci) must behave identically to
a sorted-list oracle under arbitrary interleavings of push / pop / update /
remove — eviction policies are built directly on that contract.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.structures import make_heap, HEAP_KINDS

BACKENDS = ["dary", "binary", "pairing", "fibonacci"]


def build(kind):
    return make_heap(kind)


@pytest.fixture(params=BACKENDS)
def heap(request):
    return build(request.param)


def new_entry(heap, priority, item=None):
    return type(heap).entry_type(priority, item)


class TestBasicOperations:
    def test_empty(self, heap):
        assert len(heap) == 0
        assert not heap
        with pytest.raises(ReproError):
            heap.peek()
        with pytest.raises(ReproError):
            heap.pop()

    def test_push_peek_pop_single(self, heap):
        e = new_entry(heap, 5, "a")
        heap.push(e)
        assert len(heap) == 1
        assert heap.peek() is e
        assert heap.pop() is e
        assert len(heap) == 0

    def test_pop_returns_ascending(self, heap):
        vals = [7, 3, 9, 1, 5, 8, 2, 6, 4, 0]
        for v in vals:
            heap.push(new_entry(heap, v))
        out = [heap.pop().priority for _ in vals]
        assert out == sorted(vals)

    def test_duplicate_priorities_all_returned(self, heap):
        for v in [3, 3, 3, 1, 1]:
            heap.push(new_entry(heap, v))
        out = [heap.pop().priority for _ in range(5)]
        assert out == [1, 1, 3, 3, 3]

    def test_tuple_priorities(self, heap):
        heap.push(new_entry(heap, (2, 1)))
        heap.push(new_entry(heap, (1, 9)))
        heap.push(new_entry(heap, (2, 0)))
        assert heap.pop().priority == (1, 9)
        assert heap.pop().priority == (2, 0)

    def test_push_linked_entry_raises(self, heap):
        e = new_entry(heap, 1)
        heap.push(e)
        with pytest.raises(ReproError):
            heap.push(e)

    def test_contains(self, heap):
        e = new_entry(heap, 1)
        assert e not in heap
        heap.push(e)
        assert e in heap
        heap.pop()
        assert e not in heap

    def test_entry_reusable_after_pop(self, heap):
        e = new_entry(heap, 1)
        heap.push(e)
        heap.pop()
        heap.push(e)
        assert heap.peek() is e


class TestPeekSecond:
    def test_none_when_fewer_than_two(self, heap):
        assert heap.peek_second() is None
        heap.push(new_entry(heap, 1))
        assert heap.peek_second() is None

    def test_returns_second_smallest(self, heap):
        entries = [new_entry(heap, v) for v in [5, 2, 8, 1, 9]]
        for e in entries:
            heap.push(e)
        assert heap.peek_second().priority == 2

    def test_with_duplicate_minimum(self, heap):
        heap.push(new_entry(heap, 1, "a"))
        heap.push(new_entry(heap, 1, "b"))
        heap.push(new_entry(heap, 3, "c"))
        assert heap.peek_second().priority == 1

    def test_random_agreement_with_oracle(self, heap):
        rng = random.Random(42)
        entries = []
        for _ in range(200):
            e = new_entry(heap, rng.randrange(1000))
            heap.push(e)
            entries.append(e)
            if len(entries) >= 2:
                expected = sorted(x.priority for x in entries)[1]
                assert heap.peek_second().priority == expected


class TestUpdate:
    def test_decrease_key_moves_to_front(self, heap):
        e_hi = new_entry(heap, 100)
        heap.push(new_entry(heap, 10))
        heap.push(e_hi)
        heap.update(e_hi, 1)
        assert heap.peek() is e_hi

    def test_increase_key_moves_back(self, heap):
        e_lo = new_entry(heap, 1)
        heap.push(e_lo)
        heap.push(new_entry(heap, 10))
        heap.update(e_lo, 100)
        assert heap.peek().priority == 10
        assert heap.pop().priority == 10
        assert heap.pop() is e_lo

    def test_update_to_same_priority(self, heap):
        e = new_entry(heap, 5)
        heap.push(e)
        heap.update(e, 5)
        assert heap.peek() is e

    def test_update_detached_raises(self, heap):
        e = new_entry(heap, 5)
        with pytest.raises(ReproError):
            heap.update(e, 1)


class TestRemove:
    def test_remove_root(self, heap):
        e = new_entry(heap, 1)
        heap.push(e)
        heap.push(new_entry(heap, 2))
        heap.remove(e)
        assert len(heap) == 1
        assert heap.peek().priority == 2

    def test_remove_inner(self, heap):
        entries = [new_entry(heap, v) for v in range(10)]
        for e in entries:
            heap.push(e)
        heap.remove(entries[5])
        out = [heap.pop().priority for _ in range(9)]
        assert out == [0, 1, 2, 3, 4, 6, 7, 8, 9]

    def test_remove_detached_raises(self, heap):
        e = new_entry(heap, 5)
        with pytest.raises(ReproError):
            heap.remove(e)

    def test_remove_all_then_reuse(self, heap):
        entries = [new_entry(heap, v) for v in range(5)]
        for e in entries:
            heap.push(e)
        for e in entries:
            heap.remove(e)
        assert len(heap) == 0
        heap.push(entries[3])
        assert heap.peek() is entries[3]


class TestVisitCounting:
    def test_visits_accumulate_and_reset(self, heap):
        for v in range(100):
            heap.push(new_entry(heap, v))
        assert heap.node_visits > 0
        heap.reset_visits()
        assert heap.node_visits == 0
        heap.pop()
        assert heap.node_visits > 0


class TestArityConfiguration:
    def test_binary_is_arity_two(self):
        h = make_heap("binary")
        assert h.arity == 2

    def test_dary_default_is_eight(self):
        h = make_heap("dary")
        assert h.arity == 8

    def test_invalid_kind_raises(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            make_heap("splay")

    def test_invalid_arity_raises(self):
        with pytest.raises(ReproError):
            make_heap("dary", arity=1)

    def test_kind_list_is_accurate(self):
        for kind in HEAP_KINDS:
            assert make_heap(kind) is not None


@st.composite
def operation_sequences(draw):
    """Sequences of (op, value) over a bounded priority universe."""
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["push", "pop", "update", "remove"]),
                  st.integers(0, 50)),
        min_size=1, max_size=120))
    return ops


@pytest.mark.parametrize("kind", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(ops=operation_sequences())
def test_heap_matches_sorted_oracle(kind, ops):
    """Drive the heap and a list oracle with the same operation stream."""
    heap = build(kind)
    live = []  # entries currently in the heap
    rng = random.Random(1234)
    for op, val in ops:
        if op == "push":
            e = new_entry(heap, val)
            heap.push(e)
            live.append(e)
        elif op == "pop" and live:
            e = heap.pop()
            assert e.priority == min(x.priority for x in live)
            live.remove(e)
        elif op == "update" and live:
            e = rng.choice(live)
            heap.update(e, val)
        elif op == "remove" and live:
            e = rng.choice(live)
            heap.remove(e)
            live.remove(e)
        assert len(heap) == len(live)
        if live:
            assert heap.peek().priority == min(x.priority for x in live)
        if hasattr(heap, "check_invariants"):
            heap.check_invariants()
    # drain: must come out sorted
    drained = [heap.pop().priority for _ in range(len(heap))]
    assert drained == sorted(drained)


@pytest.mark.parametrize("kind", BACKENDS)
def test_large_random_stress(kind):
    """10k mixed operations against the oracle with a fixed seed."""
    heap = build(kind)
    rng = random.Random(99)
    live = []
    for step in range(10_000):
        r = rng.random()
        if r < 0.5 or not live:
            e = new_entry(heap, (rng.randrange(10_000), step))
            heap.push(e)
            live.append(e)
        elif r < 0.75:
            e = heap.pop()
            assert e.priority == min(x.priority for x in live)
            live.remove(e)
        elif r < 0.9:
            e = rng.choice(live)
            heap.update(e, (rng.randrange(10_000), step))
        else:
            e = rng.choice(live)
            heap.remove(e)
            live.remove(e)
    drained = [heap.pop().priority for _ in range(len(heap))]
    assert drained == sorted(drained)
