"""Metrics tests: cold-request exclusion, ratios, occupancy tracking."""

import pytest

from repro.cache import KVS, OccupancyTracker, SimulationMetrics, default_namespace
from repro.core import LruPolicy
from repro.core.policy import CacheItem
from repro.errors import ConfigurationError


class TestSimulationMetrics:
    def test_cold_requests_not_counted(self):
        metrics = SimulationMetrics()
        metrics.record("a", 10, 100, hit=False)   # cold
        assert metrics.cold_requests == 1
        assert metrics.misses == 0
        assert metrics.miss_rate == 0.0
        assert metrics.cost_miss_ratio == 0.0

    def test_miss_rate(self):
        metrics = SimulationMetrics()
        metrics.record("a", 10, 100, hit=False)   # cold
        metrics.record("a", 10, 100, hit=True)
        metrics.record("a", 10, 100, hit=False)
        metrics.record("a", 10, 100, hit=True)
        assert metrics.miss_rate == pytest.approx(1 / 3)
        assert metrics.hit_rate == pytest.approx(2 / 3)

    def test_cost_miss_ratio_weights_by_cost(self):
        metrics = SimulationMetrics()
        for key, cost in (("a", 1), ("b", 10_000)):
            metrics.record(key, 10, cost, hit=False)  # cold
        metrics.record("a", 10, 1, hit=False)      # cheap miss
        metrics.record("b", 10, 10_000, hit=True)  # expensive hit
        assert metrics.miss_rate == pytest.approx(0.5)
        assert metrics.cost_miss_ratio == pytest.approx(1 / 10_001)

    def test_byte_miss_ratio(self):
        metrics = SimulationMetrics()
        metrics.record("a", 100, 1, hit=False)
        metrics.record("a", 100, 1, hit=False)
        metrics.record("b", 300, 1, hit=False)
        metrics.record("b", 300, 1, hit=True)
        assert metrics.byte_miss_ratio == pytest.approx(100 / 400)

    def test_empty_metrics_safe(self):
        metrics = SimulationMetrics()
        assert metrics.miss_rate == 0.0
        assert metrics.cost_miss_ratio == 0.0
        assert metrics.hit_rate == 0.0

    def test_as_dict(self):
        metrics = SimulationMetrics()
        metrics.record("a", 1, 1, hit=False)
        data = metrics.as_dict()
        assert data["requests"] == 1
        assert data["cold_requests"] == 1


class TestDefaultNamespace:
    def test_prefixed_key(self):
        assert default_namespace("tf1:VP:42") == "tf1"

    def test_unprefixed_key(self):
        assert default_namespace("plainkey") == ""


class TestOccupancyTracker:
    def test_tracks_bytes_per_namespace(self):
        tracker = OccupancyTracker(capacity=100)
        tracker.on_insert(CacheItem("tf1:a", 30, 1))
        tracker.on_insert(CacheItem("tf2:b", 20, 1))
        assert tracker.fraction("tf1") == pytest.approx(0.3)
        assert tracker.fraction("tf2") == pytest.approx(0.2)
        tracker.on_evict(CacheItem("tf1:a", 30, 1), explicit=False)
        assert tracker.fraction("tf1") == 0.0

    def test_sampling_series(self):
        tracker = OccupancyTracker(capacity=100)
        tracker.on_insert(CacheItem("tf1:a", 50, 1))
        tracker.sample(10)
        tracker.on_evict(CacheItem("tf1:a", 50, 1), explicit=False)
        tracker.sample(20)
        series = tracker.series("tf1")
        assert series == [(10, 0.5), (20, 0.0)]

    def test_integration_with_kvs(self):
        kvs = KVS(50, LruPolicy())
        tracker = OccupancyTracker(capacity=50)
        kvs.add_listener(tracker)
        kvs.put("tf1:a", 20, 1)
        kvs.put("tf1:b", 20, 1)
        kvs.put("tf2:c", 20, 1)   # evicts tf1:a
        assert tracker.bytes_of("tf1") == 20
        assert tracker.bytes_of("tf2") == 20

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            OccupancyTracker(capacity=0)

    def test_namespaces_snapshot(self):
        tracker = OccupancyTracker(capacity=100)
        tracker.on_insert(CacheItem("tf1:a", 10, 1))
        assert tracker.namespaces() == {"tf1": 10}
