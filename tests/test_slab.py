"""Slab allocator tests: geometry, allocation path, calcification."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.twemcache import SlabAllocator


class TestClassGeometry:
    def test_class1_matches_paper(self):
        """Class 1: 120-byte chunks, 8737 per 1 MiB slab (paper section 5)."""
        allocator = SlabAllocator(4 << 20)
        info = allocator.class_info(1)
        assert info.chunk_size == 120
        assert info.chunks_per_slab == 8737

    def test_class2_matches_paper(self):
        """Class 2: 152-byte chunks, 6898 per slab (paper's worked example)."""
        allocator = SlabAllocator(4 << 20)
        info = allocator.class_info(2)
        assert info.chunk_size == 152
        assert info.chunks_per_slab == 6898

    def test_growth_factor_about_1_25(self):
        allocator = SlabAllocator(4 << 20)
        classes = allocator.classes
        for smaller, larger in zip(classes, classes[1:-1]):
            ratio = larger.chunk_size / smaller.chunk_size
            assert 1.0 < ratio < 1.4

    def test_largest_class_is_whole_slab(self):
        allocator = SlabAllocator(4 << 20)
        last = allocator.classes[-1]
        assert last.chunk_size == allocator.slab_size - 32  # minus header
        assert last.chunks_per_slab == 1

    def test_class_for_picks_smallest_fit(self):
        allocator = SlabAllocator(4 << 20)
        assert allocator.class_for(1) == 1
        assert allocator.class_for(120) == 1
        assert allocator.class_for(121) == 2
        assert allocator.class_for(allocator.classes[-1].chunk_size) == \
            allocator.classes[-1].class_id

    def test_oversized_request_unservable(self):
        allocator = SlabAllocator(4 << 20)
        assert allocator.class_for(allocator.classes[-1].chunk_size + 1) is None

    def test_chunk_sizes_aligned(self):
        allocator = SlabAllocator(4 << 20)
        for info in allocator.classes[:-1]:
            assert info.chunk_size % 8 == 0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SlabAllocator(100, slab_size=1 << 20)   # memory < one slab
        with pytest.raises(ConfigurationError):
            SlabAllocator(4 << 20, growth_factor=1.0)
        with pytest.raises(ConfigurationError):
            SlabAllocator(4 << 20, min_chunk=0)


class TestAllocation:
    def test_allocate_and_free_round_trip(self):
        allocator = SlabAllocator(2 << 20, slab_size=1 << 20)
        chunk = allocator.try_allocate(1, "k1")
        assert chunk is not None
        assert chunk.slab.chunks[chunk.index] == "k1"
        allocator.free(chunk)
        assert chunk.slab.chunks[chunk.index] is None
        allocator.check_invariants()

    def test_free_chunk_reused_before_new_slab(self):
        allocator = SlabAllocator(2 << 20, slab_size=1 << 20)
        chunk = allocator.try_allocate(1, "k1")
        allocator.free(chunk)
        again = allocator.try_allocate(1, "k2")
        assert again.slab is chunk.slab
        assert allocator.allocated_slabs == 1

    def test_new_slab_on_demand(self):
        allocator = SlabAllocator(4 << 20, slab_size=1 << 20)
        allocator.try_allocate(1, "a")
        assert allocator.allocated_slabs == 1
        # a different class needs its own slab
        big_class = allocator.class_for(100_000)
        allocator.try_allocate(big_class, "b")
        assert allocator.allocated_slabs == 2

    def test_memory_exhaustion_returns_none(self):
        allocator = SlabAllocator(1 << 20, slab_size=1 << 20)
        last_class = allocator.classes[-1].class_id
        assert allocator.try_allocate(last_class, "a") is not None
        assert allocator.try_allocate(last_class, "b") is None

    def test_double_free_raises(self):
        allocator = SlabAllocator(2 << 20, slab_size=1 << 20)
        chunk = allocator.try_allocate(1, "k")
        allocator.free(chunk)
        with pytest.raises(AllocationError):
            allocator.free(chunk)

    def test_fill_whole_slab(self):
        allocator = SlabAllocator(1 << 20, slab_size=1 << 20,
                                  min_chunk=1 << 18)
        per_slab = allocator.class_info(1).chunks_per_slab
        chunks = [allocator.try_allocate(1, f"k{i}") for i in range(per_slab)]
        assert all(chunk is not None for chunk in chunks)
        assert allocator.try_allocate(1, "overflow") is None
        allocator.check_invariants()


class TestSlabReassignment:
    def test_reassign_evicts_occupants(self):
        allocator = SlabAllocator(1 << 20, slab_size=1 << 20,
                                  min_chunk=1 << 18)
        per_slab = allocator.class_info(1).chunks_per_slab
        for i in range(per_slab):
            allocator.try_allocate(1, f"k{i}")
        # class 2 wants memory; steal class 1's slab
        donor = allocator.donor_slabs(excluding_class=2)[0]
        evicted = allocator.reassign_slab(donor, 2)
        assert sorted(evicted) == sorted(f"k{i}" for i in range(per_slab))
        assert allocator.try_allocate(2, "newbie") is not None
        allocator.check_invariants()

    def test_stale_free_refs_not_reused(self):
        allocator = SlabAllocator(1 << 20, slab_size=1 << 20,
                                  min_chunk=1 << 18)
        chunk = allocator.try_allocate(1, "k0")
        allocator.free(chunk)   # free ref for class 1 now exists
        donor = allocator.donor_slabs(excluding_class=2)[0]
        allocator.reassign_slab(donor, 2)
        # class 1 has no slabs left; its stale ref must not resurrect
        assert allocator.try_allocate(1, "k1") is None
        allocator.check_invariants()

    def test_donor_slabs_excludes_own_class(self):
        allocator = SlabAllocator(4 << 20, slab_size=1 << 20)
        allocator.try_allocate(1, "a")
        allocator.try_allocate(2, "b")
        donors = allocator.donor_slabs(excluding_class=1)
        assert all(slab.class_id != 1 for slab in donors)

    def test_reassign_foreign_slab_raises(self):
        a = SlabAllocator(1 << 20, slab_size=1 << 20, min_chunk=1 << 18)
        a.try_allocate(1, "x")
        slab = a.slabs_of_class(1)[0]
        a.reassign_slab(slab, 2)
        with pytest.raises(AllocationError):
            a.reassign_slab(slab, 3)   # already moved


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["alloc", "free"]),
                          st.integers(1, 4000)),
                min_size=1, max_size=150))
def test_allocator_invariants_under_churn(ops):
    """Random alloc/free churn never corrupts occupancy bookkeeping."""
    allocator = SlabAllocator(2 << 20, slab_size=1 << 18)
    live = []
    counter = 0
    for op, size in ops:
        if op == "alloc":
            class_id = allocator.class_for(size)
            if class_id is None:
                continue
            counter += 1
            chunk = allocator.try_allocate(class_id, f"k{counter}")
            if chunk is not None:
                live.append(chunk)
        elif live:
            allocator.free(live.pop())
    allocator.check_invariants()
    assert allocator.stats()["used_chunks"] == len(live)
