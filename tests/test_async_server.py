"""AsyncTwemcacheServer + AsyncSocketClient: transport behaviour.

Protocol *semantics* are covered by the parity suite
(``test_serving_parity.py``); these tests exercise what is new in the
asyncio transport — pipelining, pooling, graceful drain, framing-error
teardown, and the dual sync/async lifecycle.
"""

import asyncio
import socket

import pytest

from repro.twemcache import (
    AsyncSocketClient,
    AsyncTwemcacheServer,
    ServerSession,
    SocketClient,
    TwemcacheEngine,
)
from repro.twemcache.protocol import CRLF


def fresh_engine(**kw) -> TwemcacheEngine:
    kw.setdefault("eviction", "camp")
    kw.setdefault("slab_size", 1 << 16)
    return TwemcacheEngine(2 << 20, **kw)


def run(coro):
    return asyncio.run(coro)


class TestAsyncServerBasics:
    def test_round_trip_all_verbs(self):
        async def main():
            engine = fresh_engine()
            async with AsyncTwemcacheServer(engine) as server:
                async with AsyncSocketClient(server.address) as client:
                    assert await client.set("k", b"value", flags=3, cost=7)
                    got = await client.get("k")
                    assert got.value == b"value" and got.flags == 3
                    assert await client.get("nope") is None
                    assert await client.delete("k")
                    assert not await client.delete("k")
                    assert await client.set("n", b"10")
                    stats = await client.stats()
                    assert stats["items"] == 1
                    assert (await client.version()).startswith("VERSION")
            return engine

        engine = run(main())
        assert engine.hits >= 1

    def test_pipelined_batches_round_trip(self):
        async def main():
            engine = fresh_engine()
            async with AsyncTwemcacheServer(engine) as server:
                async with AsyncSocketClient(server.address,
                                             pool_size=8) as client:
                    entries = [(f"k{i}", f"v{i}".encode()) for i in range(250)]
                    stored = await client.set_many(entries)
                    assert stored == [True] * 250
                    found = await client.get_many(
                        [f"k{i}" for i in range(250)])
                    assert len(found) == 250
                    assert found["k137"].value == b"v137"
                    packed = await client.get_many(
                        [f"k{i}" for i in range(250)], keys_per_command=16)
                    assert {k: v.value for k, v in packed.items()} == \
                        {k: v.value for k, v in found.items()}
            engine.check_consistency()

        run(main())

    def test_multi_key_get_single_command(self):
        async def main():
            engine = fresh_engine()
            async with AsyncTwemcacheServer(engine) as server:
                async with AsyncSocketClient(server.address) as client:
                    await client.set("a", b"1")
                    await client.set("b", b"2")
                    found = await client.get_map(["a", "missing", "b"])
                    assert {k: v.value for k, v in found.items()} == \
                        {"a": b"1", "b": b"2"}
                    last = await client.get("a", "b")
                    assert last.value == b"2"

        run(main())

    def test_sync_lifecycle_serves_sync_client(self):
        engine = fresh_engine()
        with AsyncTwemcacheServer(engine) as server:
            with SocketClient(server.address) as client:
                assert client.set("x", b"y", cost=4)
                assert client.get("x").value == b"y"
                assert client.stats()["items"] == 1
        # port released after stop: a fresh server can bind and serve
        with AsyncTwemcacheServer(fresh_engine()) as second:
            with SocketClient(second.address) as client:
                assert client.version().startswith("VERSION")

    def test_stop_is_idempotent_and_safe_without_connections(self):
        server = AsyncTwemcacheServer(fresh_engine()).start()
        server.stop()
        server.stop()


class TestGracefulDrain:
    def test_stop_drains_pipelined_batch_in_flight(self):
        """A client that already sent its commands gets every response
        even when stop() lands concurrently."""
        engine = fresh_engine()
        server = AsyncTwemcacheServer(engine).start()
        script = b"".join(
            f"set k{i} 0 0 2 1".encode() + CRLF + b"vv" + CRLF
            for i in range(200))
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(script)
            expected = b"STORED" + CRLF
            received = bytearray()
            while received.count(expected) < 200:
                chunk = sock.recv(65536)
                assert chunk, "server closed before answering the batch"
                received += chunk
            server.stop()                 # drain: connection was idle
            assert sock.recv(65536) == b""  # and is now closed
        assert bytes(received) == expected * 200
        assert len(engine) == 200

    def test_connections_close_after_stop(self):
        server = AsyncTwemcacheServer(fresh_engine()).start()
        address = server.address
        with socket.create_connection(address, timeout=10) as sock:
            sock.sendall(b"version" + CRLF)
            assert sock.recv(100).startswith(b"VERSION")
            server.stop()
            assert sock.recv(100) == b""
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)


class TestFramingTeardown:
    """The async transport honours the sans-IO fatal-framing contract."""

    def test_bad_trailer_errors_then_closes(self):
        engine = fresh_engine()
        with AsyncTwemcacheServer(engine) as server:
            with socket.create_connection(server.address, timeout=10) as s:
                s.sendall(b"set k 0 0 5 1" + CRLF + b"abcdeXX"
                          + b"get a" + CRLF)
                received = bytearray()
                while True:
                    chunk = s.recv(65536)
                    if not chunk:
                        break
                    received += chunk
        assert received.startswith(b"CLIENT_ERROR bad data chunk")
        # the bytes after the broken frame were never run as commands
        assert b"END" not in received
        assert "k" not in engine

    def test_short_body_waits_instead_of_desyncing(self):
        """A client that dies mid-data-block must not have its partial
        payload reinterpreted as commands."""
        engine = fresh_engine()
        with AsyncTwemcacheServer(engine) as server:
            with socket.create_connection(server.address, timeout=10) as s:
                # 100-byte body promised, only a command-shaped fragment
                # sent; then the client dies
                s.sendall(b"set k 0 0 100 1" + CRLF + b"flush_all" + CRLF)
                s.close()
            # give the server a beat to observe the close
            import time
            for _ in range(100):
                if server.active_connections == 0:
                    break
                time.sleep(0.01)
        assert "k" not in engine
        # the embedded flush_all was body bytes, not a command: nothing
        # was executed at all on this connection
        assert engine.stats()["misses"] == 0


class TestLargeBatches:
    def test_multi_get_larger_than_server_line_bound(self):
        """Regression: one unbounded 'get k1 k2 ...' line tripped the
        server's fatal MAX_LINE_BYTES check; clients now chunk."""
        long_keys = [f"user:profile:{i:06d}" for i in range(800)]

        async def main():
            engine = fresh_engine()
            async with AsyncTwemcacheServer(engine) as server:
                async with AsyncSocketClient(server.address,
                                             pool_size=4) as client:
                    await client.set_many(
                        [(key, b"v") for key in long_keys])
                    via_map = await client.get_map(long_keys)
                    assert len(via_map) == 800
                    via_many = await client.get_many(
                        long_keys, keys_per_command=500)
                    assert len(via_many) == 800

        run(main())
        # and the sync client, over the threaded server
        from repro.twemcache import TwemcacheServer
        engine = fresh_engine()
        with TwemcacheServer(engine) as server:
            with SocketClient(server.address) as client:
                for key in long_keys:
                    client.set(key, b"v")
                found = client.get_many(long_keys)
                assert len(found) == 800

    def test_connect_failure_does_not_leak_pool_permits(self):
        """Regression: a failed dial kept its semaphore permit, so a
        few refused connections wedged the pool forever."""
        async def main():
            # a port with nothing listening
            import socket as socket_module
            probe = socket_module.socket()
            probe.bind(("127.0.0.1", 0))
            dead_address = probe.getsockname()
            probe.close()
            client = AsyncSocketClient(dead_address, pool_size=2,
                                       timeout=2)
            for _ in range(5):
                with pytest.raises((OSError, asyncio.TimeoutError)):
                    await asyncio.wait_for(client.get("k"), timeout=5)
            await client.close()

        run(main())


class TestConnectionPool:
    def test_pool_reuses_connections(self):
        async def main():
            engine = fresh_engine()
            async with AsyncTwemcacheServer(engine) as server:
                async with AsyncSocketClient(server.address,
                                             pool_size=2) as client:
                    for i in range(20):
                        await client.set(f"k{i}", b"v")
                    await client.get_many([f"k{i}" for i in range(20)])
                return engine.stats(), server.connections_served

        _stats, served = run(main())
        assert served <= 2

    def test_concurrent_batches_on_cold_pool_do_not_deadlock(self):
        """Regression: two batches each grabbing part of a cold pool's
        permits used to wait forever for each other's remainder."""
        async def main():
            engine = fresh_engine()
            for i in range(16):
                engine.set(f"k{i}", b"v")
            async with AsyncTwemcacheServer(engine) as server:
                async with AsyncSocketClient(server.address,
                                             pool_size=2) as client:
                    keys = [f"k{i}" for i in range(16)]
                    first, second = await asyncio.wait_for(
                        asyncio.gather(client.get_many(keys),
                                       client.get_many(keys)),
                        timeout=10)
                    assert len(first) == 16 and len(second) == 16

        run(main())

    def test_pool_size_bounds_concurrency(self):
        async def main():
            engine = fresh_engine()
            async with AsyncTwemcacheServer(engine) as server:
                async with AsyncSocketClient(server.address,
                                             pool_size=3) as client:
                    await asyncio.gather(*[
                        client.set(f"k{i}", b"v") for i in range(30)])
                    found = await client.get_many(
                        [f"k{i}" for i in range(30)])
                    assert len(found) == 30
                return server.connections_served

        assert run(main()) <= 3


class TestPoolFailurePaths:
    """The failure modes the cluster tier leans on: a dead node must
    surface as a prompt error on every call, never a wedged pool."""

    def test_dial_failure_mid_batch_returns_pool_permits(self):
        """``get_many`` fans a batch out over several pooled
        connections; when the node dies between batches, the retry
        dials fail mid-checkout and every permit (including the ones
        already checked out) must come back."""
        from repro.errors import ProtocolError

        async def main():
            engine = fresh_engine()
            async with AsyncTwemcacheServer(engine) as server:
                client = AsyncSocketClient(server.address, pool_size=4,
                                           timeout=2)
                assert await client.set("k0", b"v")   # one idle conn pooled
            # server gone: the pooled socket is stale and fresh dials fail
            keys = [f"k{i}" for i in range(32)]
            for _ in range(5):
                with pytest.raises((OSError, ProtocolError,
                                    asyncio.TimeoutError)):
                    await asyncio.wait_for(client.get_many(keys), timeout=5)
            await client.close()

        run(main())

    def test_node_death_mid_pipeline_raises_cleanly(self):
        """A node that dies after emitting half a response must raise
        ``ProtocolError`` from ``get_many`` — not hang the reader or
        leave the pool wedged for later calls."""
        from repro.errors import ProtocolError

        async def main():
            async def half_a_value(reader, writer):
                await reader.readline()
                writer.write(b"VALUE k0 0 64 0" + CRLF + b"only-a-prefix")
                await writer.drain()
                writer.close()   # die mid-body

            stub = await asyncio.start_server(half_a_value, "127.0.0.1", 0)
            address = stub.sockets[0].getsockname()[:2]
            try:
                client = AsyncSocketClient(address, pool_size=2, timeout=2)
                keys = [f"k{i}" for i in range(16)]
                for _ in range(3):   # pool stays usable after each failure
                    with pytest.raises(ProtocolError):
                        await asyncio.wait_for(client.get_many(keys),
                                               timeout=5)
                await client.close()
            finally:
                stub.close()
                await stub.wait_closed()

        run(main())


class TestServerSessionUnit:
    def test_broken_session_stops_producing(self):
        engine = fresh_engine()
        session = ServerSession(engine)
        out, close = session.receive(
            b"set k 0 0 3 1" + CRLF + b"abXY" + b"version" + CRLF)
        assert close
        assert session.broken
        assert out.startswith(b"CLIENT_ERROR bad data chunk")
        # feeding more bytes after the fatal error yields nothing
        out, close = session.receive(b"version" + CRLF)
        assert out == b""

    def test_oversized_command_line_is_fatal(self):
        session = ServerSession(fresh_engine())
        out, close = session.receive(b"get " + b"k" * 10000)
        assert close and session.broken
        assert out.startswith(b"CLIENT_ERROR command line too long")

    def test_oversized_line_fatal_even_when_crlf_arrives_together(self):
        """The line bound must not depend on recv chunk boundaries: the
        same oversized get is rejected whether or not its CRLF came in
        the same chunk."""
        session = ServerSession(fresh_engine())
        out, close = session.receive(
            b"get " + b"k " * 6000 + b"\r\n" + b"version\r\n")
        assert close and session.broken
        assert out.startswith(b"CLIENT_ERROR command line too long")
        assert b"VERSION" not in out

    def test_malformed_storage_header_is_fatal_not_desync(self):
        """A storage command whose header fails to parse still promised
        a data block; its payload bytes must never run as commands."""
        engine = fresh_engine()
        engine.set("victim", b"v")
        session = ServerSession(engine)
        # bad flags token; the 11-byte body spells a flush_all command
        out, close = session.receive(
            b"set k x 0 11 1\r\nflush_all\r\n" + b"get victim\r\n")
        assert close and session.broken
        assert out.startswith(b"CLIENT_ERROR")
        assert b"OK" not in out          # flush_all never executed
        assert "victim" in engine

    def test_async_engine_adapter_coalesces(self):
        async def main():
            adapter = fresh_engine().async_adapter()
            calls = []

            async def loader(key):
                calls.append(key)
                await asyncio.sleep(0.01)
                return b"payload"

            items = await asyncio.gather(*[
                adapter.get_or_compute("hot", loader) for _ in range(40)])
            assert len(calls) == 1
            assert all(item.value == b"payload" for item in items)
            assert adapter.loads == 1 and adapter.coalesced_loads == 39
            # once resident it is a plain hit, no flights
            again = await adapter.get_or_compute("hot", loader)
            assert again.value == b"payload" and len(calls) == 1
            assert adapter.inflight == 0

        run(main())

    def test_async_engine_adapter_counts_misses_once(self):
        """Regression: the adapter's resident probe used engine.get, so
        every logical miss was counted twice vs the sync surface."""
        async def main():
            engine = fresh_engine()
            adapter = engine.async_adapter()

            async def loader(key):
                return b"v"

            await adapter.get_or_compute("cold", loader)
            assert engine.misses == 1     # exactly like sync get_or_compute
            assert engine.hits == 0
            await adapter.get_or_compute("cold", loader)
            assert engine.misses == 1
            assert engine.hits == 1

        run(main())

    def test_async_engine_adapter_counts_expired_miss_once(self):
        """The TTL-lapsed edge must count one miss too, like sync."""
        from repro.twemcache import VirtualClock

        async def main():
            clock = VirtualClock()
            engine = fresh_engine(clock=clock)
            adapter = engine.async_adapter()

            async def loader(key):
                return b"fresh"

            await adapter.get_or_compute("k", loader, expire_after=5)
            assert engine.misses == 1
            clock.advance(10)
            item = await adapter.get_or_compute("k", loader)
            assert item.value == b"fresh"
            assert engine.misses == 2     # the expiry miss, once
            assert engine.hits == 0

        run(main())
