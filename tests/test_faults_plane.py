"""The fault-injection plane and the self-healing it exists to prove.

Unit coverage for :mod:`repro.faults` (plan semantics, the file shim,
transport faults), the ``digest`` anti-entropy verb end to end, hinted
handoff (:class:`~repro.cluster.hints.HintLog` and its replay), the
per-node circuit breaker and request deadlines in
:class:`~repro.cluster.ClusterClient`, restart pacing
(:class:`~repro.cluster.RestartBackoff`), and the
pause/resume (SIGSTOP) supervisor drill.  The full scripted storyline
lives in the ``cluster-chaos`` experiment (``benchmarks/test_chaos.py``).
"""

import asyncio
import errno
import zlib

import pytest

from repro.cluster import ClusterClient, ClusterSupervisor, RestartBackoff
from repro.cluster.hints import HINT_MAGIC, HintLog
from repro.cluster.loadgen import cost_for, key_name, value_for
from repro.errors import ClusterError, ConfigurationError, ProtocolError
from repro.faults import Fault, FaultError, FaultPlan, fault_open, inject
from repro.persistence.format import PersistenceError
from repro.twemcache import (
    AsyncSocketClient,
    AsyncTwemcacheServer,
    TwemcacheEngine,
)
from repro.twemcache.protocol import (
    Command,
    execute_command,
    parse_command_line,
    render_digest,
)


def run(coro):
    return asyncio.run(coro)


def fresh_engine(clock=None) -> TwemcacheEngine:
    return TwemcacheEngine(4 << 20, eviction="camp", slab_size=1 << 16,
                           clock=clock)


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_take_fires_on_the_scheduled_operation_only(self):
        plan = FaultPlan([Fault(kind="enospc", seam="file", at=2)])
        assert plan.take("file", "x") == []
        assert plan.take("file", "x") == []
        assert len(plan.take("file", "x")) == 1       # the 3rd op (at=2)
        assert plan.take("file", "x") == []
        assert plan.fired == 1

    def test_count_extends_over_consecutive_matches(self):
        plan = FaultPlan([Fault(kind="enospc", seam="file", at=1, count=2)])
        fired = [bool(plan.take("file", "x")) for _ in range(4)]
        assert fired == [False, True, True, False]
        assert not plan.pending("file")

    def test_counters_are_per_fault_and_target_substring_matched(self):
        plan = FaultPlan([
            Fault(kind="enospc", seam="file", target="aol", at=0),
            Fault(kind="enospc", seam="file", target="segment", at=0),
        ])
        # ops against the snapshot match neither counter
        assert plan.take("file", "snapshot-000001.snap.tmp") == []
        assert len(plan.take("file", "state/op.aol")) == 1
        assert len(plan.take("file", "tier/segment-000001.seg")) == 1

    def test_seams_do_not_cross(self):
        plan = FaultPlan([Fault(kind="reset", seam="read", at=0)])
        assert plan.take("file", "x") == []
        assert len(plan.take("read", "x")) == 1

    def test_process_events_are_step_keyed(self):
        plan = FaultPlan([
            Fault(kind="sigkill", seam="process", target="c0", at=1),
            Fault(kind="restart", seam="process", target="c0", at=4),
        ])
        assert plan.events_at(0) == []
        assert [f.kind for f in plan.events_at(1)] == ["sigkill"]
        assert plan.last_step() == 4
        assert FaultPlan().last_step() == -1

    def test_validation(self):
        with pytest.raises(FaultError):
            Fault(kind="enospc", seam="bogus")
        with pytest.raises(FaultError):
            Fault(kind="enospc", seam="file", at=-1)
        with pytest.raises(FaultError):
            Fault(kind="enospc", seam="file", count=0)


# ----------------------------------------------------------------------
# the file shim
# ----------------------------------------------------------------------
class TestFileShim:
    def test_enospc_persists_nothing(self, tmp_path):
        path = tmp_path / "victim.bin"
        plan = FaultPlan([Fault(kind="enospc", seam="file", at=1)])
        with inject(plan), fault_open(path, "wb") as handle:
            handle.write(b"first")
            with pytest.raises(OSError) as caught:
                handle.write(b"second")
            assert caught.value.errno == errno.ENOSPC
            handle.flush()
        assert path.read_bytes() == b"first"

    def test_short_write_keeps_a_prefix(self, tmp_path):
        path = tmp_path / "victim.bin"
        plan = FaultPlan([Fault(kind="short_write", seam="file",
                                keep_bytes=3)])
        with inject(plan), fault_open(path, "wb") as handle:
            with pytest.raises(OSError) as caught:
                handle.write(b"0123456789")
            assert caught.value.errno == errno.ENOSPC
        assert path.read_bytes() == b"012"

    def test_torn_write_is_eio_with_a_prefix(self, tmp_path):
        path = tmp_path / "victim.bin"
        plan = FaultPlan([Fault(kind="torn_write", seam="file",
                                keep_bytes=4)])
        with inject(plan), fault_open(path, "wb") as handle:
            with pytest.raises(OSError) as caught:
                handle.write(b"0123456789")
            assert caught.value.errno == errno.EIO
        assert path.read_bytes() == b"0123"

    def test_injection_after_open_still_applies(self, tmp_path):
        # the shim checks active plans per write, so "the disk fills
        # while the log is already open" is expressible
        path = tmp_path / "victim.bin"
        handle = fault_open(path, "wb")
        handle.write(b"healthy")
        plan = FaultPlan([Fault(kind="enospc", seam="file")])
        with inject(plan):
            with pytest.raises(OSError):
                handle.write(b"doomed")
        handle.write(b"+recovered")
        handle.close()
        assert path.read_bytes() == b"healthy+recovered"

    def test_read_handles_pass_through_unwrapped(self, tmp_path):
        path = tmp_path / "victim.bin"
        path.write_bytes(b"payload")
        with inject(FaultPlan([Fault(kind="enospc", seam="file")])):
            with fault_open(path, "rb") as handle:
                assert handle.read() == b"payload"
        assert not hasattr(fault_open(path, "rb"), "_target")


# ----------------------------------------------------------------------
# transport faults
# ----------------------------------------------------------------------
class TestTransportFaults:
    def test_connect_refusal_is_deterministic(self):
        async def main():
            engine = fresh_engine()
            async with AsyncTwemcacheServer(engine) as server:
                plan = FaultPlan([Fault(kind="refuse", seam="connect",
                                        at=0)])
                client = AsyncSocketClient(server.address, pool_size=1,
                                           timeout=2, fault_plan=plan)
                try:
                    with pytest.raises(ConnectionRefusedError):
                        await client.set("k", b"v")
                    # the fault is spent: the retry dials through
                    assert await client.set("k", b"v", cost=5)
                finally:
                    await client.close()

        run(main())

    def test_server_response_stall_times_out_then_recovers(self):
        """A stalled response expires the client's wait_for; the broken
        connection is discarded (never re-pooled dirty) and the permit
        comes back, so the next call succeeds on a fresh dial."""
        async def main():
            engine = fresh_engine()
            engine.set("k", b"correct", cost=3)
            plan = FaultPlan([Fault(kind="stall", seam="write", at=0,
                                    delay=30.0)])
            server = AsyncTwemcacheServer(engine, fault_plan=plan)
            async with server:
                client = AsyncSocketClient(server.address, pool_size=1,
                                           timeout=0.3)
                try:
                    with pytest.raises(asyncio.TimeoutError):
                        await client.get_map(["k"])
                    # permit returned, connection not re-pooled
                    assert client._available._value == 1
                    assert client._idle == []
                    found = await client.get_map(["k"])
                    assert found["k"].value == b"correct"
                finally:
                    await client.close()

        run(main())

    def test_slightly_late_reply_never_poisons_the_next_call(self):
        """The dirty-reuse regression: a reply that arrives *after* the
        client gave up must not be read by the next operation.  If the
        timed-out connection were re-pooled, the second get would
        consume the first (stale) reply."""
        async def main():
            engine = fresh_engine()
            engine.set("stale", b"old-reply", cost=1)
            engine.set("fresh", b"new-reply", cost=2)
            plan = FaultPlan([Fault(kind="latency", seam="write", at=0,
                                    delay=0.6)])
            server = AsyncTwemcacheServer(engine, fault_plan=plan)
            async with server:
                client = AsyncSocketClient(server.address, pool_size=1,
                                           timeout=0.2)
                try:
                    with pytest.raises(asyncio.TimeoutError):
                        await client.get_map(["stale"])
                    await asyncio.sleep(0.6)   # the late reply lands now
                    found = await client.get_map(["fresh"])
                    assert set(found) == {"fresh"}
                    assert found["fresh"].value == b"new-reply"
                finally:
                    await client.close()

        run(main())

    def test_outer_cancellation_returns_the_pool_permit(self):
        """CancelledError is a BaseException: a deadline budget expiring
        mid-read must still discard the connection and hand the permit
        back, or the pool loses one slot per expiry."""
        async def main():
            engine = fresh_engine()
            plan = FaultPlan([Fault(kind="stall", seam="write", at=0,
                                    delay=30.0)])
            server = AsyncTwemcacheServer(engine, fault_plan=plan)
            async with server:
                client = AsyncSocketClient(server.address, pool_size=1,
                                           timeout=60)
                try:
                    task = asyncio.ensure_future(client.get_map(["k"]))
                    await asyncio.sleep(0.2)       # mid-read on the stall
                    task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await task
                    assert client._available._value == 1
                    assert client._idle == []
                    # the pool still works (a leak would deadlock here)
                    await asyncio.wait_for(client.set("k", b"v"),
                                           timeout=5)
                finally:
                    await client.close()

        run(main())

    def test_fan_out_cancellation_returns_every_permit(self):
        async def main():
            engine = fresh_engine()
            # exactly one stalled response per pooled connection; the
            # liveness probe after the cancel must dial through clean
            plan = FaultPlan([Fault(kind="stall", seam="write", at=0,
                                    count=2, delay=30.0)])
            server = AsyncTwemcacheServer(engine, fault_plan=plan)
            async with server:
                client = AsyncSocketClient(server.address, pool_size=2,
                                           timeout=60)
                try:
                    task = asyncio.ensure_future(
                        client.get_many([f"k{i}" for i in range(8)]))
                    await asyncio.sleep(0.2)
                    task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await task
                    assert client._available._value == 2
                    assert await asyncio.wait_for(
                        client.set("k", b"v"), timeout=5)
                finally:
                    await client.close()

        run(main())


# ----------------------------------------------------------------------
# the digest verb
# ----------------------------------------------------------------------
class TestDigestVerb:
    def test_engine_digest_is_cost_and_crc(self):
        engine = fresh_engine()
        engine.set("a1", b"alpha", cost=7)
        engine.set("b1", b"beta", cost=9)
        summary = engine.digest()
        assert summary == {"a1": (7, zlib.crc32(b"alpha")),
                           "b1": (9, zlib.crc32(b"beta"))}
        assert engine.digest("a") == {"a1": (7, zlib.crc32(b"alpha"))}

    def test_engine_digest_skips_expired(self):
        now = [0.0]
        engine = fresh_engine(clock=lambda: now[0])
        engine.set("ttl", b"gone", expire_after=5, cost=1)
        engine.set("keep", b"kept", cost=2)
        now[0] = 10.0
        assert set(engine.digest()) == {"keep"}

    def test_protocol_parse_and_render(self):
        request = parse_command_line(b"digest")
        assert request.command == "digest" and request.keys == []
        request = parse_command_line(b"digest pre")
        assert request.keys == ["pre"]
        with pytest.raises(ProtocolError):
            parse_command_line(b"digest a b")
        text = render_digest({"k2": (3, 99), "k1": (1.5, 7)}).decode()
        assert text.splitlines() == ["DIGEST k1 1.5 7", "DIGEST k2 3 99",
                                     "END"]

    def test_execute_against_engine_and_unsupporting_engine(self):
        engine = fresh_engine()
        engine.set("k", b"v", cost=4)
        reply = execute_command(engine,
                                Command(parse_command_line(b"digest")))
        assert f"DIGEST k 4 {zlib.crc32(b'v')}".encode() in reply.data

        class NoDigest:
            pass

        reply = execute_command(NoDigest(),
                                Command(parse_command_line(b"digest")))
        assert reply.data.startswith(b"SERVER_ERROR")

    def test_client_round_trip(self):
        async def main():
            engine = fresh_engine()
            engine.set("x1", b"one", cost=11)
            engine.set("y1", b"two", cost=13)
            async with AsyncTwemcacheServer(engine) as server:
                async with AsyncSocketClient(server.address) as client:
                    summary = await client.digest()
                    assert summary == {
                        "x1": (11, zlib.crc32(b"one")),
                        "y1": (13, zlib.crc32(b"two"))}
                    assert await client.digest("y") == {
                        "y1": (13, zlib.crc32(b"two"))}

        run(main())


# ----------------------------------------------------------------------
# the hint log
# ----------------------------------------------------------------------
class TestHintLog:
    def test_round_trip_preserves_cost_flags_ttl(self, tmp_path):
        log = HintLog(tmp_path / "n0.hints")
        log.append("k1", b"v1", flags=2, expire_after=30, cost=17)
        log.append("k2", b"v2", cost=3.5)
        entries = {e[0]: e for e in log.entries()}
        assert entries["k1"] == ("k1", b"v1", 2, 30.0, 17)
        assert entries["k2"] == ("k2", b"v2", 0, 0.0, 3.5)

    def test_newest_record_per_key_wins(self, tmp_path):
        log = HintLog(tmp_path / "n0.hints")
        log.append("k", b"old", cost=1)
        log.append("k", b"new", cost=2)
        assert log.entries() == [("k", b"new", 0, 0.0, 2)]

    def test_delete_tombstone_marks_value_none(self, tmp_path):
        log = HintLog(tmp_path / "n0.hints")
        log.append("k", b"v", cost=1)
        log.append_delete("k")
        assert log.entries() == [("k", None, 0, 0.0, 0)]

    def test_torn_tail_loses_only_the_tail(self, tmp_path):
        path = tmp_path / "n0.hints"
        log = HintLog(path)
        log.append("k1", b"v1", cost=1)
        log.append("k2", b"v2", cost=2)
        with open(path, "rb+") as handle:
            handle.truncate(path.stat().st_size - 3)
        assert [e[0] for e in log.entries()] == ["k1"]

    def test_foreign_magic_reads_as_empty(self, tmp_path):
        path = tmp_path / "n0.hints"
        path.write_bytes(b"NOTHINTS" + b"\x00" * 16)
        assert HintLog(path).entries() == []
        assert HINT_MAGIC != b"NOTHINTS"

    def test_clear_drops_the_file(self, tmp_path):
        log = HintLog(tmp_path / "n0.hints")
        log.append("k", b"v")
        log.clear()
        assert not log.path.exists()
        assert len(log) == 0
        log.clear()   # idempotent

    def test_append_under_enospc_raises_persistence_error(self, tmp_path):
        log = HintLog(tmp_path / "n0.hints")
        log.append("k1", b"v1")
        plan = FaultPlan([Fault(kind="enospc", seam="file",
                                target="hints")])
        with inject(plan):
            with pytest.raises(PersistenceError):
                log.append("k2", b"v2")
        # the failed hint vanished; the earlier one survives
        assert [e[0] for e in log.entries()] == ["k1"]


# ----------------------------------------------------------------------
# restart pacing
# ----------------------------------------------------------------------
class TestRestartBackoff:
    def test_waits_then_restarts_with_exponential_windows(self):
        now = [0.0]
        backoff = RestartBackoff(base=1.0, cap=30.0, quarantine_after=5,
                                 healthy_after=60.0, clock=lambda: now[0])
        assert backoff.decide("n") == "restart"    # first death: go now
        assert backoff.decide("n") == "wait"       # 1s window open
        now[0] = 1.0
        assert backoff.decide("n") == "restart"    # window lapsed
        now[0] = 2.5
        assert backoff.decide("n") == "wait"       # 2s window now
        now[0] = 3.0
        assert backoff.decide("n") == "restart"

    def test_crash_loop_quarantines_and_forgive_lifts(self):
        now = [0.0]
        backoff = RestartBackoff(base=0.1, cap=0.1, quarantine_after=3,
                                 healthy_after=60.0, clock=lambda: now[0])
        decisions = []
        for _ in range(8):
            decisions.append(backoff.decide("n"))
            now[0] += 1.0
        assert decisions[:3] == ["restart"] * 3
        assert set(decisions[3:]) == {"quarantine"}
        assert backoff.quarantined() == ["n"]
        backoff.forgive("n")
        assert backoff.decide("n") == "restart"

    def test_healthy_uptime_resets_the_streak(self):
        now = [0.0]
        backoff = RestartBackoff(base=1.0, cap=30.0, quarantine_after=3,
                                 healthy_after=60.0, clock=lambda: now[0])
        for _ in range(2):
            assert backoff.decide("n") == "restart"
            now[0] += 10.0
        now[0] += 120.0           # ran healthy well past healthy_after
        assert backoff.decide("n") == "restart"
        assert backoff.decide("n") == "wait"   # back on the 1s base window

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RestartBackoff(base=0)
        with pytest.raises(ConfigurationError):
            RestartBackoff(base=2.0, cap=1.0)
        with pytest.raises(ConfigurationError):
            RestartBackoff(quarantine_after=0)


# ----------------------------------------------------------------------
# the circuit breaker (no sockets needed: virtual clock, direct marks)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _client(self, now):
        return ClusterClient({"a": ("127.0.0.1", 1), "b": ("127.0.0.1", 2)},
                             replicas=2, backoff_base=10.0,
                             backoff_max=40.0, clock=lambda: now[0],
                             timeout=1.0, jitter_seed=7)

    def test_states_closed_open_half_open(self):
        now = [0.0]
        client = self._client(now)
        assert client.breaker_state("a") == "closed"
        client._mark_down("a")
        assert client.breaker_state("a") == "open"
        assert not client._admit("a")
        now[0] = 50.0                      # any jitter window has lapsed
        assert client.breaker_state("a") == "half_open"
        assert client._admit("a")          # the probe
        assert not client._admit("a")      # only one probe at a time
        client._mark_up("a")
        assert client.breaker_state("a") == "closed"
        assert client._admit("a") and client._admit("a")

    def test_failed_probe_reopens_wider(self):
        now = [0.0]
        client = self._client(now)
        client._mark_down("a")
        first_window = client._states["a"].down_until
        now[0] = 50.0
        assert client._admit("a")
        client._mark_down("a")             # the probe failed
        second_window = client._states["a"].down_until - now[0]
        assert second_window > first_window        # 2x base, jittered
        assert client.counters["node_failures"] == 2
        assert client.counters["probes"] == 1

    def test_jitter_stays_inside_half_to_full_window(self):
        # the live-cluster tests pin backoff_base=30/backoff_max=30 and
        # expect down at t=0 but lapsed by t=60: jitter must keep the
        # window inside [0.5, 1.0) of nominal
        now = [0.0]
        for seed in range(20):
            client = ClusterClient({"a": ("127.0.0.1", 1)}, replicas=1,
                                   backoff_base=30.0, backoff_max=30.0,
                                   clock=lambda: now[0], jitter_seed=seed)
            client._mark_down("a")
            window = client._states["a"].down_until
            assert 15.0 <= window < 30.0

    def test_abandoned_probe_lease_self_heals(self):
        now = [0.0]
        client = self._client(now)
        client._mark_down("a")
        now[0] = 50.0
        assert client._admit("a")          # probe claimed, then abandoned
        assert not client._admit("a")
        now[0] = 60.0                      # past the probe lease (2x timeout)
        assert client._admit("a")


# ----------------------------------------------------------------------
# live fleets: hinted handoff, anti-entropy, deadlines, pause/resume
# ----------------------------------------------------------------------
class _Fleet:
    """Three threaded in-process servers + address map."""

    def __init__(self, names=("n0", "n1", "n2")):
        self.servers = {}
        for name in names:
            self.servers[name] = AsyncTwemcacheServer(fresh_engine()).start()
        self.addresses = {name: server.address
                          for name, server in self.servers.items()}

    def engine(self, name) -> TwemcacheEngine:
        return self.servers[name].engine

    def bounce_empty(self, name):
        """Stop ``name`` and restart it empty on the same port."""
        host, port = self.addresses[name]
        self.servers[name].stop()
        self.servers[name] = AsyncTwemcacheServer(fresh_engine(), host,
                                                  port).start()

    def stop(self):
        for server in self.servers.values():
            server.stop()


@pytest.fixture()
def fleet():
    built = _Fleet()
    yield built
    built.stop()


class TestHintedHandoff:
    def test_writes_to_a_down_holder_park_and_replay(self, fleet, tmp_path):
        async def main():
            now = [0.0]
            client = ClusterClient(fleet.addresses, replicas=2, timeout=2,
                                   backoff_base=30.0, backoff_max=30.0,
                                   clock=lambda: now[0],
                                   hints_dir=str(tmp_path))
            try:
                fleet.servers["n1"].stop()
                entries = [(key_name(i), value_for(i, 32), 0, 0,
                            cost_for(i)) for i in range(60)]
                stored = await client.set_many(entries)
                assert all(stored)
                expected = [key_name(i) for i in range(60)
                            if "n1" in client.holders(key_name(i))]
                primaried = [key for key in expected
                             if client.holders(key)[0] == "n1"]
                assert expected and primaried, "ring placed nothing on n1?"
                assert client.counters["hints_written"] >= len(expected)
                assert (tmp_path / "n1.hints").exists()

                # bounce the node empty; lapse the breaker; the next op
                # that routes to n1 (a key it primaries) probes it, and
                # the successful probe auto-replays the parked hints
                fleet.bounce_empty("n1")
                now[0] = 60.0
                await client.get_many([primaried[0]])
                assert client.counters["hints_replayed"] >= len(expected)
                engine = fleet.engine("n1")
                for name in expected:
                    i = int(name[1:])
                    item = engine.get(name)
                    assert item is not None, f"{name} never replayed"
                    assert item.value == value_for(i, 32)
                    assert item.cost == cost_for(i)   # true CAMP cost
                assert not (tmp_path / "n1.hints").exists()
            finally:
                await client.close()

        run(main())

    def test_delete_hints_prevent_resurrection(self, fleet, tmp_path):
        async def main():
            now = [0.0]
            client = ClusterClient(fleet.addresses, replicas=2, timeout=2,
                                   backoff_base=30.0, backoff_max=30.0,
                                   clock=lambda: now[0],
                                   hints_dir=str(tmp_path))
            try:
                assert await client.set("zombie", b"brains", cost=5)
                victim = client.holders("zombie")[1]
                # the victim sleeps through the delete, holding its copy
                fleet.servers[victim].stop()
                assert await client.delete("zombie")
                host, port = fleet.addresses[victim]
                fleet.servers[victim].stop()
                server = AsyncTwemcacheServer(fresh_engine(), host, port)
                fleet.servers[victim] = server.start()
                server.engine.set("zombie", b"brains", cost=5)  # stale copy

                now[0] = 60.0
                await client.get_many(["unrelated"])   # probe + replay
                assert server.engine.get("zombie") is None, (
                    "delete hint failed: the stale copy survived rejoin")
                # and the cluster-wide read agrees
                assert await client.get("zombie") is None
            finally:
                await client.close()

        run(main())

    def test_replay_survives_a_second_death(self, fleet, tmp_path):
        """A replay interrupted by the node dying again keeps the hint
        file for the next revival."""
        async def main():
            now = [0.0]
            client = ClusterClient(fleet.addresses, replicas=2, timeout=2,
                                   backoff_base=30.0, backoff_max=30.0,
                                   clock=lambda: now[0],
                                   hints_dir=str(tmp_path))
            try:
                fleet.servers["n2"].stop()
                entries = [(key_name(i), value_for(i, 32), 0, 0,
                            cost_for(i)) for i in range(40)]
                await client.set_many(entries)
                hinted = client.counters["hints_written"]
                assert hinted > 0
                # node is still down: replay fails, hints survive
                now[0] = 60.0
                assert await client.replay_hints("n2") == 0
                assert (tmp_path / "n2.hints").exists()
                # revive it for real; second replay drains
                fleet.bounce_empty("n2")
                now[0] = 120.0
                assert await client.replay_hints("n2") > 0
                assert not (tmp_path / "n2.hints").exists()
            finally:
                await client.close()

        run(main())


class TestAntiEntropy:
    def test_sweep_repairs_a_missing_replica_copy(self, fleet):
        async def main():
            async with ClusterClient(fleet.addresses,
                                     replicas=2) as client:
                entries = [(key_name(i), value_for(i, 32), 0, 0,
                            cost_for(i)) for i in range(40)]
                await client.set_many(entries)
                # silently lose one replica copy (no read ever notices)
                victim_key = key_name(7)
                holder = client.holders(victim_key)[1]
                assert fleet.engine(holder).delete(victim_key)

                report = await client.anti_entropy()
                assert report["nodes_scanned"] == 3
                assert report["divergent_pairs"] == 1
                assert report["repaired"] == 1
                restored = fleet.engine(holder).get(victim_key)
                assert restored is not None
                assert restored.value == value_for(7, 32)
                assert restored.cost == cost_for(7)

                # converged: a second sweep finds nothing to do
                again = await client.anti_entropy()
                assert again["divergent_pairs"] == 0

        run(main())

    def test_sweep_resolves_value_divergence_primary_led(self, fleet):
        async def main():
            async with ClusterClient(fleet.addresses,
                                     replicas=2) as client:
                await client.set("split", b"authoritative", cost=9)
                primary, replica = client.holders("split")[:2]
                fleet.engine(replica).set("split", b"corrupted", cost=9)
                report = await client.anti_entropy()
                assert report["repaired"] >= 1
                fixed = fleet.engine(replica).get("split")
                assert fixed is not None
                assert fixed.value == b"authoritative"

        run(main())

    def test_prefix_limits_the_sweep(self, fleet):
        async def main():
            async with ClusterClient(fleet.addresses,
                                     replicas=2) as client:
                await client.set("inside:k", b"v", cost=1)
                await client.set("outside", b"v", cost=1)
                holder = client.holders("outside")[1]
                fleet.engine(holder).delete("outside")
                report = await client.anti_entropy(prefix="inside:")
                # the divergence lives outside the prefix: untouched
                assert report["divergent_pairs"] == 0
                assert fleet.engine(holder).get("outside") is None

        run(main())


class TestRequestDeadline:
    def test_budget_bounds_a_batch_and_degrades_to_misses(self, fleet):
        async def main():
            client = ClusterClient(fleet.addresses, replicas=2,
                                   timeout=5.0, request_deadline=0.001,
                                   backoff_base=30.0, backoff_max=30.0)
            try:
                keys = [key_name(i) for i in range(20)]
                # the budget (1ms) expires before any shard completes:
                # keys degrade to misses, never an exception
                found = await client.get_many(keys)
                assert isinstance(found, dict)
                assert client.counters["deadline_expirations"] >= 1
                assert client.counters["misses"] >= len(keys) - len(found)
            finally:
                await client.close()

        run(main())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterClient({"a": ("127.0.0.1", 1)}, request_deadline=0)


class TestSupervisorPauseResume:
    def test_sigstop_hangs_requests_until_sigcont(self, tmp_path):
        supervisor = ClusterSupervisor(["solo"], memory_bytes=4 << 20,
                                       state_dir=str(tmp_path))
        with supervisor:
            address = supervisor.addresses()["solo"]

            async def drill():
                async with AsyncSocketClient(address,
                                             timeout=0.4) as client:
                    assert await client.set("k", b"v", cost=1)
                    supervisor.pause("solo")
                    assert supervisor.is_running("solo")   # frozen, alive
                    with pytest.raises(asyncio.TimeoutError):
                        await client.get_map(["k"])
                    supervisor.resume("solo")
                    found = await client.get_map(["k"])
                    assert found["k"].value == b"v"

            run(drill())

    def test_pause_unknown_or_dead_node_raises(self, tmp_path):
        supervisor = ClusterSupervisor(["solo"], memory_bytes=4 << 20,
                                       state_dir=str(tmp_path))
        with supervisor:
            with pytest.raises(ClusterError):
                supervisor.pause("ghost")
            supervisor.kill("solo")
            with pytest.raises(ClusterError):
                supervisor.pause("solo")
            with pytest.raises(ClusterError):
                supervisor.resume("solo")
