"""Tests for the N-level hierarchy, ASCII charts and new CLI verbs."""

import pytest

from repro.analysis import ascii_chart
from repro.cache import KVS, MultiLevelCache
from repro.cli import main
from repro.core import CampPolicy, LruPolicy
from repro.errors import ConfigurationError


def three_levels(c1=50, c2=200, c3=1000):
    stores = [KVS(c1, CampPolicy()), KVS(c2, CampPolicy()),
              KVS(c3, CampPolicy())]
    return MultiLevelCache(stores, [0.0, 0.1, 0.4])


class TestMultiLevelCache:
    def test_miss_fills_level1(self):
        cache = three_levels()
        outcome = cache.lookup("a", 30, 100)
        assert outcome.level == 0
        assert outcome.charged_cost == 100.0
        assert cache.resident_level("a") == 1

    def test_cascade_demotion(self):
        cache = three_levels(c1=50)
        for key in ("a", "b", "c", "d"):
            cache.lookup(key, 30, 100)
        # level 1 holds one 30-byte pair; earlier pairs cascaded to level 2
        assert cache.demotions >= 3
        levels = {key: cache.resident_level(key) for key in "abcd"}
        assert levels["d"] == 1
        assert all(level in (1, 2, 3) for level in levels.values())

    def test_hit_at_depth_promotes_and_discounts(self):
        cache = three_levels(c1=50)
        for key in ("a", "b", "c"):
            cache.lookup(key, 30, 100)
        demoted = next(k for k in "ab" if cache.resident_level(k) == 2)
        outcome = cache.lookup(demoted, 30, 100)
        assert outcome.level == 2
        assert outcome.charged_cost == pytest.approx(10.0)
        assert cache.resident_level(demoted) == 1
        assert cache.promotions == 1

    def test_deep_demotion_reaches_level3(self):
        cache = three_levels(c1=40, c2=40, c3=1000)
        for i in range(8):
            cache.lookup(f"k{i}", 30, 100)
        levels = [cache.resident_level(f"k{i}") for i in range(8)]
        assert 3 in levels

    def test_store_accessor_and_levels(self):
        cache = three_levels()
        assert cache.levels == 3
        assert cache.store(1).capacity == 50
        with pytest.raises(ConfigurationError):
            cache.store(4)

    def test_invalid_construction(self):
        store = KVS(10, LruPolicy())
        with pytest.raises(ConfigurationError):
            MultiLevelCache([store], [0.0])
        with pytest.raises(ConfigurationError):
            MultiLevelCache([store, KVS(10, LruPolicy())], [0.0])
        with pytest.raises(ConfigurationError):
            MultiLevelCache([store, KVS(10, LruPolicy())], [0.5, 0.1])
        with pytest.raises(ConfigurationError):
            MultiLevelCache([store, KVS(10, LruPolicy())], [0.0, 1.5])


class TestAsciiChart:
    def test_contains_series_glyphs_and_labels(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
                            title="demo", x_label="x", y_label="y")
        assert "demo" in chart
        assert "* a" in chart and "o b" in chart
        assert "x: x" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "5" in chart

    def test_single_point(self):
        assert ascii_chart({"dot": [(3, 7)]})

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({})
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": []})
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [(0, 0)]}, width=5)

    def test_dimensions_respected(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1)]}, width=40, height=8)
        grid_lines = [line for line in chart.splitlines() if "|" in line]
        assert len(grid_lines) == 8
        assert all(len(line.split("|", 1)[1]) == 40 for line in grid_lines)


class TestNewCliVerbs:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.csv")
        assert main(["gen-trace", "three-cost", path,
                     "--keys", "80", "--requests", "800"]) == 0
        return path

    def test_compare(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["compare", trace_path, "--policies", "camp", "lru",
                     "--ratios", "0.2", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "cost_miss_ratio" in out and "miss_rate" in out
        assert "camp" in out and "lru" in out

    def test_compare_with_chart(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["compare", trace_path, "--policies", "camp", "lru",
                     "--ratios", "0.2", "0.5", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "[chart]" in out

    def test_analyze(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["analyze", trace_path, "--working-set"]) == 0
        out = capsys.readouterr().out
        assert "top-20% key share" in out
        assert "working set growth" in out

    def test_run_with_chart(self, capsys):
        assert main(["run", "fig7", "--scale", "tiny", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "[chart]" in out
