"""Single-flight coalescing in Store and AsyncStore.

The acceptance bar: N concurrent ``get_or_compute`` misses of one key
collapse to **one** loader call and one admission decision — in the
threaded sync store via per-key in-flight flights, and in the asyncio
store via shared load tasks.  Plus the shared-config contract of
``StoreConfig.build_async()`` (outcomes, TTL, persistence).
"""

import asyncio
import threading
import time

import pytest

from repro.cache import AsyncStore, Computed, Outcome, Store, StoreConfig
from repro.errors import ReproError


class TestSyncSingleFlight:
    def test_thundering_herd_pays_one_load(self):
        store = StoreConfig(1 << 20).policy("camp").thread_safe().build()
        calls = []
        barrier = threading.Barrier(12)

        def loader(key):
            calls.append(key)
            time.sleep(0.05)
            return b"x" * 100

        results = []
        results_lock = threading.Lock()

        def worker():
            barrier.wait()
            result = store.get_or_compute("hot", loader)
            with results_lock:
                results.append(result)

        threads = [threading.Thread(target=worker) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert calls == ["hot"]
        assert store.loads == 1
        assert store.coalesced_loads == 11
        leaders = [r for r in results if not r.coalesced]
        followers = [r for r in results if r.coalesced]
        assert len(leaders) == 1 and len(followers) == 11
        assert leaders[0].outcome is Outcome.MISS_INSERTED
        for follower in followers:
            assert follower.value == b"x" * 100
            assert follower.outcome is Outcome.MISS_INSERTED

    def test_distinct_keys_do_not_coalesce(self):
        store = StoreConfig(1 << 20).policy("camp").thread_safe().build()
        calls = []

        def loader(key):
            calls.append(key)
            time.sleep(0.02)
            return key.encode() * 10

        threads = [threading.Thread(
            target=lambda k=f"k{i}": store.get_or_compute(k, loader))
            for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(calls) == [f"k{i}" for i in range(6)]
        assert store.coalesced_loads == 0

    def test_loader_failure_propagates_to_all_waiters_then_clears(self):
        store = StoreConfig(1 << 20).policy("camp").thread_safe().build()
        state = {"raises": True}
        gate = threading.Event()

        def loader(key):
            gate.set()
            time.sleep(0.03)
            if state["raises"]:
                raise RuntimeError("backend down")
            return b"recovered"

        errors = []

        def follower():
            gate.wait()
            try:
                store.get_or_compute("k", loader)
            except RuntimeError as exc:
                errors.append(exc)

        thread = threading.Thread(target=follower)
        thread.start()
        with pytest.raises(RuntimeError):
            store.get_or_compute("k", loader)
        thread.join()
        assert len(errors) == 1
        # the flight is gone: the next call retries the loader
        state["raises"] = False
        result = store.get_or_compute("k", loader)
        assert result.value == b"recovered"
        assert result.resident

    def test_sequential_calls_never_coalesce(self):
        store = StoreConfig(1 << 20).policy("lru").build()
        first = store.get_or_compute("a", lambda k: b"v1")
        second = store.get_or_compute("a", lambda k: b"v2")
        assert not first.coalesced and not second.coalesced
        assert second.hit and second.value == b"v1"
        assert store.coalesced_loads == 0


class TestAsyncStoreCoalescing:
    def test_n_awaiters_one_load(self):
        async def main():
            astore = StoreConfig(1 << 20).policy("camp").build_async()
            calls = []

            async def loader(key):
                calls.append(key)
                await asyncio.sleep(0.02)
                return b"y" * 64

            results = await asyncio.gather(*[
                astore.get_or_compute("hot", loader) for _ in range(100)])
            assert calls == ["hot"]
            assert astore.loads == 1 and astore.coalesced_loads == 99
            assert sum(1 for r in results if r.coalesced) == 99
            assert all(r.value == b"y" * 64 for r in results)
            assert all(r.outcome is Outcome.MISS_INSERTED for r in results)
            assert astore.inflight == 0

        asyncio.run(main())

    def test_sync_loader_accepted(self):
        async def main():
            astore = StoreConfig(1 << 20).policy("camp").build_async()
            result = await astore.get_or_compute("k", lambda key: b"plain")
            assert result.resident and result.value == b"plain"
            hit = await astore.get_or_compute("k", lambda key: b"other")
            assert hit.hit and hit.value == b"plain"

        asyncio.run(main())

    def test_computed_override_controls_size_cost_ttl(self):
        async def main():
            clock = lambda: clock.now  # noqa: E731 - tiny test clock
            clock.now = 0.0
            astore = (StoreConfig(1 << 20).policy("camp")
                      .clock(clock).build_async())

            async def loader(key):
                return Computed(value=b"v", size=500, cost=42.0, ttl=10.0)

            result = await astore.get_or_compute("k", loader)
            assert (result.size, result.cost) == (500, 42.0)
            clock.now = 11.0
            gone = astore.get("k")
            assert gone.outcome is Outcome.EXPIRED

        asyncio.run(main())

    def test_loader_failure_shared_then_retry_works(self):
        async def main():
            astore = StoreConfig(1 << 20).policy("camp").build_async()
            attempts = []

            async def failing(key):
                attempts.append(key)
                await asyncio.sleep(0.01)
                raise ValueError("boom")

            results = await asyncio.gather(
                *[astore.get_or_compute("k", failing) for _ in range(5)],
                return_exceptions=True)
            assert len(attempts) == 1
            assert all(isinstance(r, ValueError) for r in results)
            assert astore.inflight == 0
            result = await astore.get_or_compute("k", lambda key: b"ok")
            assert result.resident

        asyncio.run(main())

    def test_cancelled_waiter_does_not_cancel_the_load(self):
        async def main():
            astore = StoreConfig(1 << 20).policy("camp").build_async()
            calls = []

            async def loader(key):
                calls.append(key)
                await asyncio.sleep(0.05)
                return b"survives"

            tasks = [asyncio.ensure_future(astore.get_or_compute("k", loader))
                     for _ in range(3)]
            await asyncio.sleep(0.01)
            tasks[0].cancel()
            done = await asyncio.gather(*tasks, return_exceptions=True)
            assert isinstance(done[0], asyncio.CancelledError)
            assert done[1].value == b"survives"
            assert done[2].value == b"survives"
            assert calls == ["k"]
            # the value landed in the cache despite the cancellation
            assert astore.get("k").hit

        asyncio.run(main())

    def test_rejected_admission_still_hands_back_value(self):
        async def main():
            # a store too small for the loaded value: outcome reports
            # the rejection, but the caller still gets its bytes
            astore = StoreConfig(256).policy("camp").build_async()
            result = await astore.get_or_compute(
                "big", lambda key: b"z" * 10_000)
            assert result.outcome is Outcome.MISS_REJECTED_TOO_LARGE
            assert result.value == b"z" * 10_000
            assert not result.resident

        asyncio.run(main())


class TestBuildAsyncSharedConfig:
    def test_wraps_same_store_surface(self):
        astore = (StoreConfig(1 << 20).policy("camp", precision=4)
                  .track_metrics().build_async())
        assert isinstance(astore, AsyncStore)
        assert isinstance(astore.store, Store)
        astore.put("a", 100, 2.0, value=b"v")
        assert "a" in astore and len(astore) == 1
        assert astore.get("a").hit
        batch = astore.get_many(["a", "b"])
        assert batch.hits == 1
        assert astore.metrics is astore.store.metrics
        astore.check_consistency()

    def test_persistence_round_trip_through_async(self, tmp_path):
        directory = str(tmp_path / "state")

        async def write_side():
            astore = (StoreConfig(1 << 20).policy("camp")
                      .persistence(directory).build_async())
            await astore.get_or_compute("k", lambda key: b"durable",
                                        cost=5.0)
            generation = await astore.save()
            astore.persistence.close()
            return generation

        generation = asyncio.run(write_side())
        assert generation >= 1

        async def read_side():
            astore = (StoreConfig(1 << 20).policy("camp")
                      .persistence(directory).build_async())
            assert astore.last_recovery is not None
            assert astore.last_recovery.recovered
            result = await astore.get_or_compute(
                "k", lambda key: pytest.fail("value should be restored"))
            assert result.hit and result.value == b"durable"
            astore.persistence.close()

        asyncio.run(read_side())

    def test_save_without_persistence_raises(self):
        async def main():
            astore = StoreConfig(1 << 20).policy("camp").build_async()
            with pytest.raises(ReproError):
                await astore.save()

        asyncio.run(main())
