"""Repo-tooling guards that keep the test/benchmark layout collectable.

``tests/`` and ``benchmarks/`` are collected in one pytest run without
package ``__init__`` files, so two test modules sharing a basename break
collection with an import-file-mismatch error.  This guard makes the
clash a loud, attributable failure instead of a confusing one.
"""

import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent


def test_no_test_basename_clash_between_tests_and_benchmarks():
    test_names = {path.name for path in (REPO / "tests").glob("test_*.py")}
    bench_names = {path.name
                   for path in (REPO / "benchmarks").glob("test_*.py")}
    clashes = sorted(test_names & bench_names)
    assert not clashes, (
        f"test module basenames duplicated across tests/ and benchmarks/ "
        f"break pytest collection: {clashes}; rename one side "
        f"(see tests/test_tenancy_subsystem.py vs benchmarks/test_tenancy.py)")


def test_all_test_basenames_unique_repo_wide():
    seen = {}
    for directory in ("tests", "benchmarks"):
        for path in sorted((REPO / directory).glob("test_*.py")):
            assert path.name not in seen, (
                f"{path} duplicates {seen[path.name]}")
            seen[path.name] = path


def test_ci_workflow_runs_tier1_and_bench_smoke():
    workflow = REPO / ".github" / "workflows" / "ci.yml"
    text = workflow.read_text(encoding="utf-8")
    assert "pytest" in text
    assert "REPRO_BENCH_SCALE=tiny" in text, (
        "CI lost the benchmark smoke job; the perf harness can rot "
        "silently without it")
