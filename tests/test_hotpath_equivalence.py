"""Decision equivalence: optimized CAMP vs the frozen seed CAMP (PR 5).

The hot-path rewrite (inlined ratio arithmetic, direct link splices,
queue recycling, multiplier-change reround skip, stats toggle) must not
move a single eviction: every (outcome sequence, eviction sequence,
final residency, L, seq) produced by :class:`CampPolicy` — stats
accounting on and off — must be byte-identical to
:class:`repro.core.camp_reference.ReferenceCampPolicy`, the seed
implementation kept verbatim for exactly this comparison.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.kvs import KVS
from repro.core.camp import CampPolicy
from repro.core.camp_reference import ReferenceCampPolicy

_COSTS = st.one_of(
    st.integers(min_value=0, max_value=20_000),
    st.floats(min_value=0.0, max_value=500.0,
              allow_nan=False, allow_infinity=False),
)

_REQUESTS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=60),   # key id
              st.integers(min_value=1, max_value=400),  # size
              _COSTS),
    min_size=20, max_size=400)


def _drive(policy, requests, capacity):
    """Replay lookup/insert-on-miss; return every observable decision."""
    kvs = KVS(capacity, policy)
    evictions = []

    class _Recorder:
        def on_insert(self, item):
            pass

        def on_evict(self, item, explicit):
            evictions.append((item.key, explicit))

    kvs.add_listener(_Recorder())
    outcomes = []
    for key_id, size, cost in requests:
        key = f"k{key_id}"
        outcome = kvs.lookup(key)
        outcomes.append(outcome)
        if outcome.name != "HIT":
            outcomes.append(kvs.insert(key, size, cost))
    resident = sorted(item.key for item in kvs.resident_items())
    return outcomes, evictions, resident, policy


class TestOptimizedMatchesReference:
    @settings(max_examples=120, deadline=None)
    @given(requests=_REQUESTS,
           capacity=st.integers(min_value=200, max_value=8_000),
           precision=st.sampled_from([1, 3, 5, None]),
           reround=st.booleans(),
           stats=st.booleans())
    def test_decisions_identical(self, requests, capacity, precision,
                                 reround, stats):
        optimized = _drive(
            CampPolicy(precision=precision, reround_on_hit=reround,
                       stats=stats), requests, capacity)
        reference = _drive(
            ReferenceCampPolicy(precision=precision,
                                reround_on_hit=reround),
            requests, capacity)
        assert optimized[0] == reference[0]      # outcome sequence
        assert optimized[1] == reference[1]      # eviction sequence
        assert optimized[2] == reference[2]      # final residency
        assert optimized[3].inflation == reference[3].inflation
        assert optimized[3]._seq == reference[3]._seq
        optimized[3].check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(requests=_REQUESTS,
           capacity=st.integers(min_value=200, max_value=8_000))
    def test_stats_accounting_identical_when_enabled(self, requests,
                                                     capacity):
        """With stats on, even the measurement counters must agree."""
        optimized = _drive(CampPolicy(precision=5, stats=True),
                           requests, capacity)
        reference = _drive(ReferenceCampPolicy(precision=5),
                           requests, capacity)
        assert optimized[3].stats() == reference[3].stats()

    def test_long_trace_equivalence(self):
        """>= 10k requests, deterministic — the PR's headline pin."""
        rng = random.Random(1729)
        requests = []
        for _ in range(12_000):
            requests.append((rng.randint(0, 500),
                             rng.randint(1, 2_000),
                             rng.choice([1, 100, 10_000,
                                         rng.random() * 250.0])))
        for stats in (False, True):
            optimized = _drive(CampPolicy(precision=5, stats=stats),
                               requests, 60_000)
            reference = _drive(ReferenceCampPolicy(precision=5),
                               requests, 60_000)
            assert optimized[0] == reference[0]
            assert optimized[1] == reference[1]
            assert optimized[2] == reference[2]
            optimized[3].check_invariants()
        assert len(optimized[1]) > 1_000, "trace must exercise eviction"
