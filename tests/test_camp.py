"""CAMP tests: structural invariants, GDS equivalence, queue-count bounds.

The single most important test in this repository is
``TestGdsEquivalence``: with rounding disabled (precision=None) CAMP must
make *exactly* the same eviction decisions as the heap-per-item GDS — the
paper's claim that CAMP "is essentially equivalent to GDS at the highest
precision" with LRU tie-breaking.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CampPolicy, GdsPolicy, distinct_value_bound
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)


def drive(policy, trace, max_resident):
    """Feed (key, size, cost) requests; returns the eviction sequence."""
    evictions = []
    sizes = {}
    costs = {}
    for key, size, cost in trace:
        size = sizes.setdefault(key, size)
        cost = costs.setdefault(key, cost)
        if key in policy:
            policy.on_hit(key)
        else:
            while len(policy) >= max_resident:
                evictions.append(policy.pop_victim())
            policy.on_insert(key, size, cost)
    return evictions


def random_trace(seed, n_requests=600, n_keys=40, costs=(1, 100, 10_000),
                 max_size=64):
    rng = random.Random(seed)
    key_cost = {i: rng.choice(costs) for i in range(n_keys)}
    key_size = {i: rng.randrange(1, max_size) for i in range(n_keys)}
    trace = []
    for _ in range(n_requests):
        k = min(int(rng.paretovariate(1.2)), n_keys - 1)  # skewed
        trace.append((f"k{k}", key_size[k], key_cost[k]))
    return trace


class TestBasicSemantics:
    def test_evicts_cheapest_ratio_first(self):
        camp = CampPolicy()
        camp.on_insert("dear", 10, 10_000)
        camp.on_insert("cheap", 10, 1)
        assert camp.pop_victim() == "cheap"

    def test_lru_within_queue(self):
        camp = CampPolicy()
        camp.on_insert("a", 10, 100)
        camp.on_insert("b", 10, 100)
        camp.on_insert("c", 10, 100)
        camp.on_hit("a")
        assert camp.pop_victim() == "b"
        assert camp.pop_victim() == "c"
        assert camp.pop_victim() == "a"

    def test_tie_break_across_queues_is_lru(self):
        """Heads with equal H evict in least-recently-requested order."""
        camp = CampPolicy(precision=None)
        camp.on_insert("q1-item", 10, 50)   # ratio 5, H = 5
        camp.on_insert("q2-item", 10, 50)   # same queue actually
        camp.on_insert("q3-item", 2, 10)    # ratio 5 via different ints?
        # construct real distinct queues with equal H instead:
        camp2 = CampPolicy(precision=None)
        camp2.on_insert("x", 1, 7)   # ratio 7, H=7
        camp2.on_insert("y", 2, 14)  # ratio 7 as well but size differs
        assert camp2.queue_count >= 1
        first = camp2.pop_victim()
        assert first == "x"  # inserted earlier

    def test_hit_moves_to_queue_tail(self):
        camp = CampPolicy()
        camp.on_insert("a", 10, 100)
        camp.on_insert("b", 10, 100)
        camp.on_hit("a")
        queue_key = camp._entries["a"].ratio_key
        entries = list(camp.iter_queue(queue_key))
        assert entries[-1].item.key == "a"
        camp.check_invariants()

    def test_inflation_non_decreasing(self):
        camp = CampPolicy()
        trace = random_trace(11)
        previous = camp.inflation
        sizes = {}
        for key, size, cost in trace:
            size = sizes.setdefault(key, size)
            if key in camp:
                camp.on_hit(key)
            else:
                while len(camp) >= 12:
                    camp.pop_victim()
                camp.on_insert(key, size, cost)
            assert camp.inflation >= previous
            previous = camp.inflation

    def test_aged_expensive_pair_is_eventually_evicted(self):
        """Paper: 'CAMP is robust enough to prevent an aged expensive
        key-value pair from occupying memory indefinitely.'"""
        camp = CampPolicy()
        camp.on_insert("expensive", 10, 1000)
        evicted = []
        # H(expensive) ~ 1000; with 10 resident slots L climbs by roughly 1
        # per 10 evictions, so 20_000 cheap misses push L well past it
        for i in range(20_000):
            key = f"cheap{i % 20}"
            if key in camp:
                camp.on_hit(key)
            else:
                while len(camp) >= 10:
                    evicted.append(camp.pop_victim())
                camp.on_insert(key, 10, 1)
        assert "expensive" in evicted


class TestQueueManagement:
    def test_queue_count_grows_with_distinct_ratios(self):
        camp = CampPolicy(precision=None)
        for i, cost in enumerate([1, 2, 4, 8, 16]):
            camp.on_insert(f"k{i}", 1, cost)
        assert camp.queue_count == 5

    def test_same_ratio_shares_queue(self):
        camp = CampPolicy()
        for i in range(10):
            camp.on_insert(f"k{i}", 10, 100)
        assert camp.queue_count == 1
        assert camp.queue_lengths() == {camp._entries["k0"].ratio_key: 10}

    def test_queue_removed_when_empty(self):
        camp = CampPolicy()
        camp.on_insert("only", 10, 100)
        camp.pop_victim()
        assert camp.queue_count == 0

    def test_low_precision_collapses_queues(self):
        rng = random.Random(5)
        costs = [rng.randrange(1, 10_000) for _ in range(200)]
        coarse = CampPolicy(precision=1)
        fine = CampPolicy(precision=None)
        for i, cost in enumerate(costs):
            coarse.on_insert(f"k{i}", 10, cost)
            fine.on_insert(f"k{i}", 10, cost)
        assert coarse.queue_count <= fine.queue_count
        assert coarse.queue_count <= distinct_value_bound(10_000, 1)

    @pytest.mark.parametrize("precision", [1, 2, 3, 5, 8])
    def test_proposition2_bound_on_queue_count(self, precision):
        """Non-empty queues never exceed the Prop-2 bound for observed U."""
        camp = CampPolicy(precision=precision)
        rng = random.Random(precision)
        max_ratio = 1
        for i in range(500):
            size = rng.randrange(1, 100)
            cost = rng.randrange(0, 100_000)
            camp.on_insert(f"k{i}", size, cost)
            max_ratio = max(max_ratio,
                            camp.converter.to_integer(cost, size))
            assert camp.queue_count <= distinct_value_bound(max_ratio,
                                                            precision)
        camp.check_invariants()

    def test_multiplier_growth_migrates_on_hit(self):
        """When the adaptive max size grows, a hit re-rounds the ratio."""
        camp = CampPolicy(precision=None)
        camp.on_insert("a", 1, 3)          # multiplier 1, ratio 3
        old_queue = camp._entries["a"].ratio_key
        camp.on_insert("big", 100, 1)      # multiplier grows to 100
        camp.on_hit("a")                   # re-round: 3 * 100 / 1 = 300
        new_queue = camp._entries["a"].ratio_key
        assert new_queue != old_queue
        assert new_queue == 300
        camp.check_invariants()

    def test_reround_on_hit_disabled_keeps_queue(self):
        camp = CampPolicy(precision=None, reround_on_hit=False)
        camp.on_insert("a", 1, 3)
        old_queue = camp._entries["a"].ratio_key
        camp.on_insert("big", 100, 1)
        camp.on_hit("a")
        assert camp._entries["a"].ratio_key == old_queue


class TestErrors:
    def test_invalid_precision(self):
        with pytest.raises(ConfigurationError):
            CampPolicy(precision=0)

    def test_duplicate_insert(self):
        camp = CampPolicy()
        camp.on_insert("a", 1, 1)
        with pytest.raises(DuplicateKeyError):
            camp.on_insert("a", 1, 1)

    def test_hit_missing(self):
        with pytest.raises(MissingKeyError):
            CampPolicy().on_hit("ghost")

    def test_remove_missing(self):
        with pytest.raises(MissingKeyError):
            CampPolicy().on_remove("ghost")

    def test_evict_empty(self):
        with pytest.raises(EvictionError):
            CampPolicy().pop_victim()

    def test_explicit_remove(self):
        camp = CampPolicy()
        camp.on_insert("a", 1, 1)
        camp.on_insert("b", 1, 1)
        camp.on_remove("a")
        assert "a" not in camp
        assert len(camp) == 1
        camp.check_invariants()


class TestGdsEquivalence:
    """CAMP(precision=∞) must equal GDS decision-for-decision."""

    @pytest.mark.parametrize("seed", range(6))
    def test_eviction_sequences_identical(self, seed):
        trace = random_trace(seed)
        camp_evictions = drive(CampPolicy(precision=None), trace, 12)
        gds_evictions = drive(GdsPolicy(), trace, 12)
        assert camp_evictions == gds_evictions

    @pytest.mark.parametrize("seed", range(3))
    def test_equivalence_with_variable_sizes(self, seed):
        trace = random_trace(seed + 100, costs=(1, 7, 33, 911), max_size=512)
        camp_evictions = drive(CampPolicy(precision=None), trace, 20)
        gds_evictions = drive(GdsPolicy(), trace, 20)
        assert camp_evictions == gds_evictions

    def test_equivalence_with_unit_everything(self):
        """Uniform cost & size: both reduce to LRU order."""
        trace = [(f"k{i % 7}", 1, 1) for i in range(100)]
        camp_evictions = drive(CampPolicy(precision=None), trace, 4)
        gds_evictions = drive(GdsPolicy(), trace, 4)
        assert camp_evictions == gds_evictions

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 32),
                              st.integers(0, 5000)),
                    min_size=1, max_size=250),
           st.integers(2, 10))
    def test_equivalence_property(self, raw, max_resident):
        trace = [(f"k{k}", s, c) for k, s, c in raw]
        camp = CampPolicy(precision=None)
        camp_evictions = drive(camp, trace, max_resident)
        gds_evictions = drive(GdsPolicy(), trace, max_resident)
        assert camp_evictions == gds_evictions
        camp.check_invariants()

    @pytest.mark.parametrize("precision", [1, 3, 5])
    def test_rounded_camp_close_to_gds_cost(self, precision):
        """At finite precision decisions may differ, but resident sets stay
        plausible: CAMP still prefers high-ratio pairs overall."""
        trace = random_trace(77, n_requests=2000)
        camp = CampPolicy(precision=precision)
        drive(camp, trace, 15)
        camp.check_invariants()
        resident_costs = [camp._entries[k].item.cost for k in camp._entries]
        # with skewed {1,100,10K} costs and only 15 slots, the resident set
        # should be dominated by non-minimal costs
        assert sum(c > 1 for c in resident_costs) >= len(resident_costs) // 2


class TestInvariantsUnderRandomOps:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 12), st.integers(1, 64),
                              st.integers(0, 10_000)),
                    min_size=1, max_size=150),
           st.integers(1, 8), st.sampled_from([1, 2, 5, None]))
    def test_check_invariants_always_passes(self, raw, max_resident, precision):
        camp = CampPolicy(precision=precision)
        sizes = {}
        costs = {}
        for key_id, size, cost in raw:
            key = f"k{key_id}"
            size = sizes.setdefault(key, size)
            cost = costs.setdefault(key, cost)
            if key in camp:
                camp.on_hit(key)
            else:
                while len(camp) >= max_resident:
                    camp.pop_victim()
                camp.on_insert(key, size, cost)
            camp.check_invariants()


class TestStats:
    def test_heap_updates_far_fewer_than_gds(self):
        """The paper's efficiency claim, in miniature (Figure 4)."""
        trace = random_trace(123, n_requests=3000, n_keys=60)
        camp = CampPolicy(precision=5)
        gds = GdsPolicy()
        drive(camp, trace, 30)
        drive(gds, trace, 30)
        assert camp.stats()["heap_node_visits"] < gds.stats()["heap_node_visits"]
        assert camp.stats()["heap_updates"] < gds.stats()["heap_updates"]

    def test_stats_keys(self):
        camp = CampPolicy()
        camp.on_insert("a", 1, 1)
        stats = camp.stats()
        for field in ("heap_node_visits", "heap_updates", "queue_count",
                      "queues_created", "max_queues", "inflation",
                      "multiplier"):
            assert field in stats

    def test_reset_stats(self):
        camp = CampPolicy()
        camp.on_insert("a", 1, 1)
        camp.reset_stats()
        assert camp.stats()["heap_node_visits"] == 0
