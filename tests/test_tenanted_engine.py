"""TenantedEngine: per-tenant twemcache isolation, engine and protocol."""

import pytest

from repro.errors import ConfigurationError
from repro.tenancy import TenantedEngine
from repro.twemcache import SocketClient, TwemcacheServer


def make_engine(**kwargs):
    defaults = dict(memory_bytes=2 << 20,
                    tenant_shares={"a": 0.5, "b": 0.5},
                    eviction="camp", slab_size=1 << 16)
    defaults.update(kwargs)
    return TenantedEngine(**defaults)


class TestRouting:
    def test_set_get_routed_by_prefix(self):
        engine = make_engine()
        assert engine.set("a:k", b"va", cost=5)
        assert engine.set("b:k", b"vb", cost=7)
        assert engine.get("a:k").value == b"va"
        assert engine.get("b:k").value == b"vb"
        assert "a:k" in engine.engine("a")
        assert "a:k" not in engine.engine("b")
        assert len(engine) == 2

    def test_unroutable_key_refused_not_fatal(self):
        engine = make_engine()
        assert not engine.set("ghost:k", b"v")
        assert engine.get("ghost:k") is None
        assert not engine.delete("ghost:k")
        assert engine.rejected_unroutable >= 3

    def test_default_tenant_catches_unprefixed_keys(self):
        engine = make_engine(tenant_shares={"a": 0.5, "shared": 0.5},
                             default_tenant="shared")
        assert engine.set("plainkey", b"v")
        assert engine.get("plainkey").value == b"v"
        assert "plainkey" in engine.engine("shared")
        # membership uses the same default-tenant fallback as get/set
        assert "plainkey" in engine
        assert "missing" not in engine

    def test_share_below_one_slab_rejected_loudly(self):
        with pytest.raises(ConfigurationError):
            make_engine(memory_bytes=1 << 20,
                        tenant_shares={"a": 0.01, "b": 0.99},
                        slab_size=1 << 16)

    def test_incr_decr_touch_routed(self):
        engine = make_engine()
        engine.set("a:n", b"10")
        assert engine.incr("a:n", 5) == 15
        assert engine.decr("a:n", 20) == 0
        assert engine.touch("a:n", 100)
        assert engine.touch_cost("a:n", 3.5)
        assert engine.get("a:n").cost == 3.5
        assert engine.incr("ghost:n", 1) is None

    def test_flush_all_clears_every_tenant(self):
        engine = make_engine()
        engine.set("a:k", b"1")
        engine.set("b:k", b"2")
        engine.flush_all()
        assert len(engine) == 0

    def test_aggregate_and_per_tenant_stats(self):
        engine = make_engine()
        engine.set("a:k", b"1")
        engine.get("a:k")
        engine.get("b:missing")
        stats = engine.stats()
        assert stats["items"] == 1
        assert stats["a_items"] == 1
        assert stats["b_items"] == 0
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["tenants"] == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_engine(tenant_shares={})
        with pytest.raises(ConfigurationError):
            make_engine(tenant_shares={"a": 0.7, "b": 0.7})
        with pytest.raises(ConfigurationError):
            make_engine(tenant_shares={"a": 0.0})
        with pytest.raises(ConfigurationError):
            make_engine(default_tenant="nope")


class TestEngineIsolation:
    def test_flood_cannot_evict_other_tenant(self):
        """Tenant b churns far past its arena; tenant a loses nothing."""
        engine = make_engine(memory_bytes=1 << 20, slab_size=1 << 14)
        working_set = [f"a:w{index}" for index in range(20)]
        for key in working_set:
            assert engine.set(key, b"x" * 512, cost=10_000)
        for index in range(2000):
            engine.set(f"b:flood{index}", b"y" * 512, cost=1)
        for key in working_set:
            assert engine.get(key) is not None, f"{key} was evicted"
        assert engine.engine("b").evictions > 0
        engine.check_consistency()


@pytest.fixture()
def tenanted_server():
    engine = make_engine(memory_bytes=1 << 20, slab_size=1 << 14)
    server = TwemcacheServer(engine).start()
    yield server
    server.stop()


class TestProtocolIsolation:
    def test_two_prefixes_cannot_evict_each_other(self, tenanted_server):
        """The satellite claim, at the socket level: a flood of one prefix
        never pushes another prefix's working set below its floor — here
        the partition *is* the floor, so the victim set is empty."""
        with SocketClient(tenanted_server.address) as client:
            keep = {f"a:keep{index}": f"value-{index}".encode()
                    for index in range(25)}
            for key, value in keep.items():
                assert client.set(key, value + b"!" * 400, cost=10_000)
            for index in range(1500):
                client.set(f"b:junk{index}", b"z" * 500, cost=1)
            for key, value in keep.items():
                got = client.get(key)
                assert got is not None, f"{key} evicted by tenant b"
                assert got.value == value + b"!" * 400
        tenanted_server.engine.check_consistency()

    def test_round_trip_and_stats_over_sockets(self, tenanted_server):
        with SocketClient(tenanted_server.address) as client:
            assert client.set("a:x", b"1", cost=3)
            assert client.get("a:x").value == b"1"
            assert client.delete("a:x")
            stats = client.stats()
            assert stats["tenants"] == 2
            # unroutable keys degrade to miss/NOT_STORED, not errors
            assert not client.set("noprefix", b"v")
            assert client.get("noprefix") is None
