"""Live cluster tier: ClusterClient routing over real servers.

In-process :class:`AsyncTwemcacheServer` instances (threaded lifecycle)
stand in for the node fleet so these run in milliseconds; the
subprocess path (``repro.cluster.node`` + ``ClusterSupervisor``) gets
its own slower tests at the bottom.  Together they cover the
`CooperativeCluster` semantics reproduced over sockets: replica
writes, replica read on primary miss, read-repair toward the primary,
failover with backoff, bounded movement on membership change, and
warm rejoin.
"""

import asyncio

import pytest

from repro.cluster import ClusterClient, ClusterSupervisor
from repro.cluster.loadgen import cost_for, key_name, value_for
from repro.errors import ConfigurationError
from repro.twemcache import (
    AsyncSocketClient,
    AsyncTwemcacheServer,
    TwemcacheEngine,
)


def fresh_engine() -> TwemcacheEngine:
    return TwemcacheEngine(4 << 20, eviction="camp", slab_size=1 << 16)


def run(coro):
    return asyncio.run(coro)


class _Fleet:
    """Three threaded servers + address map, torn down reliably."""

    def __init__(self, names=("n0", "n1", "n2")):
        self.servers = {}
        for name in names:
            self.servers[name] = AsyncTwemcacheServer(fresh_engine()).start()
        self.addresses = {name: server.address
                          for name, server in self.servers.items()}

    def engine(self, name) -> TwemcacheEngine:
        return self.servers[name].engine

    def stop(self):
        for server in self.servers.values():
            server.stop()


@pytest.fixture()
def fleet():
    built = _Fleet()
    yield built
    built.stop()


def entries_for(count, size=40):
    return [(key_name(i), value_for(i, size), 0, 0, cost_for(i))
            for i in range(count)]


class TestRoutedOperations:
    def test_set_many_replicates_to_preference_list(self, fleet):
        async def main():
            async with ClusterClient(fleet.addresses, replicas=2) as client:
                stored = await client.set_many(entries_for(60))
                assert all(stored)
                for i in range(60):
                    holders = client.holders(key_name(i))
                    assert len(holders) == 2
                    for name in holders:
                        assert key_name(i) in fleet.engine(name)
                    for name in set(fleet.addresses) - set(holders):
                        assert key_name(i) not in fleet.engine(name)

        run(main())

    def test_get_many_round_trips_values_and_costs(self, fleet):
        async def main():
            async with ClusterClient(fleet.addresses, replicas=2) as client:
                await client.set_many(entries_for(60))
                found = await client.get_many(
                    [key_name(i) for i in range(60)])
                assert len(found) == 60
                for i in range(60):
                    assert found[key_name(i)].value == value_for(i, 40)
                    assert found[key_name(i)].cost == cost_for(i)
                assert client.counters["primary_hits"] == 60
                assert client.counters["misses"] == 0

        run(main())

    def test_single_key_surface_and_delete(self, fleet):
        async def main():
            async with ClusterClient(fleet.addresses, replicas=2) as client:
                assert await client.set("k", b"v", cost=3)
                got = await client.get("k")
                assert got is not None and got.value == b"v"
                assert await client.delete("k")
                assert await client.get("k") is None
                assert not await client.delete("k")

        run(main())

    def test_replica_read_repairs_primary(self, fleet):
        """`CooperativeCluster.get`'s "remote" outcome over sockets: a
        primary miss is served by the next holder and the pair is
        re-replicated toward the primary — with its real cost."""
        async def main():
            async with ClusterClient(fleet.addresses, replicas=2) as client:
                await client.set("pair", b"payload", cost=17)
                primary = client.holders("pair")[0]
                assert fleet.engine(primary).delete("pair")
                got = await client.get("pair")
                assert got is not None and got.value == b"payload"
                assert client.counters["replica_hits"] == 1
                assert client.counters["read_repairs"] == 1
                repaired = fleet.engine(primary).get("pair")
                assert repaired is not None
                assert repaired.cost == 17   # gets carried the cost over

        run(main())

    def test_requires_nodes_and_replicas(self):
        with pytest.raises(ConfigurationError):
            ClusterClient({})
        with pytest.raises(ConfigurationError):
            ClusterClient({"a": ("127.0.0.1", 1)}, replicas=0)


class TestFailover:
    def test_dead_node_degrades_to_replicas_without_errors(self, fleet):
        async def main():
            now = [0.0]
            client = ClusterClient(fleet.addresses, replicas=2, timeout=2,
                                   backoff_base=30.0, backoff_max=30.0,
                                   clock=lambda: now[0])
            try:
                keys = [key_name(i) for i in range(80)]
                assert all(await client.set_many(entries_for(80)))
                fleet.servers["n0"].stop()

                found = await client.get_many(keys)
                assert len(found) == 80          # replicas carried n0's keys
                assert client.counters["node_failures"] >= 1
                assert client.counters["replica_hits"] > 0
                assert "n0" in client.down_nodes()

                # inside the backoff window the dead node is not re-dialed:
                # the second sweep fails over silently, no new failures
                failures = client.counters["node_failures"]
                assert len(await client.get_many(keys)) == 80
                assert client.counters["node_failures"] == failures
                assert client.counters["failovers"] > 0

                # bounce the node (same port, empty engine), let the
                # backoff lapse: the probe revives it and read-repair
                # refills it on demand
                host, port = fleet.addresses["n0"]
                fleet.servers["n0"] = AsyncTwemcacheServer(
                    fresh_engine(), host, port).start()
                now[0] = 60.0
                assert len(await client.get_many(keys)) == 80
                assert client.down_nodes() == []
                n0_keys = [k for k in keys if client.holders(k)[0] == "n0"]
                repaired = [k for k in n0_keys
                            if k in fleet.engine("n0")]
                assert repaired, "read-repair never refilled the bounced node"
            finally:
                await client.close()

        run(main())

    def test_writes_survive_a_dead_holder(self, fleet):
        async def main():
            now = [0.0]
            client = ClusterClient(fleet.addresses, replicas=2, timeout=2,
                                   backoff_base=30.0, backoff_max=30.0,
                                   clock=lambda: now[0])
            try:
                fleet.servers["n1"].stop()
                stored = await client.set_many(entries_for(40))
                # every entry found at least one live holder (3-node ring,
                # 2 replicas: at most one holder was the dead node)
                assert all(stored)
                found = await client.get_many(
                    [key_name(i) for i in range(40)])
                assert len(found) == 40
            finally:
                await client.close()

        run(main())

    def test_all_holders_down_reports_false_not_raise(self):
        # ports with nothing listening: every dial fails
        import socket
        probes = [socket.socket() for _ in range(2)]
        addresses = {}
        for i, probe in enumerate(probes):
            probe.bind(("127.0.0.1", 0))
            addresses[f"d{i}"] = probe.getsockname()
        for probe in probes:
            probe.close()

        async def main():
            async with ClusterClient(addresses, replicas=2,
                                     timeout=1) as client:
                stored = await client.set_many(entries_for(4))
                assert stored == [False] * 4
                found = await client.get_many(
                    [key_name(i) for i in range(4)])
                assert found == {}
                assert client.counters["misses"] == 4

        run(main())


class TestMembership:
    def test_add_node_moves_bounded_keys_and_loses_none(self, fleet):
        async def main():
            async with ClusterClient(fleet.addresses, replicas=2) as client:
                keys = [key_name(i) for i in range(150)]
                await client.set_many(entries_for(150))
                before = {k: client.holders(k)[0] for k in keys}

                extra = AsyncTwemcacheServer(fresh_engine()).start()
                try:
                    client.add_node("n3", *extra.address)
                    n_nodes = 4
                    moved = [k for k in keys
                             if client.holders(k)[0] != before[k]]
                    assert len(moved) / len(keys) < 2 / n_nodes
                    assert moved, "a joined node should take some keys"
                    # nothing is lost: moved primaries fall through to
                    # their old holder (still on the preference list)
                    # and read-repair warms the new node
                    found = await client.get_many(keys)
                    assert len(found) == 150
                    assert any(k in extra.engine for k in moved)
                finally:
                    extra.stop()

        run(main())

    def test_remove_node_moves_bounded_keys(self, fleet):
        async def main():
            async with ClusterClient(fleet.addresses, replicas=2) as client:
                keys = [key_name(i) for i in range(150)]
                before = {k: client.holders(k)[0] for k in keys}
                await client.remove_node("n2")
                moved = [k for k in keys
                         if client.holders(k)[0] != before[k]]
                # only keys the removed node owned re-home
                assert all(before[k] == "n2" for k in moved)
                assert len(moved) / len(keys) < 2 / 3

        run(main())


class TestSupervisorSubprocesses:
    def test_graceful_bounce_rejoins_warm(self, tmp_path):
        supervisor = ClusterSupervisor(["solo"], memory_bytes=4 << 20,
                                       state_dir=str(tmp_path))
        with supervisor:
            address = supervisor.addresses()["solo"]
            assert supervisor.is_running("solo")
            assert (tmp_path / "cluster.json").exists()

            async def fill():
                async with AsyncSocketClient(address) as client:
                    for i in range(40):
                        assert await client.set(key_name(i), b"x" * 32,
                                                cost=cost_for(i))

            run(fill())
            supervisor.stop_node("solo")     # SIGTERM: drain + snapshot
            assert not supervisor.is_running("solo")
            assert (tmp_path / "solo.snapshot").exists()

            recovered = supervisor.restart("solo")
            assert recovered == 40
            assert supervisor.recovered_items("solo") == 40
            assert supervisor.addresses()["solo"] == address

            async def verify():
                async with AsyncSocketClient(address) as client:
                    found = await client.get_many(
                        [key_name(i) for i in range(40)], with_cost=True)
                    assert len(found) == 40
                    for i in range(40):
                        assert found[key_name(i)].cost == cost_for(i)

            run(verify())
