"""CLI tests (argument parsing and end-to-end subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.scale == "default"
        assert args.experiments == ["table1"]

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--scale", "huge"])

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "t.csv",
                                       "--policy", "quantum"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "table1" in out

    def test_policies_lists_every_registry_entry_with_kwargs(self, capsys):
        from repro.core import policy_names
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in policy_names():
            assert name in out
        # registered kwargs are discoverable without reading source
        assert "precision=5" in out          # camp
        assert "shards=4" in out             # camp-sharded
        assert "CampPolicy(" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "101100000" in out

    def test_run_csv(self, capsys):
        assert main(["run", "table1", "--scale", "tiny", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "value,regular rounding,CAMP rounding" in out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99", "--scale", "tiny"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_gen_and_simulate(self, tmp_path, capsys):
        path = str(tmp_path / "trace.csv")
        assert main(["gen-trace", "three-cost", path,
                     "--keys", "100", "--requests", "1000"]) == 0
        out = capsys.readouterr().out
        assert "wrote 1000 requests" in out
        assert main(["simulate", path, "--policy", "camp",
                     "--ratio", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "cost-miss ratio" in out
        assert "miss rate" in out

    def test_simulate_all_registered_policies(self, tmp_path, capsys):
        path = str(tmp_path / "trace.csv")
        main(["gen-trace", "three-cost", path,
              "--keys", "50", "--requests", "400"])
        capsys.readouterr()
        for policy in ("lru", "gds", "pooled-lru", "arc"):
            assert main(["simulate", path, "--policy", policy]) == 0
            capsys.readouterr()

    def test_tenancy_prints_three_tables(self, capsys):
        assert main(["tenancy", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "total miss cost by scheme" in out
        assert "arbitrated per-tenant breakdown" in out
        assert "allocation timeline" in out
        assert "shared-camp" in out and "static-50/50" in out

    def test_tenancy_csv(self, capsys):
        assert main(["tenancy", "--scale", "tiny", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "scheme,total_miss_cost" in out

    @pytest.mark.parametrize("kind", ["var-size", "equi-size", "bg",
                                      "phased"])
    def test_gen_trace_kinds(self, tmp_path, capsys, kind):
        path = str(tmp_path / f"{kind}.csv.gz")
        assert main(["gen-trace", kind, path,
                     "--keys", "50", "--requests", "500"]) == 0
        assert "wrote" in capsys.readouterr().out


class TestPersistCommands:
    def _trace(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        assert main(["gen-trace", "three-cost", path,
                     "--keys", "80", "--requests", "2000"]) == 0
        return path

    def test_persist_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["persist"])

    def test_save_inspect_restore_compact_round_trip(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        state = str(tmp_path / "state")
        assert main(["persist", "save", trace, state, "--ratio", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "snapshot generation" in out

        assert main(["persist", "inspect", state]) == 0
        out = capsys.readouterr().out
        assert "policy camp" in out and "clean" in out

        assert main(["persist", "restore", state]) == 0
        out = capsys.readouterr().out
        assert "recovered generation" in out and "policy            : camp" in out

        assert main(["persist", "compact", state]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "fresh log has 0 operations" in out

    def test_save_warm_continues_by_default_and_cold_on_request(
            self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        state = str(tmp_path / "state")
        assert main(["persist", "save", trace, state]) == 0
        capsys.readouterr()
        assert main(["persist", "save", trace, state]) == 0
        assert "warm-continuing" in capsys.readouterr().out
        assert main(["persist", "save", trace, state, "--cold"]) == 0
        assert "warm-continuing" not in capsys.readouterr().out

    def test_restore_empty_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["persist", "restore", str(tmp_path / "nothing")]) == 1
        assert "no loadable snapshot" in capsys.readouterr().err

    def test_inspect_reports_corruption(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        state = tmp_path / "state"
        assert main(["persist", "save", trace, str(state)]) == 0
        capsys.readouterr()
        snapshots = sorted(state.glob("snapshot-*.snap"))
        snapshots[-1].write_bytes(b"\x00" * 32)
        assert main(["persist", "inspect", str(state)]) == 0
        assert "CORRUPT" in capsys.readouterr().out
