"""Trace-driven simulation and parameter sweeps (the section 3 harness)."""

from __future__ import annotations

from repro.sim.compare import AgreementResult, eviction_agreement
from repro.sim.multitenant import TenancyResult, simulate_tenants
from repro.sim.runner import (
    PolicyFactory,
    SweepPoint,
    SweepResult,
    sweep_cache_sizes,
    sweep_parameter,
)
from repro.sim.simulator import SimulationResult, run_policy_on_trace, simulate

__all__ = [
    "AgreementResult",
    "eviction_agreement",
    "simulate",
    "run_policy_on_trace",
    "SimulationResult",
    "SweepPoint",
    "SweepResult",
    "PolicyFactory",
    "sweep_cache_sizes",
    "sweep_parameter",
    "TenancyResult",
    "simulate_tenants",
]
