"""Decision-agreement measurement between two eviction policies.

The paper's core approximation claim — "CAMP's eviction decisions are
essentially equivalent to those made by GDS" at high precision — is about
*decisions*, not just end metrics.  :func:`eviction_agreement` drives two
policies through the identical capacity-bounded request stream and
reports how often their eviction choices coincide, position by position,
plus the overlap of their final resident sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set

from repro.core.policy import EvictionPolicy
from repro.errors import ConfigurationError
from repro.workloads.trace import TraceRecord

__all__ = ["AgreementResult", "eviction_agreement"]


@dataclass(frozen=True, slots=True)
class AgreementResult:
    """Outcome of comparing two policies on one trace."""

    evictions_a: int
    evictions_b: int
    matching_prefix: int         # identical decisions up to this position
    positional_agreement: float  # fraction of aligned positions that match
    resident_jaccard: float      # |A∩B| / |A∪B| of final resident sets

    @property
    def identical(self) -> bool:
        return (self.evictions_a == self.evictions_b ==
                self.matching_prefix and self.resident_jaccard == 1.0)


def _drive(policy: EvictionPolicy, records: List[TraceRecord],
           max_resident: int) -> (List[str], Set[str]):
    evictions: List[str] = []
    sizes = {}
    costs = {}
    for record in records:
        size = sizes.setdefault(record.key, record.size)
        cost = costs.setdefault(record.key, record.cost)
        if record.key in policy:
            policy.on_hit(record.key)
        else:
            while len(policy) >= max_resident:
                evictions.append(policy.pop_victim())
            policy.on_insert(record.key, size, cost)
    resident = {record.key for record in records if record.key in policy}
    return evictions, resident


def eviction_agreement(policy_a: EvictionPolicy,
                       policy_b: EvictionPolicy,
                       trace: Iterable[TraceRecord],
                       max_resident: int = 100) -> AgreementResult:
    """Compare two policies' eviction streams on the same trace.

    Both policies see a slot-bounded cache of ``max_resident`` items (the
    byte-exact store would let byte-size differences desynchronize the
    comparison, hiding the decision-level signal).
    """
    if max_resident < 1:
        raise ConfigurationError(
            f"max_resident must be >= 1, got {max_resident}")
    records = list(trace)
    evictions_a, resident_a = _drive(policy_a, records, max_resident)
    evictions_b, resident_b = _drive(policy_b, records, max_resident)

    aligned = min(len(evictions_a), len(evictions_b))
    matches = sum(1 for a, b in zip(evictions_a, evictions_b) if a == b)
    prefix = 0
    for a, b in zip(evictions_a, evictions_b):
        if a != b:
            break
        prefix += 1
    union = resident_a | resident_b
    jaccard = (len(resident_a & resident_b) / len(union)) if union else 1.0
    return AgreementResult(
        evictions_a=len(evictions_a),
        evictions_b=len(evictions_b),
        matching_prefix=prefix,
        positional_agreement=(matches / aligned) if aligned else 1.0,
        resident_jaccard=jaccard,
    )
