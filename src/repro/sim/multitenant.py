"""Trace-driven simulation over a :class:`TenantManager`.

The single-store simulator (:mod:`repro.sim.simulator`) drives one KVS;
this sibling drives a multi-tenant manager — same request loop and
cold-request exclusion, but metrics are kept per tenant by the manager
itself and the allocation timeline (how the arbiter shifted bytes over
the run) is sampled alongside.  Requests route through each tenant's
:class:`~repro.cache.store.Store` facade, and the per-outcome tallies
ride along on the result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.metrics import SimulationMetrics
from repro.errors import ConfigurationError
from repro.tenancy.arbiter import Transfer
from repro.tenancy.manager import TenantManager
from repro.workloads.trace import Trace

__all__ = ["TenancyResult", "simulate_tenants"]


@dataclass
class TenancyResult:
    """Everything one multi-tenant run produced."""

    manager: TenantManager
    per_tenant: Dict[str, SimulationMetrics]
    allocations: Dict[str, int]
    allocation_samples: List[Tuple[int, Dict[str, int]]]
    transfers: List[Transfer]
    wall_seconds: float
    samples: List[Tuple[int, Dict[str, int]]] = field(default_factory=list)
    #: per-outcome request tallies, keyed by ``Outcome.name.lower()``
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_cost_missed(self) -> float:
        return sum(m.cost_missed for m in self.per_tenant.values())

    @property
    def total_requests(self) -> int:
        return sum(m.requests for m in self.per_tenant.values())

    @property
    def total_misses(self) -> int:
        return sum(m.misses for m in self.per_tenant.values())

    def metrics(self, tenant: str) -> SimulationMetrics:
        try:
            return self.per_tenant[tenant]
        except KeyError:
            raise ConfigurationError(
                f"no metrics for tenant {tenant!r}; "
                f"known: {sorted(self.per_tenant)}") from None

    def summary_rows(self) -> List[Tuple]:
        """(tenant, requests, miss rate, cost-miss ratio, cost missed,
        cost-miss rate, capacity bytes) per tenant, sorted by name."""
        rows = []
        for name in sorted(self.per_tenant):
            metrics = self.per_tenant[name]
            rows.append((name, metrics.requests, metrics.miss_rate,
                         metrics.cost_miss_ratio, metrics.cost_missed,
                         metrics.cost_miss_rate,
                         self.allocations.get(name, 0)))
        return rows


def simulate_tenants(manager: TenantManager,
                     trace: Trace,
                     sample_every: Optional[int] = None) -> TenancyResult:
    """Run one mixed trace through a tenant manager.

    ``sample_every`` additionally records the per-tenant capacity split
    every N requests (independent of the manager's own samples, which are
    taken at rebalance boundaries).
    """
    if sample_every is not None and sample_every < 1:
        raise ConfigurationError(
            f"sample_every must be >= 1, got {sample_every}")
    samples: List[Tuple[int, Dict[str, int]]] = []
    # tally by enum member in the loop; stringify once afterwards
    tallies: Dict[object, int] = {}
    started = time.perf_counter()
    index = 0
    for record in trace:
        result = manager.access(record.key, record.size, record.cost)
        outcome = result.outcome
        tallies[outcome] = tallies.get(outcome, 0) + 1
        index += 1
        if sample_every and index % sample_every == 0:
            samples.append((index, manager.allocations()))
    elapsed = time.perf_counter() - started
    outcome_counts = {outcome.name.lower(): count
                      for outcome, count in tallies.items()}
    return TenancyResult(
        manager=manager,
        per_tenant={tenant.name: tenant.metrics
                    for tenant in manager.tenants()},
        allocations=manager.allocations(),
        allocation_samples=list(manager.allocation_samples),
        transfers=list(manager.transfers),
        wall_seconds=elapsed,
        samples=samples,
        outcomes=outcome_counts,
    )
