"""The trace-driven simulator of section 3.

For each trace record the request generator asks the store for the key; on
a miss it inserts the (key, size, cost) pair, which may trigger evictions.
Metrics exclude each key's first (cold) request.  Optionally samples the
per-namespace memory occupancy for the Figure 6c/6d time series.

Requests route through the :class:`~repro.cache.store.Store` facade, so
every step yields a structured outcome; the per-outcome tallies ride along
on :class:`SimulationResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Union

from repro.cache.kvs import KVS
from repro.cache.metrics import OccupancyTracker, SimulationMetrics
from repro.cache.outcomes import Outcome
from repro.cache.store import Store
from repro.core.admission import AdmissionController
from repro.core.policy import EvictionPolicy
from repro.errors import ConfigurationError
from repro.workloads.trace import Trace, TraceRecord

__all__ = ["SimulationResult", "simulate", "run_policy_on_trace"]


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    metrics: SimulationMetrics
    policy_stats: Dict[str, Union[int, float]]
    capacity: int
    evictions: int
    rejected_too_large: int
    rejected_admission: int
    wall_seconds: float
    occupancy: Optional[OccupancyTracker] = None
    #: per-outcome request tallies, keyed by ``Outcome.name.lower()``
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.metrics.miss_rate

    @property
    def cost_miss_ratio(self) -> float:
        return self.metrics.cost_miss_ratio

    def summary(self) -> Dict[str, float]:
        out = dict(self.metrics.as_dict())
        out["capacity"] = self.capacity
        out["evictions"] = self.evictions
        out["wall_seconds"] = self.wall_seconds
        return out


def simulate(kvs: Union[KVS, Store],
             trace: Iterable[TraceRecord],
             sample_every: Optional[int] = None,
             occupancy: Optional[OccupancyTracker] = None
             ) -> SimulationResult:
    """Run one trace through one store; returns metrics and policy stats.

    Accepts a bare :class:`KVS` (wrapped in a :class:`Store` facade
    internally) or a ready-built Store.  ``sample_every`` (with
    ``occupancy``) records a namespace-occupancy sample every N requests
    — the time axis of Figures 6c/6d.
    """
    if sample_every is not None and sample_every < 1:
        raise ConfigurationError(
            f"sample_every must be >= 1, got {sample_every}")
    if isinstance(kvs, Store):
        store = kvs
    else:
        store = Store(kvs)
    kvs = store.kvs
    if occupancy is not None:
        kvs.add_listener(occupancy)
    # Precompile the trace into a "tape" of (key, size, cost) tuples so
    # the measured loop drives the policy, not the record objects: tuple
    # unpacking in a for-statement is one bytecode, while per-record
    # attribute loads were a visible slice of the seed's wall time.  A
    # Trace caches its tape across runs (policy sweeps replay it).
    if isinstance(trace, Trace):
        tape = trace.tape()
    else:
        tape = [(r.key, r.size, r.cost) for r in trace]
    # each run gets fresh metrics (and leaves a passed-in Store's own
    # metrics untouched), so repeated runs never blend their counters
    previous_metrics = store.metrics
    metrics = SimulationMetrics()
    store.metrics = metrics
    # per-outcome counters, bound to locals: no dict probe per request
    hits = inserted = too_large = admission_rejected = 0
    l2_hits = promoted_misses = 0
    HIT = Outcome.HIT
    HIT_L2 = Outcome.HIT_L2
    MISS_PROMOTED = Outcome.MISS_PROMOTED
    MISS_INSERTED = Outcome.MISS_INSERTED
    TOO_LARGE = Outcome.MISS_REJECTED_TOO_LARGE
    access = store.access_outcome
    started = time.perf_counter()
    try:
        if occupancy is not None and sample_every:
            # sampling variant: hoists the per-request occupancy check
            # out of the common (unsampled) configuration entirely
            sample = occupancy.sample
            index = 0
            for key, size, cost in tape:
                outcome = access(key, size, cost)
                if outcome is HIT:
                    hits += 1
                elif outcome is MISS_INSERTED:
                    inserted += 1
                elif outcome is HIT_L2:
                    l2_hits += 1
                elif outcome is MISS_PROMOTED:
                    promoted_misses += 1
                elif outcome is TOO_LARGE:
                    too_large += 1
                else:
                    admission_rejected += 1
                index += 1
                if not index % sample_every:
                    sample(index)
        else:
            for key, size, cost in tape:
                outcome = access(key, size, cost)
                if outcome is HIT:
                    hits += 1
                elif outcome is MISS_INSERTED:
                    inserted += 1
                elif outcome is HIT_L2:
                    l2_hits += 1
                elif outcome is MISS_PROMOTED:
                    promoted_misses += 1
                elif outcome is TOO_LARGE:
                    too_large += 1
                else:
                    admission_rejected += 1
    finally:
        store.metrics = previous_metrics
    elapsed = time.perf_counter() - started
    outcome_counts = {}
    for outcome, count in ((HIT, hits), (MISS_INSERTED, inserted),
                           (HIT_L2, l2_hits),
                           (MISS_PROMOTED, promoted_misses),
                           (TOO_LARGE, too_large),
                           (Outcome.MISS_REJECTED_ADMISSION,
                            admission_rejected)):
        if count:
            outcome_counts[outcome.name.lower()] = count
    return SimulationResult(
        metrics=metrics,
        policy_stats=kvs.policy.stats(),
        capacity=kvs.capacity,
        evictions=kvs.eviction_count,
        rejected_too_large=kvs.rejected_too_large,
        rejected_admission=kvs.rejected_admission,
        wall_seconds=elapsed,
        occupancy=occupancy,
        outcomes=outcome_counts,
    )


def run_policy_on_trace(policy: EvictionPolicy,
                        trace: Trace,
                        cache_size_ratio: float,
                        admission: Optional[AdmissionController] = None,
                        sample_every: Optional[int] = None,
                        track_occupancy: bool = False) -> SimulationResult:
    """Convenience wrapper: build the KVS at a *cache size ratio* and run.

    The cache size ratio is "the size of the KVS memory divided by the
    total size of the unique objects in the trace file" (section 3).
    """
    if cache_size_ratio <= 0:
        raise ConfigurationError(
            f"cache_size_ratio must be positive, got {cache_size_ratio}")
    capacity = trace.capacity_for_ratio(cache_size_ratio)
    kvs = KVS(capacity, policy, admission=admission)
    tracker = OccupancyTracker(capacity) if track_occupancy else None
    return simulate(kvs, trace, sample_every=sample_every,
                    occupancy=tracker)
