"""Parameter sweeps: (policy × cache-size-ratio) and (policy × precision).

Every figure in the paper's evaluation is one of these two sweep shapes;
the experiment modules (``repro.experiments``) parameterize them per
figure and format the output with ``repro.analysis``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.policy import EvictionPolicy
from repro.errors import ConfigurationError
from repro.sim.simulator import SimulationResult, run_policy_on_trace
from repro.workloads.trace import Trace

__all__ = ["SweepPoint", "SweepResult", "PolicyFactory", "sweep_cache_sizes",
           "sweep_parameter"]

# a factory builds a fresh policy for a store of the given byte capacity
PolicyFactory = Callable[[int], EvictionPolicy]


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One (policy, x-value) simulation outcome."""

    policy: str
    x: Union[int, float, str, None]
    miss_rate: float
    cost_miss_ratio: float
    evictions: int
    wall_seconds: float
    extra: Dict[str, Union[int, float]] = field(default_factory=dict)


@dataclass
class SweepResult:
    """A grid of sweep points, indexable by policy and x."""

    x_label: str
    points: List[SweepPoint] = field(default_factory=list)

    def add(self, point: SweepPoint) -> None:
        self.points.append(point)

    def policies(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            if point.policy not in seen:
                seen.append(point.policy)
        return seen

    def xs(self) -> List[Union[int, float, str, None]]:
        seen: List[Union[int, float, str, None]] = []
        for point in self.points:
            if point.x not in seen:
                seen.append(point.x)
        return seen

    def series(self, policy: str, metric: str = "cost_miss_ratio"
               ) -> List[tuple]:
        """(x, metric) pairs for one policy."""
        out = []
        for point in self.points:
            if point.policy == policy:
                value = getattr(point, metric, None)
                if value is None:
                    value = point.extra.get(metric)
                out.append((point.x, value))
        return out

    def lookup(self, policy: str, x: Union[int, float, str, None]
               ) -> SweepPoint:
        for point in self.points:
            if point.policy == policy and point.x == x:
                return point
        raise KeyError((policy, x))


def sweep_cache_sizes(trace: Trace,
                      factories: Dict[str, PolicyFactory],
                      cache_size_ratios: Sequence[float],
                      sample_every: Optional[int] = None,
                      track_occupancy: bool = False,
                      extra_stats: Sequence[str] = ()) -> SweepResult:
    """Run every policy at every cache size ratio over the same trace."""
    if not factories:
        raise ConfigurationError("at least one policy factory is required")
    result = SweepResult(x_label="cache_size_ratio")
    for ratio in cache_size_ratios:
        capacity = trace.capacity_for_ratio(ratio)
        for name, factory in factories.items():
            policy = factory(capacity)
            sim = run_policy_on_trace(policy, trace, ratio,
                                      sample_every=sample_every,
                                      track_occupancy=track_occupancy)
            result.add(_to_point(name, ratio, sim, extra_stats))
    return result


def sweep_parameter(trace: Trace,
                    build: Callable[[Union[int, float, str, None], int],
                                    EvictionPolicy],
                    values: Sequence[Union[int, float, str, None]],
                    cache_size_ratio: float,
                    policy_label: str = "camp",
                    extra_stats: Sequence[str] = ()) -> SweepResult:
    """Sweep an arbitrary policy parameter (e.g. CAMP's precision) at a
    fixed cache size; ``build(value, capacity)`` constructs the policy."""
    result = SweepResult(x_label="parameter")
    capacity = trace.capacity_for_ratio(cache_size_ratio)
    for value in values:
        policy = build(value, capacity)
        sim = run_policy_on_trace(policy, trace, cache_size_ratio)
        result.add(_to_point(policy_label, value, sim, extra_stats))
    return result


def _to_point(name: str,
              x: Union[int, float, str, None],
              sim: SimulationResult,
              extra_stats: Sequence[str]) -> SweepPoint:
    extra: Dict[str, Union[int, float]] = {}
    for stat in extra_stats:
        if stat in sim.policy_stats:
            extra[stat] = sim.policy_stats[stat]
    return SweepPoint(
        policy=name,
        x=x,
        miss_rate=sim.miss_rate,
        cost_miss_ratio=sim.cost_miss_ratio,
        evictions=sim.evictions,
        wall_seconds=sim.wall_seconds,
        extra=extra,
    )
