"""Multi-tenant memory arbitration over CAMP partitions.

A :class:`TenantManager` splits one byte budget into per-tenant
:class:`~repro.cache.kvs.KVS` partitions (CAMP by default), routes
requests by key prefix, and periodically lets an :class:`Arbiter` move
bytes from the tenant with the least to the tenant with the most marginal
cost to gain — estimated by bounded per-tenant :class:`GhostCache`\\ s fed
from partition evictions.  :class:`TenantedEngine` applies the same
routing to the twemcache server for protocol-level isolation.
"""

from __future__ import annotations

from repro.tenancy.aio import AsyncEngineAdapter
from repro.tenancy.arbiter import Arbiter, Transfer
from repro.tenancy.engine import TenantedEngine
from repro.tenancy.ghost import GhostCache, GhostHit
from repro.tenancy.manager import Tenant, TenantManager, TenantSpec

__all__ = [
    "AsyncEngineAdapter",
    "Arbiter",
    "Transfer",
    "GhostCache",
    "GhostHit",
    "Tenant",
    "TenantManager",
    "TenantSpec",
    "TenantedEngine",
]
