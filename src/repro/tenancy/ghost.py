"""Ghost caches — bounded metadata shadows behind each tenant partition.

A ghost cache remembers the (key, size, cost) of pairs a partition has
*evicted*, ordered by eviction recency, holding no values.  When a later
request misses in the real partition but hits in the ghost, the miss was a
*capacity miss*: had the tenant owned more bytes, the pair would still be
resident.  The ghost-hit *depth* — the bytes evicted since that pair left,
including the pair itself — estimates how many extra bytes would have been
enough, so bucketing the recomputation cost of ghost hits by depth yields
the tenant's marginal cost-miss curve: "give this tenant X more bytes and
it would have saved roughly Y cost over the last window".

The same idea drives ARC's directory (ghost hits steer the adaptation
parameter) and Memshare's per-application utility arbitration; here the
curve feeds :class:`repro.tenancy.arbiter.Arbiter`.

Both the byte footprint and entry count of a ghost are capped, so the
metadata overhead per tenant is configurable and bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

from repro.core.policy import CacheItem
from repro.errors import ConfigurationError

__all__ = ["GhostCache", "GhostHit"]

Number = Union[int, float]

#: default resolution of the marginal-utility curve (buckets per ghost)
DEFAULT_BUCKETS = 64


class GhostHit:
    """One capacity miss explained by the ghost (diagnostics)."""

    __slots__ = ("key", "depth", "cost")

    def __init__(self, key: str, depth: int, cost: Number) -> None:
        self.key = key
        self.depth = depth  # bytes that would have kept the pair resident
        self.cost = cost

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GhostHit {self.key!r} depth={self.depth} cost={self.cost}>"


class GhostCache:
    """Bounded eviction-history metadata with a marginal cost-miss curve."""

    def __init__(self,
                 capacity_bytes: int,
                 max_entries: int = 8192,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        """``capacity_bytes`` bounds the *summed sizes* of remembered pairs
        (the window of "extra memory" the ghost can reason about);
        ``max_entries`` bounds the entry count independently."""
        if capacity_bytes < 1:
            raise ConfigurationError(
                f"ghost capacity must be >= 1, got {capacity_bytes}")
        if max_entries < 1:
            raise ConfigurationError(
                f"ghost max_entries must be >= 1, got {max_entries}")
        if buckets < 1:
            raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
        self._capacity = capacity_bytes
        self._max_entries = max_entries
        self._bucket_bytes = max(1, capacity_bytes // buckets)
        self._buckets = buckets
        # key -> (size, cost, cumulative evicted bytes at insertion),
        # most recently evicted at the *end*
        self._entries: "OrderedDict[str, Tuple[int, Number, int]]" = \
            OrderedDict()
        self._bytes = 0
        # monotone total of (clamped) evicted bytes ever recorded; the
        # per-entry snapshot makes ghost-hit depth an O(1) subtraction
        self._evicted_total = 0
        # cost that extra bytes would have saved this window, by depth bucket
        self._window_gain = [0.0] * buckets
        # lifetime counters
        self.ghost_hits = 0
        self.ghost_hit_cost = 0.0
        self.recorded_evictions = 0

    # ------------------------------------------------------------------
    # feeding: evictions in, misses probed
    # ------------------------------------------------------------------
    def record_eviction(self, item: CacheItem) -> None:
        """Remember an evicted pair's metadata (most recent last)."""
        stale = self._entries.pop(item.key, None)
        if stale is not None:
            self._bytes -= stale[0]
        size = min(item.size, self._capacity)
        self._evicted_total += size
        self._entries[item.key] = (size, item.cost, self._evicted_total)
        self._bytes += size
        self.recorded_evictions += 1
        self._shrink()

    def record_miss(self, key: str, size: int, cost: Number
                    ) -> Optional[GhostHit]:
        """Probe a real-cache miss; a ghost hit accrues window gain.

        Returns the :class:`GhostHit` (or None for a true cold/far miss).
        A hit removes the entry — the caller re-inserts the pair into the
        real cache, so keeping the ghost copy would double count.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        ghost_size, ghost_cost, snapshot = entry
        # depth: bytes evicted since this pair left, the pair included —
        # roughly the extra capacity that would have kept it resident
        depth = self._evicted_total - snapshot + ghost_size
        del self._entries[key]
        self._bytes -= ghost_size
        gain = cost if cost else ghost_cost
        bucket = min(self._buckets - 1, max(0, depth - 1) // self._bucket_bytes)
        self._window_gain[bucket] += gain
        self.ghost_hits += 1
        self.ghost_hit_cost += gain
        return GhostHit(key, depth, gain)

    # ------------------------------------------------------------------
    # bounds
    # ------------------------------------------------------------------
    def _shrink(self) -> None:
        while (self._bytes > self._capacity
               or len(self._entries) > self._max_entries):
            _, (size, _, _) = self._entries.popitem(last=False)
            self._bytes -= size

    # ------------------------------------------------------------------
    # the marginal curve
    # ------------------------------------------------------------------
    def window_gain(self, extra_bytes: int) -> float:
        """Cost this window's ghost hits say ``extra_bytes`` would save.

        Full buckets within ``extra_bytes`` count whole; the bucket the
        boundary falls into is linearly interpolated, so arbitration steps
        smaller than one bucket still see a gain signal.
        """
        if extra_bytes <= 0:
            return 0.0
        full = min(self._buckets, extra_bytes // self._bucket_bytes)
        gain = sum(self._window_gain[:full])
        if full < self._buckets:
            fraction = (extra_bytes % self._bucket_bytes) / self._bucket_bytes
            gain += fraction * self._window_gain[full]
        return gain

    def curve(self) -> List[Tuple[int, float]]:
        """The cumulative marginal cost-miss curve of the current window:
        ``[(extra_bytes, saved_cost), ...]`` per bucket boundary."""
        points = []
        cumulative = 0.0
        for index in range(self._buckets):
            cumulative += self._window_gain[index]
            points.append(((index + 1) * self._bucket_bytes, cumulative))
        return points

    def reset_window(self) -> None:
        """Start a new observation window (the arbiter calls this after
        every rebalance so gains reflect the *current* allocation)."""
        self._window_gain = [0.0] * self._buckets

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def bucket_bytes(self) -> int:
        return self._bucket_bytes

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, Number]:
        return {
            "ghost_entries": len(self._entries),
            "ghost_bytes": self._bytes,
            "ghost_hits": self.ghost_hits,
            "ghost_hit_cost": self.ghost_hit_cost,
            "recorded_evictions": self.recorded_evictions,
        }
