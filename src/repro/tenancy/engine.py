"""``TenantedEngine`` — multi-tenant isolation for the twemcache server.

The protocol server only needs the engine's duck type (``get``/``set``/
``delete``/...), so this adapter fronts one
:class:`~repro.twemcache.engine.TwemcacheEngine` *per tenant*, each with
its own slab arena sized from the tenant's share of the memory budget, and
routes every command by key prefix (``"ads:model7"`` → tenant ``"ads"``).
A tenant can exhaust and churn its own arena freely without evicting a
single byte of any other tenant — the partition *is* the floor.

Keys whose prefix matches no tenant go to an optional ``default`` tenant
(configure one with an empty-string share entry via ``default_tenant``);
without one they are refused, which surfaces as a miss/NOT_STORED at the
protocol level rather than an error, matching memcached's forgiving style.

Every per-tenant engine routes its request path through the unified
:class:`~repro.cache.store.Store` facade (see
:mod:`repro.twemcache.engine`), so tenant requests share the same TTL
handling and structured outcomes as the simulator; :meth:`get_or_compute`
exposes the read-through contract per tenant.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Union

from repro.cache.metrics import default_namespace
from repro.errors import ConfigurationError
from repro.twemcache.engine import StoredItem, TwemcacheEngine

__all__ = ["TenantedEngine"]

Number = Union[int, float]


class TenantedEngine:
    """Per-tenant twemcache engines behind one routing front."""

    def __init__(self,
                 memory_bytes: int,
                 tenant_shares: Dict[str, float],
                 eviction: str = "camp",
                 default_tenant: Optional[str] = None,
                 namespace_of: Callable[[str], str] = default_namespace,
                 slab_size: int = 1 << 20,
                 **engine_kwargs: object) -> None:
        """``tenant_shares`` maps tenant name → fraction of
        ``memory_bytes``; fractions must sum to at most 1.  Remaining
        keyword arguments are forwarded to every per-tenant engine."""
        if memory_bytes < 1:
            raise ConfigurationError(
                f"memory_bytes must be >= 1, got {memory_bytes}")
        if not tenant_shares:
            raise ConfigurationError("at least one tenant is required")
        if sum(tenant_shares.values()) > 1 + 1e-9:
            raise ConfigurationError("tenant shares sum to more than 1")
        if default_tenant is not None and default_tenant not in tenant_shares:
            raise ConfigurationError(
                f"default tenant {default_tenant!r} is not in tenant_shares")
        self._namespace_of = namespace_of
        self._default_tenant = default_tenant
        self._engines: Dict[str, TwemcacheEngine] = {}
        for name, share in tenant_shares.items():
            if share <= 0:
                raise ConfigurationError(
                    f"share of tenant {name!r} must be > 0, got {share}")
            arena = int(memory_bytes * share)
            if arena < slab_size:
                # rounding small tenants up to a slab would silently
                # oversubscribe the budget; make the misconfiguration loud
                raise ConfigurationError(
                    f"tenant {name!r} share of {memory_bytes} bytes is "
                    f"{arena}, below one slab ({slab_size}); raise the "
                    f"budget/share or lower slab_size")
            self._engines[name] = TwemcacheEngine(
                arena, eviction=eviction, slab_size=slab_size,
                **engine_kwargs)
        self._lock = threading.RLock()
        self.rejected_unroutable = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def engine_for(self, key: str) -> Optional[TwemcacheEngine]:
        """The tenant engine owning ``key``, or None when unroutable."""
        namespace = self._namespace_of(key)
        engine = self._engines.get(namespace)
        if engine is None and self._default_tenant is not None:
            engine = self._engines[self._default_tenant]
        if engine is None:
            with self._lock:
                self.rejected_unroutable += 1
        return engine

    def engine(self, tenant: str) -> TwemcacheEngine:
        try:
            return self._engines[tenant]
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {tenant!r}; known: {sorted(self._engines)}"
            ) from None

    def tenant_names(self) -> List[str]:
        return sorted(self._engines)

    # ------------------------------------------------------------------
    # the engine duck type used by the protocol server
    # ------------------------------------------------------------------
    def get(self, key: str,
            record_miss: bool = True) -> Optional[StoredItem]:
        engine = self.engine_for(key)
        if engine is None:
            return None
        return engine.get(key, record_miss=record_miss)

    def set(self, key: str, value: bytes, **kwargs) -> bool:
        engine = self.engine_for(key)
        return engine.set(key, value, **kwargs) if engine is not None \
            else False

    def add(self, key: str, value: bytes, **kwargs) -> bool:
        engine = self.engine_for(key)
        return engine.add(key, value, **kwargs) if engine is not None \
            else False

    def replace(self, key: str, value: bytes, **kwargs) -> bool:
        engine = self.engine_for(key)
        return engine.replace(key, value, **kwargs) if engine is not None \
            else False

    def delete(self, key: str) -> bool:
        engine = self.engine_for(key)
        return engine.delete(key) if engine is not None else False

    def incr(self, key: str, delta: int) -> Optional[int]:
        engine = self.engine_for(key)
        return engine.incr(key, delta) if engine is not None else None

    def decr(self, key: str, delta: int) -> Optional[int]:
        engine = self.engine_for(key)
        return engine.decr(key, delta) if engine is not None else None

    def touch(self, key: str, expire_after: float) -> bool:
        engine = self.engine_for(key)
        return engine.touch(key, expire_after) if engine is not None \
            else False

    def touch_cost(self, key: str, cost: Number) -> bool:
        engine = self.engine_for(key)
        return engine.touch_cost(key, cost) if engine is not None else False

    def get_or_compute(self, key: str, loader, expire_after: float = 0,
                       cost: Optional[Number] = None
                       ) -> Optional[StoredItem]:
        """Read-through within the owning tenant's partition."""
        engine = self.engine_for(key)
        if engine is None:
            return None
        return engine.get_or_compute(key, loader,
                                     expire_after=expire_after, cost=cost)

    def flush_all(self) -> None:
        for engine in self._engines.values():
            engine.flush_all()

    def async_adapter(self):
        """An :class:`~repro.tenancy.aio.AsyncEngineAdapter` over this
        router: awaitable ``get_or_compute`` with per-key single-flight
        coalescing inside the owning tenant's partition."""
        from repro.tenancy.aio import AsyncEngineAdapter
        return AsyncEngineAdapter(self)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        engine = self._engines.get(self._namespace_of(key))
        if engine is None and self._default_tenant is not None:
            engine = self._engines[self._default_tenant]
        return key in engine if engine is not None else False

    def __len__(self) -> int:
        return sum(len(engine) for engine in self._engines.values())

    def stats(self) -> Dict[str, Number]:
        """Aggregate counters plus ``<tenant>_<stat>`` breakdowns."""
        totals: Dict[str, Number] = {}
        for name in sorted(self._engines):
            for stat, value in self._engines[name].stats().items():
                totals[stat] = totals.get(stat, 0) + value
                totals[f"{name}_{stat}"] = value
        totals["rejected_unroutable"] = self.rejected_unroutable
        totals["tenants"] = len(self._engines)
        return totals

    def check_consistency(self) -> None:
        for engine in self._engines.values():
            engine.check_consistency()
