"""The memory arbiter — ghost-gain-driven byte transfers between tenants.

Every rebalance window the arbiter asks each tenant's ghost cache how much
recomputation cost one *step* of extra bytes would have saved it (weighted
by the tenant's SLA weight), then moves that step from the tenant with the
least to the tenant with the most to gain, Memshare-style: memory flows
toward marginal utility.  Floors and ceilings are hard bounds — a transfer
that would push either side past its bound is clamped or skipped, so a
tenant can never be starved below its floor nor balloon past its ceiling
no matter how lopsided the gains are.

Shrinking the donor happens *before* growing the receiver, so the summed
partition capacities never exceed the manager's total budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tenancy.manager import Tenant

__all__ = ["Arbiter", "Transfer"]


@dataclass(frozen=True, slots=True)
class Transfer:
    """One executed reallocation (kept in the manager's history)."""

    donor: str
    receiver: str
    bytes_moved: int
    donor_gain: float
    receiver_gain: float


class Arbiter:
    """Moves one step of bytes per window from min-gain to max-gain."""

    def __init__(self,
                 step_fraction: float = 0.05,
                 min_gain: float = 0.0,
                 gain_ratio: float = 1.5) -> None:
        """``step_fraction`` of the total budget moves per rebalance.

        Both hysteresis knobs guard against thrashing (every transfer
        evicts real items on the donor side): the receiver's weighted gain
        must exceed ``gain_ratio`` times the donor's *and* beat it by at
        least ``min_gain`` before any bytes move.
        """
        if not 0 < step_fraction <= 0.5:
            raise ConfigurationError(
                f"step_fraction must be in (0, 0.5], got {step_fraction}")
        if min_gain < 0:
            raise ConfigurationError(
                f"min_gain must be >= 0, got {min_gain}")
        if gain_ratio < 1:
            raise ConfigurationError(
                f"gain_ratio must be >= 1, got {gain_ratio}")
        self._step_fraction = step_fraction
        self._min_gain = min_gain
        self._gain_ratio = gain_ratio

    # ------------------------------------------------------------------
    def gains(self, tenants: List["Tenant"], step: int) -> Dict[str, float]:
        """Weighted, distance-scaled gain of one extra step per tenant.

        Pure local gradients (ghost hits within one step) stall when a
        tenant's entire benefit sits deeper than a single step — the
        gradient reads zero even though the cost to capture is huge.  So
        each tenant is credited with its window gain over the whole
        headroom it could still grow into (``ceiling - capacity``),
        scaled down by ``step / headroom``: deep gains count, discounted
        by how many steps away they are.
        """
        gains: Dict[str, float] = {}
        for tenant in tenants:
            reach = max(step, tenant.ceiling_bytes - tenant.kvs.capacity)
            raw = tenant.ghost.window_gain(reach)
            gains[tenant.name] = tenant.weight * raw * (step / reach)
        return gains

    def rebalance(self, tenants: List["Tenant"],
                  total_bytes: int) -> Optional[Transfer]:
        """Pick donor/receiver, resize their partitions, report the move.

        Returns ``None`` when no admissible transfer exists (all gains
        within ``min_gain`` of each other, or bounds forbid every pairing).
        Ghost windows are reset afterwards either way, by the manager.
        """
        if len(tenants) < 2:
            return None
        step = max(1, int(total_bytes * self._step_fraction))
        gains = self.gains(tenants, step)
        # receivers: most to gain first; donors: least to gain first
        order = sorted(tenants, key=lambda t: gains[t.name], reverse=True)
        for receiver in order:
            headroom = receiver.ceiling_bytes - receiver.kvs.capacity
            if headroom <= 0:
                continue
            for donor in reversed(order):
                if donor is receiver:
                    continue
                slack = donor.kvs.capacity - donor.floor_bytes
                if slack <= 0:
                    continue
                receiver_gain = gains[receiver.name]
                donor_gain = gains[donor.name]
                if receiver_gain - donor_gain <= self._min_gain:
                    continue
                if receiver_gain <= self._gain_ratio * donor_gain:
                    continue
                moved = min(step, headroom, slack)
                donor.kvs.resize(donor.kvs.capacity - moved)
                receiver.kvs.resize(receiver.kvs.capacity + moved)
                return Transfer(donor=donor.name, receiver=receiver.name,
                                bytes_moved=moved,
                                donor_gain=gains[donor.name],
                                receiver_gain=gains[receiver.name])
        return None
