"""Per-tenant CAMP partitions behind one byte budget.

The paper's introduction motivates CAMP with applications of wildly
different miss costs sharing one KVS; this module gives each such
application (*tenant*) its own partition — a private :class:`KVS` with its
own eviction policy, CAMP by default — behind a single total budget.
Routing uses the same key-prefix convention as
:func:`repro.cache.metrics.default_namespace` (``"ads:model7"`` → tenant
``"ads"``), so existing traces and the occupancy tracker line up.

Each tenant also owns a bounded :class:`~repro.tenancy.ghost.GhostCache`
fed by its partition's evictions; misses that hit the ghost are capacity
misses, and their depth-bucketed costs estimate the tenant's marginal
cost-miss curve.  Every ``rebalance_every`` accesses the
:class:`~repro.tenancy.arbiter.Arbiter` moves bytes from the tenant with
the least to the tenant with the most to gain (respecting per-tenant
floors and ceilings), shrinking via :meth:`KVS.resize` — targeted
evictions — and growing by raising the receiver's budget.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.cache.kvs import KVS
from repro.cache.metrics import SimulationMetrics, default_namespace
from repro.cache.outcomes import AccessResult, Outcome
from repro.cache.store import Store
from repro.core import make_policy
from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import ConfigurationError
from repro.tenancy.arbiter import Arbiter, Transfer
from repro.tenancy.ghost import GhostCache

__all__ = ["TenantSpec", "Tenant", "TenantManager"]

Number = Union[int, float]


@dataclass(frozen=True)
class TenantSpec:
    """Static configuration of one tenant.

    ``share`` is the initial fraction of the total budget (``None`` splits
    the unclaimed remainder equally); ``floor``/``ceiling`` bound the
    fraction the arbiter may shrink/grow the tenant to; ``weight`` scales
    the tenant's ghost gains (an SLA knob: weight 2 means a saved unit of
    its cost counts double in arbitration).
    """

    name: str
    share: Optional[float] = None
    floor: float = 0.05
    ceiling: float = 1.0
    weight: float = 1.0
    policy: str = "camp"
    policy_kwargs: Dict[str, object] = field(default_factory=dict)
    ghost_fraction: float = 1.0   # ghost byte cap as a fraction of total
    ghost_entries: int = 8192

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if ":" in self.name:
            raise ConfigurationError(
                f"tenant name {self.name!r} must not contain ':'")
        if not 0 <= self.floor <= self.ceiling <= 1:
            raise ConfigurationError(
                f"need 0 <= floor <= ceiling <= 1 for tenant {self.name!r}")
        if self.share is not None and not self.floor <= self.share <= self.ceiling:
            raise ConfigurationError(
                f"share of tenant {self.name!r} must lie in "
                f"[floor, ceiling]")
        if self.weight <= 0:
            raise ConfigurationError(
                f"weight of tenant {self.name!r} must be > 0")
        if not 0 < self.ghost_fraction <= 1:
            raise ConfigurationError(
                f"ghost_fraction of tenant {self.name!r} must be in (0, 1]")


class _GhostFeeder:
    """KVS listener that records capacity evictions into the ghost."""

    def __init__(self, ghost: GhostCache) -> None:
        self._ghost = ghost

    def on_insert(self, item: CacheItem) -> None:
        pass

    def on_evict(self, item: CacheItem, explicit: bool) -> None:
        if not explicit:
            self._ghost.record_eviction(item)


class Tenant:
    """Runtime state of one tenant: partition, ghost, metrics, bounds."""

    def __init__(self, spec: TenantSpec, capacity: int, total_bytes: int,
                 item_overhead: int = 0) -> None:
        self.spec = spec
        self.floor_bytes = max(1, int(total_bytes * spec.floor))
        self.ceiling_bytes = max(1, int(total_bytes * spec.ceiling))
        policy = make_policy(spec.policy, capacity, **spec.policy_kwargs)
        self.kvs = KVS(capacity, policy, item_overhead=item_overhead)
        ghost_bytes = max(1, int(total_bytes * spec.ghost_fraction))
        self.ghost = GhostCache(ghost_bytes, max_entries=spec.ghost_entries)
        self.kvs.add_listener(_GhostFeeder(self.ghost))
        self.metrics = SimulationMetrics()
        #: the partition's unified request facade (feeds ``metrics``)
        self.store = Store(self.kvs, metrics=self.metrics)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def weight(self) -> float:
        return self.spec.weight

    @property
    def policy(self) -> EvictionPolicy:
        return self.kvs.policy

    def summary(self) -> Dict[str, Number]:
        out = dict(self.metrics.as_dict())
        out["capacity"] = self.kvs.capacity
        out["resident_bytes"] = self.kvs.used_bytes
        out.update(self.ghost.stats())
        return out


class TenantManager:
    """Fronts a fixed byte budget split into per-tenant partitions."""

    def __init__(self,
                 total_bytes: int,
                 specs: List[TenantSpec],
                 rebalance_every: Optional[int] = 5_000,
                 arbiter: Optional[Arbiter] = None,
                 namespace_of: Callable[[str], str] = default_namespace,
                 item_overhead: int = 0) -> None:
        """``rebalance_every`` counts accesses between arbiter runs
        (``None`` disables arbitration — a static partitioning)."""
        if total_bytes < 1:
            raise ConfigurationError(
                f"total_bytes must be >= 1, got {total_bytes}")
        if not specs:
            raise ConfigurationError("at least one tenant is required")
        if rebalance_every is not None and rebalance_every < 1:
            raise ConfigurationError(
                f"rebalance_every must be >= 1 or None, got {rebalance_every}")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names in {names}")
        for spec in specs:
            spec.validate()
        if sum(spec.floor for spec in specs) > 1 + 1e-9:
            raise ConfigurationError("tenant floors sum to more than 1")
        self._total_bytes = total_bytes
        self._namespace_of = namespace_of
        self._rebalance_every = rebalance_every
        self._arbiter = arbiter if arbiter is not None else Arbiter()
        self._tenants: Dict[str, Tenant] = {}
        for spec, capacity in zip(specs, self._initial_split(specs)):
            self._tenants[spec.name] = Tenant(
                spec, capacity, total_bytes, item_overhead=item_overhead)
        self._accesses = 0
        self.transfers: List[Transfer] = []
        #: sampled (access index, {tenant: capacity}) timeline
        self.allocation_samples: List[Tuple[int, Dict[str, int]]] = []

    def _initial_split(self, specs: List[TenantSpec]) -> List[int]:
        """Byte capacities honouring explicit shares, then equal split."""
        explicit = sum(spec.share for spec in specs if spec.share is not None)
        if explicit > 1 + 1e-9:
            raise ConfigurationError("tenant shares sum to more than 1")
        unclaimed = [spec for spec in specs if spec.share is None]
        remainder = (1.0 - explicit) / len(unclaimed) if unclaimed else 0.0
        capacities = []
        for spec in specs:
            share = spec.share if spec.share is not None else remainder
            if not spec.floor - 1e-9 <= share <= spec.ceiling + 1e-9:
                raise ConfigurationError(
                    f"initial share {share:.3f} of tenant {spec.name!r} "
                    f"violates [floor, ceiling]")
            capacities.append(max(1, int(self._total_bytes * share)))
        return capacities

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, key: str) -> Tenant:
        """Tenant owning ``key`` (by namespace prefix)."""
        namespace = self._namespace_of(key)
        try:
            return self._tenants[namespace]
        except KeyError:
            raise ConfigurationError(
                f"key {key!r} routes to unknown tenant {namespace!r}; "
                f"known: {sorted(self._tenants)}") from None

    # ------------------------------------------------------------------
    # the request interface (mirrors the Store facade, plus shims)
    # ------------------------------------------------------------------
    def get(self, key: str) -> bool:
        """Deprecated bool shim; use ``route(key).store.get``."""
        return self.route(key).store.get(key).hit

    def put(self, key: str, size: int, cost: Number) -> bool:
        """Deprecated bool shim (True when the new pair was stored);
        use ``route(key).store.put``."""
        outcome = self.route(key).store.put(key, size, cost).outcome
        return outcome is Outcome.MISS_INSERTED

    def delete(self, key: str) -> bool:
        return self.route(key).store.delete(key)

    def access(self, key: str, size: int, cost: Number,
               ttl: Optional[float] = None) -> AccessResult:
        """One simulator step: look up, record metrics, insert on miss,
        probe the ghost, and run the arbiter on window boundaries.

        Returns the structured result (truthy exactly on a HIT, so the
        historical bool reading still works).
        """
        tenant = self.route(key)
        result = tenant.store.get(key)
        tenant.metrics.record(key, size, cost, result.hit)
        if not result.hit:
            # the ghost probe must see the pre-insert eviction history:
            # this insert's own victims are not alternatives the missed
            # key could have hit under a bigger partition
            expired = result.expired
            tenant.ghost.record_miss(key, size, cost)
            result = tenant.store.put(key, size, cost, ttl=ttl)
            result.expired = expired
        self._accesses += 1
        if (self._rebalance_every
                and self._accesses % self._rebalance_every == 0):
            self.rebalance()
        return result

    # ------------------------------------------------------------------
    # arbitration
    # ------------------------------------------------------------------
    def rebalance(self) -> Optional[Transfer]:
        """Run one arbiter pass now; records and returns the transfer."""
        transfer = self._arbiter.rebalance(self.tenants(), self._total_bytes)
        if transfer is not None:
            self.transfers.append(transfer)
        for tenant in self._tenants.values():
            tenant.ghost.reset_window()
        self.allocation_samples.append((self._accesses, self.allocations()))
        return transfer

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def save_all(self, directory: Union[str, os.PathLike],
                 keep_generations: int = 2) -> Dict[str, int]:
        """Snapshot every partition into per-tenant subdirectories.

        ``<directory>/<tenant>/snapshot-<gen>.snap`` — each tenant gets
        its own generation sequence, so tenants can be restored (or lost
        to corruption) independently.  Returns tenant -> new generation.
        """
        from repro.persistence import Snapshotter
        root = pathlib.Path(directory)
        generations: Dict[str, int] = {}
        for name, tenant in self._tenants.items():
            snapshotter = Snapshotter(root / name,
                                      keep_generations=keep_generations)
            generations[name] = snapshotter.save(tenant.kvs)
        return generations

    def restore_all(self, directory: Union[str, os.PathLike],
                    adopt_allocations: bool = True) -> Dict[str, object]:
        """Warm-start empty partitions from :meth:`save_all` output.

        Tenants without a subdirectory (or without a healthy snapshot)
        simply stay cold.  With ``adopt_allocations`` (the default) the
        byte split the arbiter had learned at save time is re-applied
        first — but only when every saved capacity still respects its
        tenant's floor/ceiling and the saved split fits the current
        budget; a changed configuration falls back to the current split,
        and partitions restore into it (evicting overflow through the
        restored policy).  Returns tenant -> RecoveryReport.
        """
        from repro.persistence import RecoveryManager
        root = pathlib.Path(directory)
        loaded: Dict[str, tuple] = {}
        for name, tenant in self._tenants.items():
            tenant_dir = root / name
            if not tenant_dir.is_dir():
                continue
            manager = RecoveryManager(tenant_dir)
            preloaded = manager.load_latest_snapshot(now=tenant.kvs.clock())
            loaded[name] = (manager, preloaded)
        if adopt_allocations:
            self._adopt_saved_allocations(loaded)
        reports: Dict[str, object] = {}
        for name, (manager, preloaded) in loaded.items():
            tenant = self._tenants[name]
            reports[name] = manager.recover_into(tenant.kvs,
                                                 preloaded=preloaded)
        return reports

    def _adopt_saved_allocations(self, loaded: Dict[str, tuple]) -> None:
        """Re-apply the saved byte split when it is still valid."""
        saved: Dict[str, int] = {}
        for name, (_manager, (data, _path, _corrupt)) in loaded.items():
            if data is None:
                return
            tenant = self._tenants[name]
            if not (tenant.floor_bytes <= data.capacity
                    <= tenant.ceiling_bytes):
                return
            saved[name] = data.capacity
        current = sum(t.kvs.capacity for n, t in self._tenants.items()
                      if n not in saved)
        if not saved or current + sum(saved.values()) > self._total_bytes:
            return
        for name, capacity in saved.items():
            self._tenants[name].kvs.resize(capacity)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def accesses(self) -> int:
        return self._accesses

    def tenants(self) -> List[Tenant]:
        return list(self._tenants.values())

    def tenant(self, name: str) -> Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {name!r}; known: {sorted(self._tenants)}"
            ) from None

    def tenant_names(self) -> List[str]:
        return sorted(self._tenants)

    def allocations(self) -> Dict[str, int]:
        """Current partition capacities in bytes."""
        return {name: tenant.kvs.capacity
                for name, tenant in self._tenants.items()}

    def total_cost_missed(self) -> float:
        return sum(t.metrics.cost_missed for t in self._tenants.values())

    def total_weighted_cost_missed(self) -> float:
        return sum(t.weight * t.metrics.cost_missed
                   for t in self._tenants.values())

    def check_consistency(self) -> None:
        """Budget, bounds and per-partition invariants (test hook)."""
        total = sum(t.kvs.capacity for t in self._tenants.values())
        if total > self._total_bytes:
            raise ConfigurationError(
                f"partition capacities {total} exceed budget "
                f"{self._total_bytes}")
        for tenant in self._tenants.values():
            if not (tenant.floor_bytes <= tenant.kvs.capacity
                    <= tenant.ceiling_bytes):
                raise ConfigurationError(
                    f"tenant {tenant.name!r} capacity "
                    f"{tenant.kvs.capacity} outside "
                    f"[{tenant.floor_bytes}, {tenant.ceiling_bytes}]")
            tenant.kvs.check_consistency()
