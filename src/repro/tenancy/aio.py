"""Async adapter for engines — tenancy's entry to the asyncio surface.

:class:`AsyncEngineAdapter` fronts any object with the twemcache engine
duck type (:class:`~repro.twemcache.engine.TwemcacheEngine`, the
multi-tenant :class:`~repro.tenancy.engine.TenantedEngine`, …) for
asyncio callers:

* in-memory verbs (``get``/``set``/``delete``/``incr``/``touch``/…)
  run inline — they are microsecond dict-and-policy work, cheaper than
  any executor hop;
* ``get_or_compute`` awaits (possibly async) loaders **off** the engine
  lock with per-key single-flight coalescing, so a thundering herd of
  tasks missing one tenant key pays its recomputation cost(p) once —
  the same guarantee :class:`~repro.cache.async_store.AsyncStore` gives
  the simulator-facing store, applied at the tenant-routing layer.

``TenantedEngine.async_adapter()`` is the conventional way to get one.
An adapter belongs to a single event loop.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from typing import Dict, Optional, Union

__all__ = ["AsyncEngineAdapter"]

Number = Union[int, float]


class AsyncEngineAdapter:
    """Asyncio face over a (possibly tenant-routing) engine."""

    def __init__(self, engine) -> None:
        self._engine = engine
        self._flights: Dict[str, asyncio.Task] = {}
        self.loads = 0
        self.coalesced_loads = 0

    @property
    def engine(self):
        return self._engine

    # ------------------------------------------------------------------
    # read-through with single-flight
    # ------------------------------------------------------------------
    async def get_or_compute(self, key: str, loader,
                             expire_after: float = 0,
                             cost: Optional[Number] = None):
        """Return the live item or await-load-and-set exactly once per
        concurrent stampede; extra awaiters share the leader's item.

        Any miss — cold or TTL-lapsed — is counted exactly once, by the
        leader's ``engine.get_or_compute``, matching the sync surface:
        the resident probe records hits but not misses
        (``record_miss=False``), and coalesced followers record
        nothing, like AsyncStore's.
        """
        item = self._engine.get(key, record_miss=False)
        if item is not None:
            return item
        flight = self._flights.get(key)
        if flight is None:
            flight = asyncio.ensure_future(
                self._load(key, loader, expire_after, cost))
            self._flights[key] = flight
            flight.add_done_callback(
                lambda _task: self._flights.pop(key, None))
            self.loads += 1
        else:
            self.coalesced_loads += 1
        return await asyncio.shield(flight)

    async def _load(self, key: str, loader, expire_after: float,
                    cost: Optional[Number]):
        started = time.perf_counter()
        value = loader(key)
        if inspect.isawaitable(value):
            value = await value
        elapsed = time.perf_counter() - started
        # hand the precomputed value to the engine's own read-through so
        # the admission decision, cost capture, and hit/miss counters
        # stay exactly the engine's (one decision, shared by everyone)
        return self._engine.get_or_compute(
            key, lambda _key: value, expire_after=expire_after,
            cost=cost if cost is not None else elapsed)

    # ------------------------------------------------------------------
    # inline verbs (in-memory work; delegation keeps one source of truth)
    # ------------------------------------------------------------------
    def get(self, key: str):
        return self._engine.get(key)

    def set(self, key: str, value: bytes, **kwargs) -> bool:
        return self._engine.set(key, value, **kwargs)

    def add(self, key: str, value: bytes, **kwargs) -> bool:
        return self._engine.add(key, value, **kwargs)

    def replace(self, key: str, value: bytes, **kwargs) -> bool:
        return self._engine.replace(key, value, **kwargs)

    def delete(self, key: str) -> bool:
        return self._engine.delete(key)

    def incr(self, key: str, delta: int) -> Optional[int]:
        return self._engine.incr(key, delta)

    def decr(self, key: str, delta: int) -> Optional[int]:
        return self._engine.decr(key, delta)

    def touch(self, key: str, expire_after: float) -> bool:
        return self._engine.touch(key, expire_after)

    def flush_all(self) -> None:
        self._engine.flush_all()

    def stats(self) -> Dict[str, Number]:
        return self._engine.stats()

    @property
    def inflight(self) -> int:
        return len(self._flights)

    def __contains__(self, key: str) -> bool:
        return key in self._engine

    def __len__(self) -> int:
        return len(self._engine)
