"""Twemcache's slab allocation system (paper section 5).

Memory is divided into fixed-size **slabs** (default 1 MiB).  Each slab is
assigned a **slab class** and subdivided into equal chunks; class 1 chunks
are 120 bytes and every subsequent class grows by a factor of ~1.25 (so a
1 MiB class-1 slab holds 8737 chunks, class 2 holds 6898 × 152 B — the
paper's worked numbers).  The largest class is a whole slab.

Once a slab is assigned to a class it keeps that class — the *slab
calcification* pathology the paper describes.  :meth:`SlabAllocator.reassign_slab`
implements Twemcache's mitigation: forcibly take a (caller-chosen, typically
random) slab from another class, evict its occupants and re-class it.

The allocator is pure bookkeeping: chunks are (slab, index) references and
the caller (the engine) maps them to stored items.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import AllocationError, ConfigurationError

__all__ = ["ChunkRef", "Slab", "SlabClassInfo", "SlabAllocator",
           "DEFAULT_SLAB_SIZE", "DEFAULT_MIN_CHUNK", "DEFAULT_GROWTH_FACTOR"]

DEFAULT_SLAB_SIZE = 1 << 20        # 1 MiB, the Twemcache default
DEFAULT_MIN_CHUNK = 120            # class-1 chunk size from the paper
DEFAULT_GROWTH_FACTOR = 1.25
SLAB_HEADER_SIZE = 32              # per-slab metadata, like Twemcache's
#                                    slab_hdr: (1 MiB - 32) / 120 = 8737
#                                    chunks, the paper's worked number


@dataclass(frozen=True, slots=True)
class SlabClassInfo:
    """Geometry of one slab class."""

    class_id: int
    chunk_size: int
    chunks_per_slab: int


class Slab:
    """One slab: a class assignment plus per-chunk occupancy.

    ``class_id`` is set to ``-1`` when the slab is reassigned (its object
    dies and a reborn one takes its place) — the marker lets stale free
    refs be rejected with one comparison instead of a membership scan.
    Occupancy is a counter, not a free-index list: the allocation path
    used to pay an O(chunks-per-slab) ``list.remove`` per allocation.
    """

    __slots__ = ("slab_id", "class_id", "chunks", "used")

    def __init__(self, slab_id: int, class_id: int, num_chunks: int) -> None:
        self.slab_id = slab_id
        self.class_id = class_id
        # chunk index -> occupant key (None = free)
        self.chunks: List[Optional[str]] = [None] * num_chunks
        self.used = 0

    @property
    def used_chunks(self) -> int:
        return self.used

    def occupants(self) -> List[str]:
        return [key for key in self.chunks if key is not None]


@dataclass(frozen=True, slots=True)
class ChunkRef:
    """A handle to one allocated chunk."""

    slab: Slab
    index: int

    @property
    def class_id(self) -> int:
        return self.slab.class_id


class SlabAllocator:
    """Slab-class bookkeeping over a fixed memory budget."""

    def __init__(self,
                 memory_bytes: int,
                 slab_size: int = DEFAULT_SLAB_SIZE,
                 min_chunk: int = DEFAULT_MIN_CHUNK,
                 growth_factor: float = DEFAULT_GROWTH_FACTOR) -> None:
        if slab_size < min_chunk:
            raise ConfigurationError("slab_size must be >= min_chunk")
        if memory_bytes < slab_size:
            raise ConfigurationError(
                f"memory ({memory_bytes}) smaller than one slab ({slab_size})")
        if growth_factor <= 1.0:
            raise ConfigurationError("growth_factor must be > 1")
        if min_chunk < 1:
            raise ConfigurationError("min_chunk must be >= 1")
        self._slab_size = slab_size
        self._max_slabs = memory_bytes // slab_size
        self._classes = self._build_classes(slab_size, min_chunk,
                                            growth_factor)
        self._slabs_by_class: Dict[int, List[Slab]] = {
            info.class_id: [] for info in self._classes}
        self._free_chunks: Dict[int, List[ChunkRef]] = {
            info.class_id: [] for info in self._classes}
        self._next_slab_id = 0
        self._allocated_slabs = 0
        #: sorted chunk sizes for O(log n) size-to-class routing
        self._chunk_sizes = [info.chunk_size for info in self._classes]

    @staticmethod
    def _build_classes(slab_size: int, min_chunk: int,
                       factor: float) -> List[SlabClassInfo]:
        classes: List[SlabClassInfo] = []
        usable = slab_size - SLAB_HEADER_SIZE
        if usable < min_chunk:
            usable = slab_size  # degenerate tiny-slab configs skip the header
        size = min_chunk
        class_id = 1
        while size < usable:
            aligned = (size + 7) & ~7  # 8-byte alignment like memcached
            classes.append(SlabClassInfo(class_id, aligned,
                                         usable // aligned))
            class_id += 1
            next_size = int(math.ceil(aligned * factor))
            size = max(next_size, aligned + 8)
        classes.append(SlabClassInfo(class_id, usable, 1))
        return classes

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def slab_size(self) -> int:
        return self._slab_size

    @property
    def max_slabs(self) -> int:
        return self._max_slabs

    @property
    def allocated_slabs(self) -> int:
        return self._allocated_slabs

    @property
    def classes(self) -> Sequence[SlabClassInfo]:
        return tuple(self._classes)

    def class_info(self, class_id: int) -> SlabClassInfo:
        try:
            return self._classes[class_id - 1]
        except IndexError:
            raise ConfigurationError(f"no slab class {class_id}") from None

    def class_for(self, size: int) -> Optional[int]:
        """Smallest class whose chunk fits ``size`` bytes, or None."""
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        index = bisect_left(self._chunk_sizes, size)
        if index == len(self._chunk_sizes):
            return None
        return self._classes[index].class_id

    def slabs_of_class(self, class_id: int) -> Sequence[Slab]:
        return tuple(self._slabs_by_class[class_id])

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def try_allocate(self, class_id: int, key: str) -> Optional[ChunkRef]:
        """Steps 2-3 of the paper's allocation path: a free chunk in the
        class, else a fresh slab.  Returns None when both fail (the engine
        then runs eviction — step 4)."""
        chunk = self._pop_free_chunk(class_id, key)
        if chunk is not None:
            return chunk
        if self._allocated_slabs < self._max_slabs:
            slab = self._grow_class(class_id)
            free_list = self._free_chunks[class_id]
            for index in range(len(slab.chunks)):
                free_list.append(ChunkRef(slab, index))
            return self._pop_free_chunk(class_id, key)
        return None

    def _pop_free_chunk(self, class_id: int, key: str) -> Optional[ChunkRef]:
        free_list = self._free_chunks[class_id]
        while free_list:
            chunk = free_list.pop()
            # stale refs can linger after slab reassignment; dead slabs
            # carry class_id -1, so one comparison rejects them
            slab = chunk.slab
            if slab.class_id == class_id and \
                    slab.chunks[chunk.index] is None:
                slab.chunks[chunk.index] = key
                slab.used += 1
                return chunk
        return None

    def _grow_class(self, class_id: int) -> Slab:
        info = self.class_info(class_id)
        slab = Slab(self._next_slab_id, class_id, info.chunks_per_slab)
        self._next_slab_id += 1
        self._slabs_by_class[class_id].append(slab)
        self._allocated_slabs += 1
        return slab

    def replace(self, chunk: ChunkRef, key: str) -> None:
        """Hand an occupied chunk to a new key in place (the paper's step
        4: "evict an existing pair ... and replace its contents").

        Equivalent to ``free(chunk)`` + ``try_allocate`` landing on the
        same chunk, without the free-list round trip the eviction path
        would otherwise pay on every insert-at-capacity.
        """
        slab = chunk.slab
        if slab.chunks[chunk.index] is None:
            raise AllocationError("replace of a free slab chunk")
        slab.chunks[chunk.index] = key

    def free(self, chunk: ChunkRef) -> None:
        """Return a chunk to its class's free pool."""
        slab = chunk.slab
        if slab.chunks[chunk.index] is None:
            raise AllocationError("double free of a slab chunk")
        slab.chunks[chunk.index] = None
        slab.used -= 1
        if slab.class_id >= 0:
            # the ref itself goes back to the pool (no new allocation);
            # chunks of dead (reassigned) slabs are simply dropped
            self._free_chunks[slab.class_id].append(chunk)

    # ------------------------------------------------------------------
    # calcification mitigation
    # ------------------------------------------------------------------
    def reassign_slab(self, slab: Slab, to_class: int) -> List[str]:
        """Re-class a slab; returns the keys that were evicted with it.

        The caller picks the victim slab (Twemcache picks randomly) and is
        responsible for forgetting the returned occupants.
        """
        if slab.class_id < 0 or \
                slab not in self._slabs_by_class[slab.class_id]:
            raise AllocationError("slab is not owned by its recorded class")
        evicted = slab.occupants()
        self._slabs_by_class[slab.class_id].remove(slab)
        slab.class_id = -1  # stale free refs die at the validation check
        info = self.class_info(to_class)
        reborn = Slab(slab.slab_id, to_class, info.chunks_per_slab)
        self._slabs_by_class[to_class].append(reborn)
        # stale free refs to the dead slab object are discarded lazily by
        # try_allocate's validation; the reborn slab's chunks all go free
        for index in range(info.chunks_per_slab):
            self._free_chunks[to_class].append(ChunkRef(reborn, index))
        return evicted

    def donor_slabs(self, excluding_class: int) -> List[Slab]:
        """Slabs that could be reassigned (any other class's slabs)."""
        donors: List[Slab] = []
        for class_id, slabs in self._slabs_by_class.items():
            if class_id != excluding_class:
                donors.extend(slabs)
        return donors

    # ------------------------------------------------------------------
    # stats / validation
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "allocated_slabs": self.allocated_slabs,
            "max_slabs": self._max_slabs,
            "classes": len(self._classes),
            "used_chunks": sum(slab.used_chunks
                               for slabs in self._slabs_by_class.values()
                               for slab in slabs),
        }

    def check_invariants(self) -> None:
        """No chunk double-booked; occupancy counters consistent."""
        total = 0
        for class_id, slabs in self._slabs_by_class.items():
            for slab in slabs:
                total += 1
                if slab.class_id != class_id:
                    raise AllocationError("slab filed under the wrong class")
                occupied = sum(1 for key in slab.chunks if key is not None)
                if occupied != slab.used:
                    raise AllocationError(
                        f"slab {slab.slab_id} used-count {slab.used} != "
                        f"{occupied} occupied chunks")
        if total != self._allocated_slabs:
            raise AllocationError("allocated-slab counter out of sync")
