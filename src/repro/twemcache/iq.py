"""The IQ framework's cost measurement (paper section 4, ref [10]).

"This implementation computes the cost of a key-value pair by noting the
timestamp of a miss observed by a get (iqget) and the subsequent insertion
of the computed value using a set (iqset).  The difference between these
two timestamps is used as the cost of the key-value pair."

:class:`IqSession` wraps any object with ``get``/``set`` (the engine or a
network client): ``iqget`` records miss timestamps, ``iqset`` turns the
elapsed time into the stored cost.  The clock is injectable —
:class:`VirtualClock` makes the measurement deterministic in tests and
lets the trace replayer model computation time without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Union

from repro.errors import ConfigurationError

__all__ = ["VirtualClock", "IqSession"]

Number = Union[int, float]


class VirtualClock:
    """A manually advanced clock: ``advance(dt)`` models computation time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ConfigurationError(f"cannot advance clock by {dt}")
        self._now += dt
        return self._now


class IqSession:
    """iqget/iqset over a get/set backend, measuring per-key compute cost."""

    def __init__(self,
                 backend,
                 clock: Optional[Callable[[], float]] = None) -> None:
        """``backend`` needs ``get(key) -> item-with-.value | bytes | None``
        and ``set(key, value, cost=...) -> bool``."""
        self._backend = backend
        self._clock = clock if clock is not None else time.monotonic
        self._pending: Dict[str, float] = {}

    @property
    def pending_misses(self) -> int:
        return len(self._pending)

    def iqget(self, key: str) -> Optional[bytes]:
        """Get; on miss, stamp the miss time for the upcoming iqset."""
        found = self._backend.get(key)
        if found is None:
            self._pending[key] = self._clock()
            return None
        self._pending.pop(key, None)
        value = getattr(found, "value", found)
        return value

    def iqset(self, key: str, value: bytes,
              cost_override: Optional[Number] = None, **kwargs) -> bool:
        """Set with cost = now − miss timestamp (or an explicit override).

        The override is how the trace replayer injects the paper's
        synthetic {1, 100, 10K} costs while exercising the same code path.
        """
        if cost_override is not None:
            cost: Number = cost_override
        else:
            stamped = self._pending.get(key)
            cost = max(0.0, self._clock() - stamped) if stamped is not None \
                else 0.0
        self._pending.pop(key, None)
        return self._backend.set(key, value, cost=cost, **kwargs)
