"""A Twemcache-like storage engine: slab allocation + LRU or CAMP eviction.

The allocation path follows the paper's four steps verbatim:

1. replace an **expired** key-value of the smallest fitting slab class,
2. else take a free chunk within that class's allocated slabs,
3. else allocate a **new slab** to the class,
4. else **evict** an existing pair of the class (LRU in stock Twemcache;
   CAMP in the paper's section 4 implementation) and replace its contents.

When even step 4 cannot help — the class owns *no* slabs at all (slab
calcification) — the engine optionally performs Twemcache's *random slab
eviction*: grab a random slab from another class, evict every occupant and
re-class it.

Eviction policies are instantiated **per slab class**, matching
Twemcache's per-class LRU queues; within a class all chunks are the same
size, so CAMP's cost-to-size ratios degenerate gracefully to cost ratios.
Values are real ``bytes`` (the server stores and serves them), and every
item is charged ``ITEM_HEADER_SIZE`` metadata like the C implementation.

The request surface routes through the unified
:class:`~repro.cache.store.Store` facade: :class:`_SlabBackend` adapts
the four-step allocation path to the structured store protocol, and the
engine's get/set/touch/delete become a thin memcached-protocol adapter
over that Store — TTL classification and structured outcomes are shared
with the simulator's KVS rather than re-implemented here.
"""

from __future__ import annotations

import itertools
import pathlib
import random
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from repro.cache.outcomes import Outcome
from repro.cache.store import Store
from repro.core.camp import CampPolicy
from repro.core.lru import LruPolicy
from repro.core.policy import EvictionPolicy
from repro.core.rounding import RatioConverter
from repro.errors import ConfigurationError
from repro.persistence.format import (
    SNAPSHOT_MAGIC,
    PersistenceError,
    SnapshotCorruptError,
    atomic_write,
    decode_payload,
    encode_payload,
    read_magic,
    read_record,
    write_magic,
    write_record,
)
from repro.persistence.manager import SnapshotThread
from repro.tiering.disk_tier import DiskTier
from repro.tiering.filter import AlwaysDemote, CostDensityFilter
from repro.twemcache.slab import ChunkRef, SlabAllocator

__all__ = ["StoredItem", "TwemcacheEngine", "ITEM_HEADER_SIZE"]

Number = Union[int, float]

#: bytes charged per item for metadata (key pointer, CAS, flags, links)
ITEM_HEADER_SIZE = 48


@dataclass(slots=True)
class StoredItem:
    """One resident key-value pair and its metadata."""

    key: str
    value: bytes
    flags: int
    expire_at: float          # absolute time, 0 = never
    cost: Number
    chunk: ChunkRef
    class_id: int

    def expired(self, now: float) -> bool:
        return self.expire_at != 0 and now >= self.expire_at


class _SlabBackend:
    """The four-step slab allocation path behind the Store protocol.

    Lets the engine's request surface share the facade's TTL handling
    and structured outcomes while keeping slab mechanics (chunk
    acquisition, calcification cures, per-class policies) local.
    """

    #: values (StoredItems) live in the engine's item table, not the Store
    stores_values = True

    def __init__(self, engine: "TwemcacheEngine") -> None:
        self._engine = engine

    def lookup(self, key: str) -> Outcome:
        engine = self._engine
        item = engine._items.get(key)
        if item is None:
            if engine._tier is not None:
                return self._lookup_tier(key)
            return Outcome.MISS
        expire_at = item.expire_at
        if expire_at != 0 and engine._clock() >= expire_at:
            engine._forget(item)
            return Outcome.EXPIRED
        engine._policy_for_class(item.class_id).on_hit(key)
        return Outcome.HIT

    def _lookup_tier(self, key: str) -> Outcome:
        """The slab miss path's L2 probe: a disk hit re-enters the slabs
        through the ordinary four-step insert (TTL carried through)."""
        engine = self._engine
        record = engine._tier.get(key)
        if record is None:
            return Outcome.MISS
        ttl = record.remaining_ttl(engine._clock())
        if ttl is not None and ttl <= 0:
            engine._tier.delete(key, tombstone=False)
            return Outcome.MISS
        value = record.value if record.value is not None else b""
        size = len(key) + len(value) + ITEM_HEADER_SIZE
        outcome = self.insert(key, size, record.cost, ttl=ttl,
                              value=value, flags=record.flags)
        if outcome is Outcome.MISS_INSERTED:
            engine._tier.delete(key)   # tombstoned: the slabs own it now
            engine.tier_promotions += 1
            return Outcome.HIT_L2
        engine.tier_promotions_rejected += 1
        return Outcome.MISS_PROMOTED

    def insert(self, key: str, size: int, cost: Number,
               ttl: Optional[float] = None, value: bytes = b"",
               flags: int = 0) -> Outcome:
        if value is None:
            # metadata-only inserts (Store.access simulation traffic)
            # must still yield a renderable item
            value = b""
        engine = self._engine
        class_id = engine._allocator.class_for(size)
        if class_id is None:
            return Outcome.MISS_REJECTED_TOO_LARGE
        existing = engine._items.get(key)
        if existing is not None and existing.class_id == class_id:
            # same class: free the old chunk first so the acquisition
            # below can reuse it (in-place replacement)
            engine._forget(existing)
            existing = None
        chunk = engine._acquire_chunk(class_id, key)
        if chunk is None:
            # rejected replacement: a cross-class old copy stays resident
            return Outcome.MISS_REJECTED_TOO_LARGE
        if existing is not None and engine._items.get(key) is existing:
            # cross-class replacement; guard against the old copy having
            # already been evicted by a random slab steal during
            # acquisition (its chunk would be stale)
            engine._forget(existing)
        expire_at = engine._clock() + ttl if ttl else 0
        item = StoredItem(key=key, value=value, flags=flags,
                          expire_at=expire_at, cost=cost,
                          chunk=chunk, class_id=class_id)
        engine._items[key] = item
        if expire_at:
            engine._ttl_items += 1
        engine._policy_for_class(class_id).on_insert(key, size, cost)
        if engine._tier is not None and key in engine._tier:
            # a fresh set supersedes any demoted copy
            engine._tier.delete(key)
        return Outcome.MISS_INSERTED

    def delete(self, key: str) -> bool:
        engine = self._engine
        item = engine._items.get(key)
        found = False
        if item is not None:
            engine._forget(item)
            found = True
        if engine._tier is not None and engine._tier.delete(key):
            found = True
        return found

    def touch(self, key: str, ttl: Optional[float] = None) -> bool:
        engine = self._engine
        item = engine._items.get(key)
        if item is None or item.expired(engine._clock()):
            return False
        had_ttl = item.expire_at != 0
        item.expire_at = engine._clock() + ttl if ttl else 0
        engine._ttl_items += (item.expire_at != 0) - had_ttl
        return True

    def value_of(self, key: str) -> Optional[StoredItem]:
        return self._engine._items.get(key)

    def stats(self) -> Dict[str, Union[int, float]]:
        return self._engine.stats()

    def __contains__(self, key: str) -> bool:
        engine = self._engine
        if key in engine._items:
            return True
        return engine._tier is not None and key in engine._tier

    def __len__(self) -> int:
        engine = self._engine
        tier_items = len(engine._tier) if engine._tier is not None else 0
        return len(engine._items) + tier_items


class TwemcacheEngine:
    """Slab-allocated KVS with pluggable per-class eviction."""

    def __init__(self,
                 memory_bytes: int,
                 eviction: str = "lru",
                 camp_precision: Optional[int] = 5,
                 slab_size: int = 1 << 20,
                 random_slab_eviction: bool = True,
                 clock: Optional[Callable[[], float]] = None,
                 seed: int = 0,
                 snapshot_path: Optional[str] = None,
                 tier_dir: Optional[str] = None,
                 tier_bytes: int = 64 << 20,
                 tier_min_cost_per_byte: float = 0.0,
                 tier_segment_bytes: int = 1 << 20) -> None:
        """``eviction`` is ``"lru"`` (stock Twemcache) or ``"camp"`` (the
        paper's IQ-Twemcache variant).  ``clock`` is injectable for
        deterministic expiry tests (defaults to ``time.monotonic``).
        ``snapshot_path`` is the default target of :meth:`save` (and the
        protocol's ``save`` verb).

        ``tier_dir`` enables *tiered mode*: slab evictions are demoted to
        a :class:`~repro.tiering.disk_tier.DiskTier` under that directory
        (``tier_bytes`` capacity, recovered across restarts), slab misses
        probe it and promote hits back into the slabs.
        ``tier_min_cost_per_byte`` > 0 installs a
        :class:`~repro.tiering.filter.CostDensityFilter` so only
        expensive-per-byte victims are written to disk."""
        if eviction not in ("lru", "camp"):
            raise ConfigurationError(
                f"eviction must be 'lru' or 'camp', got {eviction!r}")
        self._eviction_kind = eviction
        self._camp_precision = camp_precision
        self._allocator = SlabAllocator(memory_bytes, slab_size=slab_size)
        self._random_slab_eviction = random_slab_eviction
        self._clock = clock if clock is not None else time.monotonic
        self._rng = random.Random(seed)
        self._items: Dict[str, StoredItem] = {}
        #: resident items carrying a TTL; while 0, the allocation path's
        #: expired-replacement probe (step 1) is provably fruitless and
        #: is skipped entirely — trace replays without TTLs pay nothing
        self._ttl_items = 0
        self._policies: Dict[int, EvictionPolicy] = {}
        # CAMP instances share one converter so ratios stay comparable
        self._converter = RatioConverter()
        self._lock = threading.RLock()
        # the store shares the engine lock, so engine.store is exactly as
        # thread-safe as the engine's own methods
        self._store = Store(_SlabBackend(self), sizer=self._item_size,
                            lock=self._lock)
        self._snapshot_path = snapshot_path
        self._snapshot_daemon: Optional[SnapshotThread] = None
        # tiered mode: DRAM slabs over an on-disk victim tier
        self._tier: Optional[DiskTier] = None
        self._tier_filter = None
        if tier_dir is not None:
            self._tier = DiskTier(tier_dir, tier_bytes,
                                  segment_bytes=tier_segment_bytes,
                                  clock=self._clock)
            self._tier_filter = (CostDensityFilter(tier_min_cost_per_byte)
                                 if tier_min_cost_per_byte > 0
                                 else AlwaysDemote())
        # counters
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expired_reclaims = 0
        self.slab_reassignments = 0
        self.snapshots_taken = 0
        self.snapshot_errors = 0
        self.tier_demotions = 0
        self.tier_filtered_drops = 0
        self.tier_promotions = 0
        self.tier_promotions_rejected = 0

    # ------------------------------------------------------------------
    # policy plumbing
    # ------------------------------------------------------------------
    def _policy_for_class(self, class_id: int) -> EvictionPolicy:
        policy = self._policies.get(class_id)
        if policy is None:
            if self._eviction_kind == "camp":
                # production path: stats accounting off (zero-cost toggle;
                # decisions are identical, see the equivalence tests)
                policy = CampPolicy(precision=self._camp_precision,
                                    converter=self._converter, stats=False)
            else:
                policy = LruPolicy()
            self._policies[class_id] = policy
        return policy

    def _item_size(self, key: str, value: bytes) -> int:
        return len(key) + len(value) + ITEM_HEADER_SIZE

    # ------------------------------------------------------------------
    # public API (get / set / delete) — a thin adapter over the Store
    # ------------------------------------------------------------------
    def get(self, key: str,
            record_miss: bool = True) -> Optional[StoredItem]:
        """Fetch a live item (expired items are lazily reclaimed).

        ``record_miss=False`` keeps a miss out of the counters — for
        probes whose caller will re-drive the miss through
        ``get_or_compute`` and must not count it twice (the async
        adapter's resident fast path).
        """
        with self._lock:
            result = self._store.get(key)
            if result.hit:
                self.hits += 1
                return result.value
            if record_miss:
                self.misses += 1
            return None

    def set(self,
            key: str,
            value: bytes,
            flags: int = 0,
            expire_after: float = 0,
            cost: Number = 0) -> bool:
        """Store a value; returns True only when the new pair was stored.

        A rejected *replacement* returns False with the old copy still
        resident (check ``store.put(...).outcome`` for the reason).
        """
        # no engine-lock acquisition here: put_outcome serializes on the
        # same (re-entrant) engine lock, and the size arithmetic is pure
        size = len(key) + len(value) + ITEM_HEADER_SIZE
        outcome = self._store.put_outcome(key, size, cost,
                                          ttl=expire_after or None,
                                          value=value, flags=flags)
        return outcome is Outcome.MISS_INSERTED

    def add(self, key: str, value: bytes, **kwargs) -> bool:
        """Store only if the key is absent (memcached ``add``)."""
        with self._lock:
            existing = self._items.get(key)
            if existing is not None and not existing.expired(self._clock()):
                return False
            return self.set(key, value, **kwargs)

    def replace(self, key: str, value: bytes, **kwargs) -> bool:
        """Store only if the key is present (memcached ``replace``)."""
        with self._lock:
            existing = self._items.get(key)
            if existing is None or existing.expired(self._clock()):
                return False
            return self.set(key, value, **kwargs)

    def incr(self, key: str, delta: int) -> Optional[int]:
        """Increment an ASCII-decimal value; None when the key is absent.

        Raises :class:`~repro.errors.ProtocolError` for non-numeric values,
        mirroring memcached's CLIENT_ERROR.
        """
        return self._arith(key, delta)

    def decr(self, key: str, delta: int) -> Optional[int]:
        """Decrement, clamped at zero like memcached."""
        return self._arith(key, -delta)

    def _arith(self, key: str, delta: int) -> Optional[int]:
        from repro.errors import ProtocolError
        with self._lock:
            item = self._items.get(key)
            if item is None or item.expired(self._clock()):
                return None
            try:
                current = int(item.value.decode("ascii"))
            except (UnicodeDecodeError, ValueError):
                raise ProtocolError(
                    "cannot increment or decrement non-numeric value"
                ) from None
            updated = max(0, current + delta)
            payload = str(updated).encode("ascii")
            expire_after = 0.0
            if item.expire_at:
                expire_after = max(0.0, item.expire_at - self._clock())
            self.set(key, payload, flags=item.flags,
                     expire_after=expire_after, cost=item.cost)
            return updated

    def touch(self, key: str, expire_after: float) -> bool:
        """Reset a live item's expiry without transferring its value."""
        with self._lock:
            return self._store.touch(key, expire_after or None)

    def flush_all(self) -> None:
        """Drop every item (memcached ``flush_all``), both tiers."""
        with self._lock:
            for item in list(self._items.values()):
                self._forget(item)
            if self._tier is not None:
                self._tier.clear()

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._store.delete(key)

    def touch_cost(self, key: str, cost: Number) -> bool:
        """Update the recorded cost of a live item (IQ refresh)."""
        with self._lock:
            item = self._items.get(key)
            if item is None:
                return False
            item.cost = cost
            return True

    # ------------------------------------------------------------------
    # allocation path (the paper's four steps)
    # ------------------------------------------------------------------
    def _acquire_chunk(self, class_id: int, key: str) -> Optional[ChunkRef]:
        # step 1: replace an expired pair of this class (skipped outright
        # while no resident item carries a TTL)
        if self._ttl_items and self._reclaim_expired(class_id):
            self.expired_reclaims += 1
        # steps 2-3: free chunk or fresh slab
        chunk = self._allocator.try_allocate(class_id, key)
        if chunk is not None:
            return chunk
        # step 4: evict within the class
        policy = self._policy_for_class(class_id)
        if len(policy):
            victim_key = policy.pop_victim()
            victim = self._items.pop(victim_key)
            if victim.expire_at:
                self._ttl_items -= 1
            self.evictions += 1
            if self._tier is not None:
                self._maybe_demote(victim)
            # step 4 verbatim: the victim's chunk is the same class, so
            # the new pair replaces its contents in place — no free-list
            # round trip on the eviction path
            self._allocator.replace(victim.chunk, key)
            return victim.chunk
        # calcified: no slabs and nothing to evict in this class
        if self._random_slab_eviction:
            return self._steal_random_slab(class_id, key)
        return None

    def _reclaim_expired(self, class_id: int, probe_depth: int = 5) -> bool:
        """Check a few eviction candidates of the class for expiry."""
        policy = self._policies.get(class_id)
        if policy is None or not isinstance(policy, LruPolicy):
            return self._reclaim_expired_scan(class_id, probe_depth)
        now = self._clock()
        # bounded walk from the LRU end — the seed materialized the whole
        # queue per insert, an O(resident) tax on every set
        for key in itertools.islice(policy.keys_lru_to_mru(), probe_depth):
            item = self._items[key]
            if item.expired(now):
                self._forget(item)
                return True
        return False

    def _reclaim_expired_scan(self, class_id: int, probe_depth: int) -> bool:
        # bounded probe over the oldest insertions (dict preserves order);
        # expiry is best-effort here, exactly like memcached's lazy reclaim
        now = self._clock()
        for probed, item in enumerate(self._items.values()):
            if probed >= probe_depth:
                break
            if item.class_id == class_id and item.expired(now):
                self._forget(item)
                return True
        return False

    def _steal_random_slab(self, class_id: int, key: str
                           ) -> Optional[ChunkRef]:
        donors = self._allocator.donor_slabs(excluding_class=class_id)
        if not donors:
            return None
        slab = self._rng.choice(donors)
        donor_class = slab.class_id
        evicted = self._allocator.reassign_slab(slab, class_id)
        donor_policy = self._policies.get(donor_class)
        for victim_key in evicted:
            victim = self._items.pop(victim_key, None)
            if victim is not None and victim.expire_at:
                self._ttl_items -= 1
            if donor_policy is not None and victim_key in donor_policy:
                donor_policy.on_remove(victim_key)
            self.evictions += 1
            if victim is not None and self._tier is not None:
                self._maybe_demote(victim)
        self.slab_reassignments += 1
        return self._allocator.try_allocate(class_id, key)

    def _maybe_demote(self, victim: StoredItem) -> None:
        """Offer an eviction victim to the disk tier (tiered mode only;
        expired victims and filter rejects are simply dropped)."""
        if victim.expired(self._clock()):
            return
        size = len(victim.key) + len(victim.value) + ITEM_HEADER_SIZE
        if not self._tier_filter.should_demote(victim.key, size,
                                               victim.cost):
            self.tier_filtered_drops += 1
            return
        if self._tier.put(victim.key, victim.value, size, victim.cost,
                          expire_at=victim.expire_at, flags=victim.flags):
            self.tier_demotions += 1

    def _forget(self, item: StoredItem) -> None:
        if self._items.pop(item.key, None) is not None and item.expire_at:
            self._ttl_items -= 1
        policy = self._policies.get(item.class_id)
        if policy is not None and item.key in policy:
            policy.on_remove(item.key)
        self._allocator.free(item.chunk)

    # ------------------------------------------------------------------
    # durable state (the server's SAVE verb / background saver)
    # ------------------------------------------------------------------
    def save(self, path: Optional[str] = None) -> int:
        """Atomically snapshot every live item to ``path`` (or the
        configured ``snapshot_path``); returns the item count.

        The slab engine's snapshot is *logical* — key, value bytes,
        flags, remaining TTL, cost — not a dump of slab memory: chunk
        layout is an allocation artifact that :meth:`load` rebuilds by
        replaying ``set``, which also re-derives the per-class eviction
        policies.  Items are written in table (insertion) order, so a
        reloaded engine is warm but its LRU/CAMP recency is approximate;
        exact priority round-trips live in :mod:`repro.persistence` for
        the simulator KVS.
        """
        with self._lock:
            target = path or self._snapshot_path
            if target is None:
                raise PersistenceError(
                    "no snapshot path: pass save(path) or configure "
                    "snapshot_path on the engine")
            final = pathlib.Path(target)
            try:
                final.parent.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise PersistenceError(
                    f"cannot create snapshot directory "
                    f"{final.parent}: {exc}") from exc
            now = self._clock()
            items = [item for item in self._items.values()
                     if not item.expired(now)]

            def write_body(handle):
                write_magic(handle, SNAPSHOT_MAGIC)
                write_record(handle, {
                    "kind": "twemcache", "version": 1, "clock": now,
                    "items": len(items),
                    "eviction": self._eviction_kind,
                })
                for item in items:
                    write_record(handle, {
                        "k": item.key, "v": encode_payload(item.value),
                        "f": item.flags, "e": item.expire_at,
                        "c": item.cost,
                    })
                write_record(handle, {"kind": "footer",
                                      "items": len(items)})

            atomic_write(final, write_body)
            self.snapshots_taken += 1
            return len(items)

    def load(self, path: Optional[str] = None) -> int:
        """Warm-start from a :meth:`save` file; returns items stored.

        Expiry is rebased onto this engine's clock (remaining TTL
        preserved; already-lapsed items are skipped).  Items the current
        memory budget cannot admit are dropped by the normal allocation
        path, not an error.
        """
        with self._lock:
            target = path or self._snapshot_path
            if target is None:
                raise PersistenceError(
                    "no snapshot path: pass load(path) or configure "
                    "snapshot_path on the engine")
            try:
                handle = open(target, "rb")
            except OSError as exc:
                raise PersistenceError(
                    f"cannot read snapshot {target}: {exc}") from exc
            stored = 0
            with handle:
                read_magic(handle, SNAPSHOT_MAGIC)
                header = read_record(handle)
                if header is None or header.get("kind") != "twemcache":
                    raise SnapshotCorruptError(
                        f"{target}: not a twemcache snapshot")
                saved_clock = float(header["clock"])
                expected = int(header["items"])
                for _ in range(expected):
                    body = read_record(handle)
                    if body is None or "k" not in body:
                        raise SnapshotCorruptError(
                            f"{target}: truncated item section")
                    expire_after = 0.0
                    expire_at = float(body.get("e", 0.0))
                    if expire_at:
                        expire_after = expire_at - saved_clock
                        if expire_after <= 0:
                            continue
                    if self.set(str(body["k"]), decode_payload(body["v"]),
                                flags=int(body.get("f", 0)),
                                expire_after=expire_after,
                                cost=body.get("c", 0)):
                        stored += 1
                footer = read_record(handle)
                if footer is None or footer.get("kind") != "footer" \
                        or int(footer.get("items", -1)) != expected:
                    raise SnapshotCorruptError(
                        f"{target}: missing or wrong footer")
            return stored

    def start_snapshot_daemon(self, interval: float = 30.0,
                              path: Optional[str] = None) -> SnapshotThread:
        """Save every ``interval`` seconds in a background thread."""
        if self._snapshot_daemon is not None and self._snapshot_daemon.running:
            raise PersistenceError("snapshot daemon already running")
        if path is not None:
            self._snapshot_path = path
        if self._snapshot_path is None:
            raise PersistenceError(
                "no snapshot path configured for the snapshot daemon")

        def _on_error(_exc: Exception) -> None:
            self.snapshot_errors += 1

        self._snapshot_daemon = SnapshotThread(
            self.save, interval=interval, name="twemcache-snapshot",
            on_error=_on_error).start()
        return self._snapshot_daemon

    def stop_snapshot_daemon(self, final_save: bool = True) -> None:
        """Stop the background saver (writing one last snapshot by
        default); no-op when none is running."""
        if self._snapshot_daemon is not None:
            self._snapshot_daemon.stop(final_save=final_save)
            self._snapshot_daemon = None

    @property
    def snapshot_path(self) -> Optional[str]:
        return self._snapshot_path

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._items

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def allocator(self) -> SlabAllocator:
        return self._allocator

    @property
    def tier(self) -> Optional[DiskTier]:
        """The on-disk victim tier (None unless built with ``tier_dir``)."""
        return self._tier

    def close(self) -> None:
        """Release tier file handles (tiered mode; no-op otherwise)."""
        with self._lock:
            if self._tier is not None:
                self._tier.close()

    @property
    def store(self) -> Store:
        """The unified request facade this engine routes through."""
        return self._store

    def get_or_compute(self, key: str, loader, expire_after: float = 0,
                       cost: Optional[Number] = None) -> Optional[StoredItem]:
        """Read-through helper: return the live item or load-and-set.

        ``loader(key)`` must return the value ``bytes``; its measured
        wall time becomes the item's cost unless ``cost`` is given.
        Returns the resident :class:`StoredItem`, or None when the
        loaded value cannot be stored.
        """
        with self._lock:
            result = self._store.get_or_compute(
                key, loader, ttl=expire_after or None, cost=cost)
            if result.hit:
                self.hits += 1
                return result.value
            self.misses += 1
            return self._items.get(key) if result.resident else None

    def async_adapter(self):
        """An :class:`~repro.tenancy.aio.AsyncEngineAdapter` over this
        engine: awaitable ``get_or_compute`` with per-key single-flight
        coalescing (loaders run off the engine lock)."""
        from repro.tenancy.aio import AsyncEngineAdapter
        return AsyncEngineAdapter(self)

    @property
    def eviction_kind(self) -> str:
        return self._eviction_kind

    def stats(self) -> Dict[str, Union[int, float]]:
        with self._lock:
            stats: Dict[str, Union[int, float]] = {
                "items": len(self._items),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expired_reclaims": self.expired_reclaims,
                "slab_reassignments": self.slab_reassignments,
                "snapshots_taken": self.snapshots_taken,
                "snapshot_errors": self.snapshot_errors,
            }
            stats.update(self._allocator.stats())
            if self._tier is not None:
                stats.update(self._tier.stats())
                stats["tier_demotions"] = self.tier_demotions
                stats["tier_filtered_drops"] = self.tier_filtered_drops
                stats["tier_promotions"] = self.tier_promotions
                stats["tier_promotions_rejected"] = \
                    self.tier_promotions_rejected
            return stats

    def digest(self, prefix: str = "") -> Dict[str, tuple]:
        """Key → ``(cost, crc32(value))`` over the live DRAM items.

        The anti-entropy summary behind the wire's ``digest`` verb:
        cheap enough to compute under the lock (one crc32 per item, no
        copies), rich enough that two replicas agreeing on every
        ``(cost, crc)`` pair are byte-identical for cluster purposes —
        value bytes *and* the CAMP cost a re-store must piggyback.
        ``prefix`` narrows the summary to matching keys.
        """
        with self._lock:
            now = self._clock()
            out: Dict[str, tuple] = {}
            for key, item in self._items.items():
                if prefix and not key.startswith(prefix):
                    continue
                if item.expire_at and item.expired(now):
                    continue
                out[key] = (item.cost, zlib.crc32(item.value))
            return out

    def check_consistency(self) -> None:
        """Items, policies and allocator agree (test hook)."""
        with self._lock:
            self._allocator.check_invariants()
            policy_total = sum(len(p) for p in self._policies.values())
            if policy_total != len(self._items):
                raise ConfigurationError(
                    "policy residency disagrees with item table")
            for key, item in self._items.items():
                if item.chunk.slab.chunks[item.chunk.index] != key:
                    raise ConfigurationError(
                        f"chunk for {key!r} does not reference it")
            if self._tier is not None:
                self._tier.check_invariants()
                for key in list(self._tier.keys()):
                    if key in self._items:
                        raise ConfigurationError(
                            f"key {key!r} resident in both slab memory "
                            f"and the disk tier")