"""``AsyncSocketClient`` — pooled, pipelining asyncio protocol client.

The sync :class:`~repro.twemcache.client.SocketClient` is strictly
request/response: every call pays a full network round trip.  This
client keeps a pool of connections and *pipelines*: ``get_many`` /
``set_many`` write a whole batch of commands per connection in one
``send`` and only then read the replies, so N requests cost ~one round
trip per pool connection instead of N.  It speaks to either server
(threaded or asyncio) — the wire format is identical — which is exactly
how ``benchmarks/test_async_serving.py`` compares the two fairly.

Single-key ``get``/``set``/``delete`` work too (acquire a pooled
connection, one round trip), so the client is a drop-in async
counterpart for the sync surface, plus ``stats``/``version``/``save``.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError
from repro.faults.transport import apply_connect_faults, apply_read_faults
from repro.twemcache.client import _Value
from repro.twemcache.protocol import (CRLF, chunk_get_keys, parse_number,
                                      parse_value_header)

__all__ = ["AsyncSocketClient"]

Number = Union[int, float]

#: generous stream limit so large values fit one readuntil/readexactly
_STREAM_LIMIT = 16 << 20


class _Connection:
    """One pooled stream pair with response-parsing helpers."""

    __slots__ = ("reader", "writer", "fault_plan", "fault_target")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 fault_plan=None, fault_target: str = "") -> None:
        self.reader = reader
        self.writer = writer
        self.fault_plan = fault_plan
        self.fault_target = fault_target

    async def read_line(self) -> bytes:
        # one read-seam fault opportunity per reply line
        await apply_read_faults(self.fault_plan, self.fault_target)
        try:
            line = await self.reader.readuntil(CRLF)
        except asyncio.IncompleteReadError:
            raise ProtocolError("server closed the connection") from None
        return line[:-2]

    async def read_exact(self, n: int) -> bytes:
        try:
            return await self.reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise ProtocolError("server closed the connection") from None

    async def read_values(self, out: Dict[str, _Value]) -> None:
        """Consume one get response (VALUE blocks until END) into out."""
        while True:
            line = await self.read_line()
            if line == b"END":
                return
            if line.startswith(b"VALUE "):
                key, flags, nbytes, cost = parse_value_header(line)
                data = await self.read_exact(nbytes)
                trailer = await self.read_exact(2)
                if trailer != CRLF:
                    raise ProtocolError("missing CRLF after data block")
                out[key] = _Value(data, flags, cost)
            elif line.startswith(b"CLIENT_ERROR"):
                raise ProtocolError(line.decode())
            else:
                raise ProtocolError(f"unexpected reply {line!r}")

    def close(self) -> None:
        self.writer.close()


class AsyncSocketClient:
    """Pooled asyncio client for the memcached-style text protocol."""

    def __init__(self, address: Tuple[str, int], pool_size: int = 4,
                 timeout: float = 10.0, fault_plan=None) -> None:
        """``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`)
        injects connect/read faults deterministically — tests and chaos
        drills only; None (the default) adds no overhead."""
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self._address = address
        self._pool_size = pool_size
        self._timeout = timeout
        self._fault_plan = fault_plan
        self._fault_target = f"{address[0]}:{address[1]}"
        self._idle: List[_Connection] = []
        self._all: List[_Connection] = []
        self._available = asyncio.Semaphore(pool_size)
        # serializes multi-connection checkouts: without it two
        # concurrent batches can each hold part of the pool and wait
        # forever for the rest (partial-acquisition deadlock)
        self._checkout = asyncio.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------
    async def _connect(self) -> _Connection:
        host, port = self._address
        await apply_connect_faults(self._fault_plan, self._fault_target)
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=_STREAM_LIMIT),
            timeout=self._timeout)
        conn = _Connection(reader, writer, self._fault_plan,
                           self._fault_target)
        self._all.append(conn)
        return conn

    async def _acquire(self) -> _Connection:
        if self._closed:
            raise ProtocolError("client is closed")
        await self._available.acquire()
        if self._idle:
            return self._idle.pop()
        try:
            return await self._connect()
        except BaseException:
            # hand the permit back or failed dials shrink the pool
            # until every operation blocks forever
            self._available.release()
            raise

    def _release(self, conn: _Connection, broken: bool = False) -> None:
        if broken:
            conn.close()
            if conn in self._all:
                self._all.remove(conn)
        else:
            self._idle.append(conn)
        self._available.release()

    async def _checked_out(self, count: int) -> List[_Connection]:
        """Acquire up to ``count`` pool connections for a fan-out batch.

        Checkouts are serialized: a batch waiting for permits never
        blocks another batch that already holds some (single-key
        operations release their one permit independently, so the lock
        holder always makes progress).
        """
        async with self._checkout:
            conns: List[_Connection] = []
            try:
                for _ in range(min(count, self._pool_size)):
                    conns.append(await self._acquire())
            except BaseException:
                for conn in conns:
                    self._release(conn)
                raise
            return conns

    # ------------------------------------------------------------------
    # single-key operations
    # ------------------------------------------------------------------
    async def get(self, *keys: str) -> Optional[_Value]:
        """Fetch one or more keys in one command; returns the *last* hit
        for the single-key call shape (mirrors the sync client), or use
        :meth:`get_many` for a dict of every hit."""
        found = await self.get_map(keys)
        if not keys:
            return None
        for key in reversed(keys):
            if key in found:
                return found[key]
        return None

    async def get_map(self, keys: Sequence[str],
                      with_cost: bool = False) -> Dict[str, _Value]:
        """Multi-key get on one pooled connection (commands chunked to
        stay under the server's line bound, pipelined).

        ``with_cost=True`` issues ``gets`` so each returned ``_Value``
        carries the item's CAMP cost — the cluster tier needs it to
        read-repair without flattening costs to 0."""
        chunks = chunk_get_keys(list(keys))
        if not chunks:
            return {}
        verb = "gets " if with_cost else "get "
        conn = await self._acquire()
        try:
            conn.writer.write(b"".join(
                (verb + " ".join(chunk)).encode() + CRLF
                for chunk in chunks))
            await conn.writer.drain()
            out: Dict[str, _Value] = {}
            for _ in chunks:
                await asyncio.wait_for(conn.read_values(out),
                                       timeout=self._timeout)
        except BaseException:
            # BaseException, not Exception: CancelledError (an outer
            # wait_for / deadline budget expiring mid-read) must also
            # discard the connection — its unread reply bytes would
            # poison the next caller — and hand the permit back, or the
            # pool wedges one permit at a time
            self._release(conn, broken=True)
            raise
        self._release(conn)
        return out

    async def set(self, key: str, value: bytes, flags: int = 0,
                  expire_after: float = 0, cost: Number = 0) -> bool:
        results = await self.set_many(
            [(key, value, flags, expire_after, cost)])
        return results[0]

    async def delete(self, key: str) -> bool:
        reply = await self._round_trip(f"delete {key}".encode() + CRLF)
        if reply == b"DELETED":
            return True
        if reply == b"NOT_FOUND":
            return False
        raise ProtocolError(f"unexpected reply {reply!r}")

    async def _round_trip(self, payload: bytes) -> bytes:
        conn = await self._acquire()
        try:
            conn.writer.write(payload)
            await conn.writer.drain()
            reply = await asyncio.wait_for(conn.read_line(),
                                           timeout=self._timeout)
        except BaseException:
            # includes CancelledError — see get_map
            self._release(conn, broken=True)
            raise
        self._release(conn)
        return reply

    # ------------------------------------------------------------------
    # pipelined batches
    # ------------------------------------------------------------------
    async def get_many(self, keys: Sequence[str],
                       keys_per_command: int = 1,
                       with_cost: bool = False) -> Dict[str, _Value]:
        """Pipelined fetch of many keys across the pool.

        Keys are sharded over the pool's connections; each connection
        receives *all* its get commands in one write, then replies are
        parsed in order.  ``keys_per_command`` > 1 additionally packs
        several keys into each multi-get command line; ``with_cost``
        switches to the ``gets`` verb (values carry their CAMP cost).
        """
        if not keys:
            return {}
        conns = await self._checked_out(len(keys))
        shards = [list(keys[i::len(conns)]) for i in range(len(conns))]
        verb = "gets " if with_cost else "get "

        async def run(conn: _Connection, shard: List[str]
                      ) -> Dict[str, _Value]:
            chunks = chunk_get_keys(shard, max_keys=keys_per_command)
            payload = b"".join(
                (verb + " ".join(chunk)).encode() + CRLF
                for chunk in chunks)
            conn.writer.write(payload)
            await conn.writer.drain()
            found: Dict[str, _Value] = {}
            for _ in chunks:
                await conn.read_values(found)
            return found

        return await self._fan_out(conns, shards, run, merge=dict)

    async def set_many(self,
                       entries: Iterable[Tuple[str, bytes, int, float,
                                               Number]]) -> List[bool]:
        """Pipelined stores: ``(key, value[, flags, expire_after, cost])``
        rows fanned over the pool, one write per connection; returns
        per-entry STORED booleans in input order."""
        rows = [self._normalize_entry(entry) for entry in entries]
        if not rows:
            return []
        conns = await self._checked_out(len(rows))
        shards = [rows[i::len(conns)] for i in range(len(conns))]

        async def run(conn: _Connection, shard) -> List[bool]:
            payload = bytearray()
            for key, value, flags, expire_after, cost in shard:
                header = f"set {key} {flags} {expire_after} " \
                         f"{len(value)} {cost}"
                payload += header.encode() + CRLF + value + CRLF
            conn.writer.write(bytes(payload))
            await conn.writer.drain()
            stored = []
            for _ in shard:
                reply = await conn.read_line()
                if reply == b"STORED":
                    stored.append(True)
                elif reply == b"NOT_STORED":
                    stored.append(False)
                else:
                    raise ProtocolError(f"unexpected reply {reply!r}")
            return stored

        per_conn = await self._fan_out(conns, shards, run, merge=None)
        # un-shard back to input order (shard i holds rows i::n)
        results: List[bool] = [False] * len(rows)
        for i, shard_results in enumerate(per_conn):
            for j, value in enumerate(shard_results):
                results[i + j * len(conns)] = value
        return results

    @staticmethod
    def _normalize_entry(entry) -> Tuple[str, bytes, int, float, Number]:
        key, value = entry[0], entry[1]
        flags = entry[2] if len(entry) > 2 else 0
        expire_after = entry[3] if len(entry) > 3 else 0
        cost = entry[4] if len(entry) > 4 else 0
        return key, value, flags, expire_after, cost

    async def _fan_out(self, conns, shards, run, merge):
        tasks = [asyncio.ensure_future(run(conn, shard))
                 for conn, shard in zip(conns, shards)]
        try:
            results = await asyncio.wait_for(
                asyncio.gather(*tasks), timeout=self._timeout * len(shards))
        except BaseException:
            # BaseException so an outer cancellation also reaches the
            # cleanup below; quiesce sibling shards before tearing
            # their sockets down, or they raise into the void mid-read
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            for conn in conns:
                self._release(conn, broken=True)
            raise
        for conn in conns:
            self._release(conn)
        if merge is dict:
            merged: Dict[str, _Value] = {}
            for result in results:
                merged.update(result)
            return merged
        return results

    # ------------------------------------------------------------------
    # admin verbs
    # ------------------------------------------------------------------
    async def stats(self) -> Dict[str, Number]:
        conn = await self._acquire()
        try:
            conn.writer.write(b"stats" + CRLF)
            await conn.writer.drain()
            out: Dict[str, Number] = {}
            while True:
                line = await asyncio.wait_for(conn.read_line(),
                                              timeout=self._timeout)
                if line == b"END":
                    break
                if not line.startswith(b"STAT "):
                    raise ProtocolError(f"unexpected reply {line!r}")
                _, name, value_text = line.decode().split(" ", 2)
                out[name] = parse_number(value_text, "stat")
        except BaseException:
            # includes CancelledError — see get_map
            self._release(conn, broken=True)
            raise
        self._release(conn)
        return out

    async def digest(self, prefix: str = "") -> Dict[str, Tuple[Number,
                                                                int]]:
        """Fetch the node's anti-entropy summary: key → (cost, crc32).

        The cluster sweep diffs these across a key's replica holders;
        only keys whose pairs disagree cost a value transfer."""
        command = (f"digest {prefix}" if prefix else "digest").encode()
        conn = await self._acquire()
        try:
            conn.writer.write(command + CRLF)
            await conn.writer.drain()
            out: Dict[str, Tuple[Number, int]] = {}
            while True:
                line = await asyncio.wait_for(conn.read_line(),
                                              timeout=self._timeout)
                if line == b"END":
                    break
                if not line.startswith(b"DIGEST "):
                    raise ProtocolError(f"unexpected reply {line!r}")
                try:
                    _, key, cost_text, crc_text = \
                        line.decode().split(" ", 3)
                    out[key] = (parse_number(cost_text, "cost"),
                                int(crc_text))
                except ValueError:
                    raise ProtocolError(
                        f"malformed DIGEST line: {line!r}") from None
        except BaseException:
            # includes CancelledError — see get_map
            self._release(conn, broken=True)
            raise
        self._release(conn)
        return out

    async def version(self) -> str:
        return (await self._round_trip(b"version" + CRLF)).decode()

    async def save(self) -> bool:
        reply = await self._round_trip(b"save" + CRLF)
        if reply == b"OK":
            return True
        if reply.startswith(b"SERVER_ERROR"):
            return False
        raise ProtocolError(f"unexpected reply {reply!r}")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop idle connections so the next operation re-dials.

        The cluster tier calls this when it marks a node down: sockets
        to the dead process would otherwise linger in the pool and fail
        one by one on reuse after the node is bounced.  Connections
        currently checked out are untouched — their own error paths
        already discard them as broken.
        """
        for conn in self._idle:
            conn.close()
            if conn in self._all:
                self._all.remove(conn)
        self._idle.clear()

    async def close(self) -> None:
        self._closed = True
        for conn in self._all:
            try:
                conn.writer.write(b"quit" + CRLF)
            except (ConnectionError, RuntimeError):
                pass
            conn.close()
        for conn in self._all:
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._all.clear()
        self._idle.clear()

    async def __aenter__(self) -> "AsyncSocketClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
