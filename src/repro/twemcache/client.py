"""Clients for the Twemcache server: socket-based, loopback, in-process.

:class:`SocketClient` plays the role of the Whalin memcached client from
the paper's section 4 (real TCP, real serialization).
:class:`LoopbackClient` keeps the full protocol path — command
rendering, the server's sans-IO byte-stream state machine, response
parsing — but binds it directly to an engine with no sockets: the
deterministic stand-in for the paper's served-system measurements
(Figure 9 replays through it).  :class:`InProcessClient` bypasses even
the protocol for micro-benchmarks that isolate the engine's
replacement-decision overhead.
All three expose the same ``get``/``set``/``delete`` surface so
:class:`~repro.twemcache.iq.IqSession` and the trace replayer work over
any of them.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional, Tuple, Union

from repro.errors import ProtocolError
from repro.twemcache.engine import TwemcacheEngine
from repro.twemcache.protocol import (CRLF, ServerSession, chunk_get_keys,
                                      parse_number, parse_value_header)

__all__ = ["SocketClient", "LoopbackClient", "InProcessClient"]

Number = Union[int, float]


class _Value:
    """Minimal item facade so clients and the engine share a .value shape.

    ``cost`` is only populated by cost-aware reads (the ``gets`` verb);
    plain ``get`` replies leave it 0.
    """

    __slots__ = ("value", "flags", "cost")

    def __init__(self, value: bytes, flags: int, cost: Number = 0) -> None:
        self.value = value
        self.flags = flags
        self.cost = cost


class SocketClient:
    """A blocking text-protocol client for :class:`TwemcacheServer`."""

    def __init__(self, address: Tuple[str, int], timeout: float = 10.0) -> None:
        self._sock = socket.create_connection(address, timeout=timeout)
        self._buffer = b""

    # ------------------------------------------------------------------
    # line/byte plumbing
    # ------------------------------------------------------------------
    def _read_line(self) -> bytes:
        while CRLF not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(CRLF, 1)
        return line

    def _read_exact(self, n: int) -> bytes:
        while len(self._buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError("server closed the connection")
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    def _send(self, payload: bytes) -> None:
        self._sock.sendall(payload)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def get(self, *keys: str) -> Optional[_Value]:
        """Fetch one or more keys with a single multi-key get command.

        Returns the last requested key's value that hit (for the usual
        one-key call, simply that key's value), or None.  Use
        :meth:`get_many` when you want every hit.
        """
        found = self.get_many(keys)
        for key in reversed(keys):
            if key in found:
                return found[key]
        return None

    def get_many(self, keys) -> Dict[str, _Value]:
        """Multi-key fetch; returns a dict of every key that hit
        (misses are simply absent, as in the memcached protocol).

        Key lists of any size are fine: commands are chunked to stay
        under the server's fatal line bound and pipelined — every
        chunk's ``get`` is sent before the first response is read, so
        the whole batch still costs ~one round trip."""
        chunks = chunk_get_keys(list(keys))
        if not chunks:
            return {}
        self._send(b"".join(("get " + " ".join(chunk)).encode() + CRLF
                            for chunk in chunks))
        found: Dict[str, _Value] = {}
        for _ in chunks:
            self._read_values(found)
        return found

    def _read_values(self, found: Dict[str, _Value]) -> None:
        """Consume one get response (VALUE blocks until END)."""
        while True:
            line = self._read_line()
            if line == b"END":
                return
            if line.startswith(b"VALUE "):
                got_key, flags, nbytes, cost = parse_value_header(line)
                data = self._read_exact(nbytes)
                trailer = self._read_exact(2)
                if trailer != CRLF:
                    raise ProtocolError("missing CRLF after data block")
                found[got_key] = _Value(data, flags, cost)
            elif line.startswith(b"CLIENT_ERROR"):
                raise ProtocolError(line.decode())
            else:
                raise ProtocolError(f"unexpected reply {line!r}")

    def set(self, key: str, value: bytes, flags: int = 0,
            expire_after: float = 0, cost: Number = 0) -> bool:
        header = f"set {key} {flags} {expire_after} {len(value)} {cost}"
        self._send(header.encode() + CRLF + value + CRLF)
        reply = self._read_line()
        if reply == b"STORED":
            return True
        if reply == b"NOT_STORED":
            return False
        raise ProtocolError(f"unexpected reply {reply!r}")

    def delete(self, key: str) -> bool:
        self._send(f"delete {key}".encode() + CRLF)
        reply = self._read_line()
        if reply == b"DELETED":
            return True
        if reply == b"NOT_FOUND":
            return False
        raise ProtocolError(f"unexpected reply {reply!r}")

    def stats(self) -> Dict[str, Number]:
        self._send(b"stats" + CRLF)
        out: Dict[str, Number] = {}
        while True:
            line = self._read_line()
            if line == b"END":
                return out
            if not line.startswith(b"STAT "):
                raise ProtocolError(f"unexpected reply {line!r}")
            _, name, value_text = line.decode().split(" ", 2)
            out[name] = parse_number(value_text, "stat")

    def version(self) -> str:
        self._send(b"version" + CRLF)
        return self._read_line().decode()

    def save(self) -> bool:
        """Ask the server to snapshot to its configured path.

        False when the server refuses (no path configured / IO error).
        """
        self._send(b"save" + CRLF)
        reply = self._read_line()
        if reply == b"OK":
            return True
        if reply.startswith(b"SERVER_ERROR"):
            return False
        raise ProtocolError(f"unexpected reply {reply!r}")

    def close(self) -> None:
        try:
            self._send(b"quit" + CRLF)
        except OSError:  # pragma: no cover - already closed
            pass
        self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LoopbackClient:
    """The protocol path without the kernel: every request is rendered
    to wire bytes, framed through the server's
    :class:`~repro.twemcache.protocol.ServerSession` state machine, and
    every response is parsed back — exactly what a served request pays,
    minus the socket hop.

    The paper's Figure 9 measures Twemcache *as served* (its run time
    includes the protocol work of a real deployment, which is why CAMP's
    replacement arithmetic registers as only a few percent there); this
    client reproduces that measurement deterministically.
    """

    def __init__(self, engine: TwemcacheEngine) -> None:
        self._session = ServerSession(engine)

    def get(self, key: str) -> Optional[_Value]:
        data, _ = self._session.receive(
            b"get " + key.encode("utf-8") + CRLF)
        if data.startswith(b"END"):
            return None
        header_end = data.index(CRLF)
        _key, flags, nbytes, cost = parse_value_header(data[:header_end])
        start = header_end + 2
        return _Value(bytes(data[start:start + nbytes]), flags, cost)

    def get_many(self, keys) -> Dict[str, _Value]:
        found: Dict[str, _Value] = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                found[key] = value
        return found

    def set(self, key: str, value: bytes, flags: int = 0,
            expire_after: float = 0, cost: Number = 0) -> bool:
        header = f"set {key} {flags} {expire_after} {len(value)} {cost}"
        data, _ = self._session.receive(
            header.encode("utf-8") + CRLF + value + CRLF)
        return data == b"STORED" + CRLF

    def delete(self, key: str) -> bool:
        data, _ = self._session.receive(
            b"delete " + key.encode("utf-8") + CRLF)
        return data == b"DELETED" + CRLF

    def stats(self) -> Dict[str, Number]:
        data, _ = self._session.receive(b"stats" + CRLF)
        out: Dict[str, Number] = {}
        for line in data.split(CRLF):
            if line.startswith(b"STAT "):
                _stat, name, value = line.decode("utf-8").split(" ", 2)
                out[name] = parse_number(value, name)
        return out


class InProcessClient:
    """Direct engine access with the client interface (no network)."""

    def __init__(self, engine: TwemcacheEngine) -> None:
        self._engine = engine

    def get(self, key: str) -> Optional[_Value]:
        item = self._engine.get(key)
        if item is None:
            return None
        return _Value(item.value, item.flags)

    def get_many(self, keys) -> Dict[str, _Value]:
        found: Dict[str, _Value] = {}
        for key in keys:
            item = self._engine.get(key)
            if item is not None:
                found[key] = _Value(item.value, item.flags)
        return found

    def set(self, key: str, value: bytes, flags: int = 0,
            expire_after: float = 0, cost: Number = 0) -> bool:
        return self._engine.set(key, value, flags=flags,
                                expire_after=expire_after, cost=cost)

    def delete(self, key: str) -> bool:
        return self._engine.delete(key)

    def stats(self) -> Dict[str, Number]:
        return dict(self._engine.stats())
