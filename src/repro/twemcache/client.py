"""Clients for the Twemcache server: socket-based and in-process.

:class:`SocketClient` plays the role of the Whalin memcached client from
the paper's section 4 (real TCP, real serialization).
:class:`InProcessClient` bypasses the network for micro-benchmarks that
isolate the engine's replacement-decision overhead.
Both expose the same ``get``/``set``/``delete`` surface so
:class:`~repro.twemcache.iq.IqSession` and the trace replayer work over
either transport.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional, Tuple, Union

from repro.errors import ProtocolError
from repro.twemcache.engine import TwemcacheEngine
from repro.twemcache.protocol import (CRLF, chunk_get_keys, parse_number,
                                      parse_value_header)

__all__ = ["SocketClient", "InProcessClient"]

Number = Union[int, float]


class _Value:
    """Minimal item facade so clients and the engine share a .value shape."""

    __slots__ = ("value", "flags")

    def __init__(self, value: bytes, flags: int) -> None:
        self.value = value
        self.flags = flags


class SocketClient:
    """A blocking text-protocol client for :class:`TwemcacheServer`."""

    def __init__(self, address: Tuple[str, int], timeout: float = 10.0) -> None:
        self._sock = socket.create_connection(address, timeout=timeout)
        self._buffer = b""

    # ------------------------------------------------------------------
    # line/byte plumbing
    # ------------------------------------------------------------------
    def _read_line(self) -> bytes:
        while CRLF not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(CRLF, 1)
        return line

    def _read_exact(self, n: int) -> bytes:
        while len(self._buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError("server closed the connection")
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    def _send(self, payload: bytes) -> None:
        self._sock.sendall(payload)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def get(self, *keys: str) -> Optional[_Value]:
        """Fetch one or more keys with a single multi-key get command.

        Returns the last requested key's value that hit (for the usual
        one-key call, simply that key's value), or None.  Use
        :meth:`get_many` when you want every hit.
        """
        found = self.get_many(keys)
        for key in reversed(keys):
            if key in found:
                return found[key]
        return None

    def get_many(self, keys) -> Dict[str, _Value]:
        """Multi-key fetch; returns a dict of every key that hit
        (misses are simply absent, as in the memcached protocol).

        Key lists of any size are fine: commands are chunked to stay
        under the server's fatal line bound and pipelined — every
        chunk's ``get`` is sent before the first response is read, so
        the whole batch still costs ~one round trip."""
        chunks = chunk_get_keys(list(keys))
        if not chunks:
            return {}
        self._send(b"".join(("get " + " ".join(chunk)).encode() + CRLF
                            for chunk in chunks))
        found: Dict[str, _Value] = {}
        for _ in chunks:
            self._read_values(found)
        return found

    def _read_values(self, found: Dict[str, _Value]) -> None:
        """Consume one get response (VALUE blocks until END)."""
        while True:
            line = self._read_line()
            if line == b"END":
                return
            if line.startswith(b"VALUE "):
                got_key, flags, nbytes = parse_value_header(line)
                data = self._read_exact(nbytes)
                trailer = self._read_exact(2)
                if trailer != CRLF:
                    raise ProtocolError("missing CRLF after data block")
                found[got_key] = _Value(data, flags)
            elif line.startswith(b"CLIENT_ERROR"):
                raise ProtocolError(line.decode())
            else:
                raise ProtocolError(f"unexpected reply {line!r}")

    def set(self, key: str, value: bytes, flags: int = 0,
            expire_after: float = 0, cost: Number = 0) -> bool:
        header = f"set {key} {flags} {expire_after} {len(value)} {cost}"
        self._send(header.encode() + CRLF + value + CRLF)
        reply = self._read_line()
        if reply == b"STORED":
            return True
        if reply == b"NOT_STORED":
            return False
        raise ProtocolError(f"unexpected reply {reply!r}")

    def delete(self, key: str) -> bool:
        self._send(f"delete {key}".encode() + CRLF)
        reply = self._read_line()
        if reply == b"DELETED":
            return True
        if reply == b"NOT_FOUND":
            return False
        raise ProtocolError(f"unexpected reply {reply!r}")

    def stats(self) -> Dict[str, Number]:
        self._send(b"stats" + CRLF)
        out: Dict[str, Number] = {}
        while True:
            line = self._read_line()
            if line == b"END":
                return out
            if not line.startswith(b"STAT "):
                raise ProtocolError(f"unexpected reply {line!r}")
            _, name, value_text = line.decode().split(" ", 2)
            out[name] = parse_number(value_text, "stat")

    def version(self) -> str:
        self._send(b"version" + CRLF)
        return self._read_line().decode()

    def save(self) -> bool:
        """Ask the server to snapshot to its configured path.

        False when the server refuses (no path configured / IO error).
        """
        self._send(b"save" + CRLF)
        reply = self._read_line()
        if reply == b"OK":
            return True
        if reply.startswith(b"SERVER_ERROR"):
            return False
        raise ProtocolError(f"unexpected reply {reply!r}")

    def close(self) -> None:
        try:
            self._send(b"quit" + CRLF)
        except OSError:  # pragma: no cover - already closed
            pass
        self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessClient:
    """Direct engine access with the client interface (no network)."""

    def __init__(self, engine: TwemcacheEngine) -> None:
        self._engine = engine

    def get(self, key: str) -> Optional[_Value]:
        item = self._engine.get(key)
        if item is None:
            return None
        return _Value(item.value, item.flags)

    def get_many(self, keys) -> Dict[str, _Value]:
        found: Dict[str, _Value] = {}
        for key in keys:
            item = self._engine.get(key)
            if item is not None:
                found[key] = _Value(item.value, item.flags)
        return found

    def set(self, key: str, value: bytes, flags: int = 0,
            expire_after: float = 0, cost: Number = 0) -> bool:
        return self._engine.set(key, value, flags=flags,
                                expire_after=expire_after, cost=cost)

    def delete(self, key: str) -> bool:
        return self._engine.delete(key)

    def stats(self) -> Dict[str, Number]:
        return dict(self._engine.stats())
