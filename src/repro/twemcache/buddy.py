"""Binary buddy allocator — the paper's section 5 alternative to slabs.

"One may address the calcification limitation by separating how memory
should be allocated ... for example, with a memcached implementation, one
may use a buddy algorithm [8] to manage space in combination with CAMP (or
LRU)."

Classic power-of-two buddy system over a fixed arena: requests round up to
the nearest power of two (≥ ``min_block``); larger free blocks split
recursively; on free, buddies coalesce.  Returned handles are byte offsets.
The allocator-ablation benchmark compares its external behaviour against
the slab system.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import AllocationError, ConfigurationError

__all__ = ["BuddyAllocator"]


def _ceil_pow2(value: int) -> int:
    return 1 << (value - 1).bit_length()


class BuddyAllocator:
    """Power-of-two buddy allocation over ``arena_bytes`` of memory."""

    def __init__(self, arena_bytes: int, min_block: int = 64) -> None:
        if min_block < 1 or (min_block & (min_block - 1)):
            raise ConfigurationError(
                f"min_block must be a positive power of two, got {min_block}")
        if arena_bytes < min_block:
            raise ConfigurationError("arena must hold at least one block")
        arena = 1 << (arena_bytes.bit_length() - 1)  # floor to power of two
        self._arena = arena
        self._min_block = min_block
        # free lists: block size -> set of offsets
        self._free: Dict[int, Set[int]] = {arena: {0}}
        # live allocations: offset -> (block size, requested payload bytes)
        self._allocated: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    @property
    def arena_bytes(self) -> int:
        return self._arena

    @property
    def allocated_bytes(self) -> int:
        """Bytes reserved including rounding waste (internal fragmentation)."""
        return sum(block for block, _ in self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return self._arena - self.allocated_bytes

    def block_size_for(self, size: int) -> int:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        return max(self._min_block, _ceil_pow2(size))

    # ------------------------------------------------------------------
    def allocate(self, size: int) -> int:
        """Reserve a block that fits ``size``; returns its offset.

        Raises :class:`~repro.errors.AllocationError` when no block of the
        required size can be carved out (the caller should evict and retry).
        """
        block = self.block_size_for(size)
        if block > self._arena:
            raise AllocationError(f"request {size} exceeds arena {self._arena}")
        # find the smallest free block >= block
        candidate = block
        while candidate <= self._arena and not self._free.get(candidate):
            candidate <<= 1
        if candidate > self._arena or not self._free.get(candidate):
            raise AllocationError(f"no free block for {size} bytes")
        offset = self._free[candidate].pop()
        # split down to the target size
        while candidate > block:
            candidate >>= 1
            buddy = offset + candidate
            self._free.setdefault(candidate, set()).add(buddy)
        self._allocated[offset] = (block, size)
        return offset

    def free(self, offset: int) -> None:
        """Release a block and coalesce with free buddies."""
        entry = self._allocated.pop(offset, None)
        if entry is None:
            raise AllocationError(f"free of unallocated offset {offset}")
        block, _ = entry
        while block < self._arena:
            buddy = offset ^ block
            peers = self._free.get(block)
            if peers is None or buddy not in peers:
                break
            peers.discard(buddy)
            offset = min(offset, buddy)
            block <<= 1
        self._free.setdefault(block, set()).add(offset)

    # ------------------------------------------------------------------
    def fragmentation(self) -> float:
        """Internal fragmentation: wasted / reserved bytes (0 when idle)."""
        reserved = self.allocated_bytes
        if not reserved:
            return 0.0
        useful = sum(requested for _, requested in self._allocated.values())
        return 1.0 - useful / reserved

    def allocations(self) -> Dict[int, tuple]:
        """offset -> (block size, requested bytes) for live allocations."""
        return dict(self._allocated)

    def check_invariants(self) -> None:
        """Free and allocated regions tile the arena without overlap."""
        regions: List[tuple] = []
        for size, offsets in self._free.items():
            for offset in offsets:
                regions.append((offset, size))
        for offset, (size, _) in self._allocated.items():
            regions.append((offset, size))
        regions.sort()
        position = 0
        for offset, size in regions:
            if offset != position:
                raise AllocationError(
                    f"gap or overlap at offset {offset} (expected {position})")
            if offset % size != 0:
                raise AllocationError(f"misaligned block at {offset}")
            position = offset + size
        if position != self._arena:
            raise AllocationError("regions do not cover the arena")
