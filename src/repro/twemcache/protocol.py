"""A memcached-style text protocol (the wire format of section 4's study).

Implemented subset (requests end with CRLF; values are raw bytes):

* ``get <key> [<key>...]``  → ``VALUE <key> <flags> <bytes>\\r\\n<data>\\r\\n``
  per hit, then ``END``
* ``gets <key> [<key>...]`` → like ``get`` but each VALUE line carries a
  fourth token, ``VALUE <key> <flags> <bytes> <cost>``.  Stock memcached
  puts the CAS id there; this reproduction returns the item's IQ
  *cost* instead, so a reader learns what a re-store elsewhere should
  piggyback — the cluster tier's replica reads and read-repair depend
  on it (re-replicating with cost 0 would corrupt CAMP priorities on
  the receiving node).
* ``set|add|replace <key> <flags> <exptime> <bytes> [<cost>]`` + data
  block → ``STORED`` | ``NOT_STORED``.  ``add`` stores only when absent,
  ``replace`` only when present.  The trailing *cost* token is this
  reproduction's IQ extension: the measured (or synthetic) recomputation
  cost piggybacked on the put, exactly as the paper describes ("the
  approach taken to provide recomputation time is ... piggybacked as a
  part of the KVS put").
* ``delete <key>`` → ``DELETED`` | ``NOT_FOUND``
* ``incr|decr <key> <delta>`` → new value | ``NOT_FOUND`` |
  ``CLIENT_ERROR`` for non-numeric values (decr clamps at 0, like
  memcached)
* ``touch <key> <exptime>`` → ``TOUCHED`` | ``NOT_FOUND``
* ``flush_all`` → ``OK``
* ``save`` → ``OK`` | ``SERVER_ERROR ...`` — this reproduction's admin
  verb (Redis's ``SAVE`` analogue): snapshot every live item to the
  engine's configured snapshot path.  The path is server-side
  configuration, never taken from the wire.
* ``digest [<prefix>]`` → ``DIGEST <key> <cost> <crc>`` lines then
  ``END`` — a key→(CAMP cost, crc32-of-value) summary of the live
  items (optionally only keys starting with *prefix*).  This is the
  anti-entropy verb: a cluster sweep fetches digests from every
  replica holder, diffs them pairwise, and re-replicates divergent
  pairs without transferring any values for the keys that agree.
* ``stats`` → ``STAT <name> <value>`` lines then ``END``
* ``version``, ``quit``

Beyond the wire grammar, this module holds the whole *serving contract*
as sans-IO pieces shared by every transport:

* :class:`ProtocolSession` — a byte-stream state machine: feed raw
  received bytes in, drain parsed :class:`Command` events out.  It owns
  the framing rules (data blocks of exactly ``nbytes`` + CRLF trailer,
  bounded command lines), so a short body simply waits for more bytes
  and a broken frame surfaces as a *fatal* event instead of the stream
  being re-interpreted mid-payload.
* :func:`execute_command` — one :class:`Command` against an engine duck
  type, returning the rendered :class:`Reply` bytes.
* :class:`ServerSession` — the two composed: ``receive(data)`` returns
  ``(response_bytes, close)``.  The threaded and asyncio servers are
  both thin transports over this one object, which is what makes their
  responses byte-identical by construction (property-tested in
  ``tests/test_serving_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from repro.errors import ProtocolError, ReproError

__all__ = ["Request", "CRLF", "parse_command_line", "render_value",
           "render_stats", "render_digest", "parse_number",
           "parse_value_header", "chunk_get_keys", "Command", "Reply",
           "ProtocolSession", "ServerSession", "execute_command",
           "MAX_LINE_BYTES"]

CRLF = b"\r\n"

#: longest accepted command line; longer without a CRLF is a framing
#: error (memcached similarly bounds its request lines)
MAX_LINE_BYTES = 8192

Number = Union[int, float]


@dataclass(slots=True)
class Request:
    """A parsed command line (the data block, if any, arrives separately)."""

    command: str
    keys: List[str] = field(default_factory=list)
    flags: int = 0
    exptime: float = 0.0
    nbytes: int = 0
    cost: Number = 0
    delta: int = 0

    @property
    def key(self) -> str:
        return self.keys[0]


#: commands that carry a data block and share set's argument layout
STORAGE_COMMANDS = ("set", "add", "replace")


def parse_number(token: str, what: str) -> Number:
    """Int if possible, else float; raises ProtocolError otherwise."""
    try:
        return int(token)
    except ValueError:
        try:
            return float(token)
        except ValueError:
            raise ProtocolError(f"bad {what}: {token!r}") from None


def parse_command_line(line: bytes) -> Request:
    """Parse one CRLF-stripped command line into a :class:`Request`.

    The two commands that dominate every served workload — single-key
    ``get`` and well-formed ``set`` — take a short-circuit lane; any
    irregularity falls through to the general parser below, whose error
    reporting is the behavioural contract.
    """
    if line.startswith(b"get "):
        # decode-then-split exactly like the general parser, so keys
        # separated by non-space whitespace still parse as multi-gets
        try:
            tokens = line.decode("utf-8").split()
        except UnicodeDecodeError:
            tokens = []
        if len(tokens) == 2:
            return Request(command="get", keys=[tokens[1]])
    elif line.startswith(b"set "):
        try:
            parts_fast = line.decode("utf-8").split()
        except UnicodeDecodeError:
            parts_fast = []
        if len(parts_fast) in (5, 6):
            try:
                flags = int(parts_fast[2])
                exptime = float(parts_fast[3])
                nbytes = int(parts_fast[4])
                cost: Number = 0
                if len(parts_fast) == 6:
                    raw = parts_fast[5]
                    try:
                        cost = int(raw)
                    except ValueError:
                        cost = float(raw)
            except ValueError:
                pass
            else:
                if nbytes >= 0 and cost >= 0:
                    return Request(command="set", keys=[parts_fast[1]],
                                   flags=flags, exptime=exptime,
                                   nbytes=nbytes, cost=cost)
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("command line is not valid UTF-8") from None
    parts = text.split()
    if not parts:
        raise ProtocolError("empty command")
    command = parts[0].lower()
    if command in ("get", "gets"):
        if len(parts) < 2:
            raise ProtocolError("get requires at least one key")
        return Request(command=command, keys=parts[1:])
    if command in STORAGE_COMMANDS:
        if len(parts) not in (5, 6):
            raise ProtocolError(
                f"{command} requires: key flags exptime bytes [cost]")
        key = parts[1]
        flags = int(parse_number(parts[2], "flags"))
        exptime = float(parse_number(parts[3], "exptime"))
        nbytes = int(parse_number(parts[4], "bytes"))
        if nbytes < 0:
            raise ProtocolError("negative byte count")
        cost: Number = 0
        if len(parts) == 6:
            cost = parse_number(parts[5], "cost")
            if cost < 0:
                raise ProtocolError("negative cost")
        return Request(command=command, keys=[key], flags=flags,
                       exptime=exptime, nbytes=nbytes, cost=cost)
    if command == "delete":
        if len(parts) != 2:
            raise ProtocolError("delete requires exactly one key")
        return Request(command="delete", keys=[parts[1]])
    if command in ("incr", "decr"):
        if len(parts) != 3:
            raise ProtocolError(f"{command} requires: key delta")
        delta = parse_number(parts[2], "delta")
        if not isinstance(delta, int) or delta < 0:
            raise ProtocolError("delta must be a non-negative integer")
        return Request(command=command, keys=[parts[1]], delta=delta)
    if command == "touch":
        if len(parts) != 3:
            raise ProtocolError("touch requires: key exptime")
        exptime = float(parse_number(parts[2], "exptime"))
        return Request(command="touch", keys=[parts[1]], exptime=exptime)
    if command == "digest":
        if len(parts) > 2:
            raise ProtocolError("digest takes at most one prefix")
        return Request(command="digest", keys=parts[1:])
    if command in ("stats", "version", "quit", "flush_all", "save"):
        if len(parts) != 1:
            raise ProtocolError(f"{command} takes no arguments")
        return Request(command=command)
    raise ProtocolError(f"unknown command {parts[0]!r}")


def render_value(key: str, flags: int, value: bytes,
                 cost: Optional[Number] = None) -> bytes:
    """One VALUE block of a get response (``gets`` appends the cost)."""
    if cost is None:
        header = f"VALUE {key} {flags} {len(value)}".encode("utf-8")
    else:
        header = f"VALUE {key} {flags} {len(value)} {cost}".encode("utf-8")
    return header + CRLF + value + CRLF


def parse_value_header(line: bytes) -> Tuple[str, int, int, Number]:
    """Parse one ``VALUE <key> <flags> <bytes> [<cost>]`` reply line into
    ``(key, flags, nbytes, cost)`` — the client-side half of the grammar,
    shared by the sync and async clients.  Plain ``get`` replies carry no
    cost token; it reads as 0."""
    parts = line.decode().split()
    if len(parts) not in (4, 5) or parts[0] != "VALUE":
        raise ProtocolError(f"malformed VALUE line: {line!r}")
    try:
        cost: Number = parse_number(parts[4], "cost") if len(parts) == 5 \
            else 0
        return parts[1], int(parts[2]), int(parts[3]), cost
    except (ValueError, ProtocolError):
        raise ProtocolError(f"malformed VALUE line: {line!r}") from None


def chunk_get_keys(keys, max_keys: Optional[int] = None,
                   max_line: int = MAX_LINE_BYTES) -> List[List[str]]:
    """Split ``keys`` into chunks whose ``get k1 k2 ...`` command lines
    stay under the server's ``max_line`` bound (with headroom), each
    chunk also holding at most ``max_keys`` keys.  Clients must use
    this: a single unbounded multi-get line is a *fatal* framing error
    server-side."""
    budget = max_line - 64          # headroom under the fatal bound
    chunks: List[List[str]] = []
    current: List[str] = []
    line_bytes = 3                  # "get"
    for key in keys:
        needed = len(key.encode("utf-8")) + 1
        if current and (line_bytes + needed > budget
                        or (max_keys is not None
                            and len(current) >= max_keys)):
            chunks.append(current)
            current = []
            line_bytes = 3
        current.append(key)
        line_bytes += needed
    if current:
        chunks.append(current)
    return chunks


def render_stats(stats: dict) -> bytes:
    lines = b""
    for name in sorted(stats):
        lines += f"STAT {name} {stats[name]}".encode("utf-8") + CRLF
    return lines + b"END" + CRLF


def render_digest(digest: dict) -> bytes:
    """``DIGEST <key> <cost> <crc>`` lines (sorted) then ``END``."""
    lines = b""
    for key in sorted(digest):
        cost, crc = digest[key]
        lines += f"DIGEST {key} {cost} {crc}".encode("utf-8") + CRLF
    return lines + b"END" + CRLF


# ----------------------------------------------------------------------
# sans-IO serving core
# ----------------------------------------------------------------------

@dataclass(slots=True)
class Command:
    """One parsed protocol event.

    ``request`` is None when the command line failed to parse; ``error``
    then carries the CLIENT_ERROR text.  ``fatal`` marks framing damage
    (bad data-block trailer, unbounded line): the connection must be
    closed after the error reply, because the byte stream can no longer
    be trusted to be command-aligned.
    """

    request: Optional[Request]
    payload: Optional[bytes] = None
    error: Optional[str] = None
    fatal: bool = False


@dataclass(slots=True)
class Reply:
    """Rendered response bytes plus whether the connection must close."""

    data: bytes
    close: bool = False


class ProtocolSession:
    """Server-side byte-stream state machine (sans-IO).

    Transports call :meth:`feed` with whatever ``recv`` returned and
    drain :meth:`commands`; the session handles arbitrary chunk
    boundaries — a command line or data block split across reads simply
    waits for the rest.  After a fatal framing event the session stays
    broken: no further commands are produced.
    """

    __slots__ = ("_buffer", "_awaiting", "_broken", "_max_line")

    def __init__(self, max_line: int = MAX_LINE_BYTES) -> None:
        self._buffer = bytearray()
        self._awaiting: Optional[Request] = None
        self._broken = False
        self._max_line = max_line

    @property
    def broken(self) -> bool:
        """True once a fatal framing error was seen."""
        return self._broken

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed by a complete command."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        if data:
            self._buffer += data

    def commands(self) -> Iterator[Command]:
        """Drain every command completed by the bytes fed so far."""
        while True:
            command = self.next_command()
            if command is None:
                return
            yield command

    def next_command(self) -> Optional[Command]:
        if self._broken:
            return None
        if self._awaiting is not None:
            return self._next_payload()
        while True:
            end = self._buffer.find(CRLF)
            if end < 0:
                if len(self._buffer) > self._max_line:
                    self._broken = True
                    return Command(None, error="command line too long",
                                   fatal=True)
                return None
            line = bytes(self._buffer[:end])
            del self._buffer[:end + 2]
            if len(line) > self._max_line:
                # enforce the bound whether or not the CRLF happened to
                # arrive in the same chunk — the outcome must not depend
                # on where recv boundaries fell
                self._broken = True
                return Command(None, error="command line too long",
                               fatal=True)
            if not line:
                continue          # stray blank line, same as the old loop
            try:
                request = parse_command_line(line)
            except ProtocolError as exc:
                first = line.split(None, 1)[0].lower()
                if first in (b"set", b"add", b"replace"):
                    # a storage header that failed to parse still
                    # promised a data block of unknowable length; the
                    # following bytes cannot be trusted to be command
                    # lines, so reinterpreting them would desync (and
                    # let payload text run as commands) — close instead
                    self._broken = True
                    return Command(None, error=str(exc), fatal=True)
                # other malformed lines are well-framed: report, carry on
                return Command(None, error=str(exc))
            if request.command in STORAGE_COMMANDS:
                self._awaiting = request
                return self._next_payload()
            return Command(request)

    def _next_payload(self) -> Optional[Command]:
        request = self._awaiting
        assert request is not None
        needed = request.nbytes + 2
        if len(self._buffer) < needed:
            return None           # short body: wait for more bytes
        payload = bytes(self._buffer[:request.nbytes])
        trailer = bytes(self._buffer[request.nbytes:needed])
        del self._buffer[:needed]
        self._awaiting = None
        if trailer != CRLF:
            # the client's byte accounting is off; re-parsing payload
            # bytes as commands would desync the stream — close instead
            self._broken = True
            return Command(request, error="bad data chunk", fatal=True)
        return Command(request, payload=payload)


def execute_command(engine, command: Command) -> Reply:
    """Run one :class:`Command` against an engine duck type.

    ``engine`` needs the :class:`~repro.twemcache.engine.TwemcacheEngine`
    surface (``get``/``set``/``add``/``replace``/``delete``/``incr``/
    ``decr``/``touch``/``flush_all``/``stats``/``save``); the tenancy
    router satisfies it too.  Every response byte either server emits
    comes from here.
    """
    if command.error is not None:
        return Reply(f"CLIENT_ERROR {command.error}".encode() + CRLF,
                     close=command.fatal)
    request = command.request
    assert request is not None
    name = request.command
    if name == "quit":
        return Reply(b"", close=True)
    if name == "version":
        return Reply(b"VERSION repro-camp/1.0" + CRLF)
    if name == "stats":
        return Reply(render_stats(engine.stats()))
    if name in ("get", "gets"):
        out = b""
        with_cost = name == "gets"
        for key in request.keys:
            item = engine.get(key)
            if item is not None:
                cost = getattr(item, "cost", 0) if with_cost else None
                out += render_value(key, item.flags, item.value, cost)
        return Reply(out + b"END" + CRLF)
    if name in STORAGE_COMMANDS:
        operation = getattr(engine, name)
        stored = operation(request.key, command.payload,
                           flags=request.flags,
                           expire_after=request.exptime,
                           cost=request.cost)
        return Reply(b"STORED" + CRLF if stored else b"NOT_STORED" + CRLF)
    if name == "delete":
        removed = engine.delete(request.key)
        return Reply(b"DELETED" + CRLF if removed else b"NOT_FOUND" + CRLF)
    if name in ("incr", "decr"):
        try:
            operation = getattr(engine, name)
            updated = operation(request.key, request.delta)
        except ProtocolError as exc:
            return Reply(f"CLIENT_ERROR {exc}".encode() + CRLF)
        if updated is None:
            return Reply(b"NOT_FOUND" + CRLF)
        return Reply(str(updated).encode("ascii") + CRLF)
    if name == "touch":
        touched = engine.touch(request.key, request.exptime)
        return Reply(b"TOUCHED" + CRLF if touched else b"NOT_FOUND" + CRLF)
    if name == "flush_all":
        engine.flush_all()
        return Reply(b"OK" + CRLF)
    if name == "save":
        try:
            engine.save()
        except ReproError as exc:
            return Reply(f"SERVER_ERROR {exc}".encode() + CRLF)
        return Reply(b"OK" + CRLF)
    if name == "digest":
        summarize = getattr(engine, "digest", None)
        if summarize is None:
            return Reply(b"SERVER_ERROR digest unsupported" + CRLF)
        prefix = request.keys[0] if request.keys else ""
        return Reply(render_digest(summarize(prefix)))
    # parse_command_line only produces the commands handled above
    raise ProtocolError(f"unroutable command {name!r}")  # pragma: no cover


class ServerSession:
    """One connection's protocol state bound to an engine.

    ``receive(data)`` is the entire per-connection logic of both
    servers: feed the bytes, execute every completed command, hand back
    the concatenated response bytes and whether to close.  Responses for
    all commands completed by one chunk are batched into a single bytes
    object, which is what makes pipelined clients cheap — one
    ``send``/``drain`` per read, not per command.
    """

    __slots__ = ("_session", "_engine")

    def __init__(self, engine, max_line: int = MAX_LINE_BYTES) -> None:
        self._session = ProtocolSession(max_line=max_line)
        self._engine = engine

    @property
    def engine(self):
        return self._engine

    @property
    def broken(self) -> bool:
        return self._session.broken

    def receive(self, data: bytes) -> Tuple[bytes, bool]:
        """Feed one received chunk; return ``(response_bytes, close)``."""
        self._session.feed(data)
        out = bytearray()
        close = False
        for command in self._session.commands():
            reply = execute_command(self._engine, command)
            out += reply.data
            if reply.close:
                close = True
                break
        return bytes(out), close
