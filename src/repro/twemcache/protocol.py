"""A memcached-style text protocol (the wire format of section 4's study).

Implemented subset (requests end with CRLF; values are raw bytes):

* ``get <key> [<key>...]``  → ``VALUE <key> <flags> <bytes>\\r\\n<data>\\r\\n``
  per hit, then ``END``
* ``set|add|replace <key> <flags> <exptime> <bytes> [<cost>]`` + data
  block → ``STORED`` | ``NOT_STORED``.  ``add`` stores only when absent,
  ``replace`` only when present.  The trailing *cost* token is this
  reproduction's IQ extension: the measured (or synthetic) recomputation
  cost piggybacked on the put, exactly as the paper describes ("the
  approach taken to provide recomputation time is ... piggybacked as a
  part of the KVS put").
* ``delete <key>`` → ``DELETED`` | ``NOT_FOUND``
* ``incr|decr <key> <delta>`` → new value | ``NOT_FOUND`` |
  ``CLIENT_ERROR`` for non-numeric values (decr clamps at 0, like
  memcached)
* ``touch <key> <exptime>`` → ``TOUCHED`` | ``NOT_FOUND``
* ``flush_all`` → ``OK``
* ``save`` → ``OK`` | ``SERVER_ERROR ...`` — this reproduction's admin
  verb (Redis's ``SAVE`` analogue): snapshot every live item to the
  engine's configured snapshot path.  The path is server-side
  configuration, never taken from the wire.
* ``stats`` → ``STAT <name> <value>`` lines then ``END``
* ``version``, ``quit``

Parsing is shared by the threaded server and the socket client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.errors import ProtocolError

__all__ = ["Request", "CRLF", "parse_command_line", "render_value",
           "render_stats", "parse_number"]

CRLF = b"\r\n"

Number = Union[int, float]


@dataclass(slots=True)
class Request:
    """A parsed command line (the data block, if any, arrives separately)."""

    command: str
    keys: List[str] = field(default_factory=list)
    flags: int = 0
    exptime: float = 0.0
    nbytes: int = 0
    cost: Number = 0
    delta: int = 0

    @property
    def key(self) -> str:
        return self.keys[0]


#: commands that carry a data block and share set's argument layout
STORAGE_COMMANDS = ("set", "add", "replace")


def parse_number(token: str, what: str) -> Number:
    """Int if possible, else float; raises ProtocolError otherwise."""
    try:
        return int(token)
    except ValueError:
        try:
            return float(token)
        except ValueError:
            raise ProtocolError(f"bad {what}: {token!r}") from None


def parse_command_line(line: bytes) -> Request:
    """Parse one CRLF-stripped command line into a :class:`Request`."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("command line is not valid UTF-8") from None
    parts = text.split()
    if not parts:
        raise ProtocolError("empty command")
    command = parts[0].lower()
    if command in ("get", "gets"):
        if len(parts) < 2:
            raise ProtocolError("get requires at least one key")
        return Request(command="get", keys=parts[1:])
    if command in STORAGE_COMMANDS:
        if len(parts) not in (5, 6):
            raise ProtocolError(
                f"{command} requires: key flags exptime bytes [cost]")
        key = parts[1]
        flags = int(parse_number(parts[2], "flags"))
        exptime = float(parse_number(parts[3], "exptime"))
        nbytes = int(parse_number(parts[4], "bytes"))
        if nbytes < 0:
            raise ProtocolError("negative byte count")
        cost: Number = 0
        if len(parts) == 6:
            cost = parse_number(parts[5], "cost")
            if cost < 0:
                raise ProtocolError("negative cost")
        return Request(command=command, keys=[key], flags=flags,
                       exptime=exptime, nbytes=nbytes, cost=cost)
    if command == "delete":
        if len(parts) != 2:
            raise ProtocolError("delete requires exactly one key")
        return Request(command="delete", keys=[parts[1]])
    if command in ("incr", "decr"):
        if len(parts) != 3:
            raise ProtocolError(f"{command} requires: key delta")
        delta = parse_number(parts[2], "delta")
        if not isinstance(delta, int) or delta < 0:
            raise ProtocolError("delta must be a non-negative integer")
        return Request(command=command, keys=[parts[1]], delta=delta)
    if command == "touch":
        if len(parts) != 3:
            raise ProtocolError("touch requires: key exptime")
        exptime = float(parse_number(parts[2], "exptime"))
        return Request(command="touch", keys=[parts[1]], exptime=exptime)
    if command in ("stats", "version", "quit", "flush_all", "save"):
        if len(parts) != 1:
            raise ProtocolError(f"{command} takes no arguments")
        return Request(command=command)
    raise ProtocolError(f"unknown command {parts[0]!r}")


def render_value(key: str, flags: int, value: bytes) -> bytes:
    """One VALUE block of a get response."""
    header = f"VALUE {key} {flags} {len(value)}".encode("utf-8")
    return header + CRLF + value + CRLF


def render_stats(stats: dict) -> bytes:
    lines = b""
    for name in sorted(stats):
        lines += f"STAT {name} {stats[name]}".encode("utf-8") + CRLF
    return lines + b"END" + CRLF
