"""The section 4 implementation study: a Twemcache-like slab server.

Components: the slab allocator (with calcification + random slab
eviction), a buddy allocator alternative, the storage engine with per-class
LRU or CAMP, the IQ cost-measurement framework, a memcached-style text
protocol with a threaded TCP server and clients, and the trace replayer
behind Figures 9a-9c.
"""

from __future__ import annotations

from repro.twemcache.async_client import AsyncSocketClient
from repro.twemcache.async_server import AsyncTwemcacheServer
from repro.twemcache.buddy import BuddyAllocator
from repro.twemcache.client import (InProcessClient, LoopbackClient,
                                    SocketClient)
from repro.twemcache.driver import ReplayResult, replay_trace
from repro.twemcache.engine import (
    ITEM_HEADER_SIZE,
    StoredItem,
    TwemcacheEngine,
)
from repro.twemcache.iq import IqSession, VirtualClock
from repro.twemcache.protocol import (
    Command,
    ProtocolSession,
    Reply,
    Request,
    ServerSession,
    execute_command,
    parse_command_line,
)
from repro.twemcache.server import TwemcacheServer
from repro.twemcache.slab import (
    DEFAULT_GROWTH_FACTOR,
    DEFAULT_MIN_CHUNK,
    DEFAULT_SLAB_SIZE,
    ChunkRef,
    Slab,
    SlabAllocator,
    SlabClassInfo,
)

__all__ = [
    "SlabAllocator",
    "Slab",
    "SlabClassInfo",
    "ChunkRef",
    "DEFAULT_SLAB_SIZE",
    "DEFAULT_MIN_CHUNK",
    "DEFAULT_GROWTH_FACTOR",
    "BuddyAllocator",
    "TwemcacheEngine",
    "StoredItem",
    "ITEM_HEADER_SIZE",
    "IqSession",
    "VirtualClock",
    "Request",
    "Command",
    "Reply",
    "ProtocolSession",
    "ServerSession",
    "execute_command",
    "parse_command_line",
    "TwemcacheServer",
    "AsyncTwemcacheServer",
    "SocketClient",
    "AsyncSocketClient",
    "InProcessClient",
    "LoopbackClient",
    "ReplayResult",
    "replay_trace",
]
