"""Trace replay against the Twemcache implementation (Figures 9a-9c).

The replayer is the paper's "request generator ... reading a trace file
and issuing requests to the KVS": every record does an ``iqget``; a miss
is followed by an ``iqset`` of a value of the recorded size, with the
trace's cost piggybacked on the set.  It reports the same three outputs
the paper plots: cost-miss ratio (9a), wall-clock run time (9b) and miss
rate (9c) — all with cold requests excluded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.cache.metrics import SimulationMetrics
from repro.twemcache.iq import IqSession
from repro.workloads.trace import TraceRecord

__all__ = ["ReplayResult", "replay_trace"]

Number = Union[int, float]


@dataclass
class ReplayResult:
    """Outcome of one trace replay through a client."""

    metrics: SimulationMetrics
    run_seconds: float
    sets: int
    failed_sets: int
    #: wall time inside client.get calls (every request pays one)
    get_seconds: float = 0.0
    #: wall time inside client.set calls (one per miss)
    set_seconds: float = 0.0

    @property
    def miss_rate(self) -> float:
        return self.metrics.miss_rate

    @property
    def cost_miss_ratio(self) -> float:
        return self.metrics.cost_miss_ratio

    @property
    def gets(self) -> int:
        return self.metrics.requests

    @property
    def get_us(self) -> float:
        """Mean served-get time in microseconds."""
        return self.get_seconds / self.gets * 1e6 if self.gets else 0.0

    @property
    def set_us(self) -> float:
        """Mean served-set time in microseconds."""
        total = self.sets + self.failed_sets
        return self.set_seconds / total * 1e6 if total else 0.0


#: deterministic payloads by size, shared across replays — the request
#: generator's value construction is not the system under test, and a
#: cost-aware policy misses (and therefore sets) more often than LRU, so
#: per-miss byte building would bias the run-time comparison
_PAYLOAD_CACHE: dict = {}


#: distinct sizes retained before the payload cache resets — figure
#: traces use a handful of value shapes, but a continuous-size workload
#: must not pin one payload per distinct size for the process lifetime
_PAYLOAD_CACHE_LIMIT = 1024


def _value_of_size(size: int) -> bytes:
    """A deterministic payload of exactly ``size`` bytes."""
    if size <= 0:
        return b""
    cached = _PAYLOAD_CACHE.get(size)
    if cached is None:
        if len(_PAYLOAD_CACHE) >= _PAYLOAD_CACHE_LIMIT:
            _PAYLOAD_CACHE.clear()
        pattern = b"0123456789abcdef"
        repeats = (size // len(pattern)) + 1
        cached = _PAYLOAD_CACHE[size] = (pattern * repeats)[:size]
    return cached


def replay_trace(client,
                 trace: Iterable[TraceRecord],
                 use_trace_cost: bool = True,
                 header_overhead: int = 0) -> ReplayResult:
    """Drive one trace through a client's iqget/iqset path.

    ``use_trace_cost=True`` piggybacks the trace's synthetic cost on each
    set (the paper's primary configuration); ``False`` lets the IQ session
    measure wall-clock miss-to-set latency instead.  ``header_overhead``
    shrinks generated values so that key+value+metadata hits the recorded
    size exactly when desired.
    """
    session = IqSession(client)
    metrics = SimulationMetrics()
    sets = 0
    failed = 0
    get_seconds = 0.0
    set_seconds = 0.0
    clock = time.perf_counter
    started = clock()
    for record in trace:
        before = clock()
        value = session.iqget(record.key)
        get_seconds += clock() - before
        hit = value is not None
        metrics.record(record.key, record.size, record.cost, hit)
        if not hit:
            payload_size = max(1, record.size - len(record.key) -
                               header_overhead)
            payload = _value_of_size(payload_size)
            override: Optional[Number] = record.cost if use_trace_cost else None
            before = clock()
            stored = session.iqset(record.key, payload,
                                   cost_override=override)
            set_seconds += clock() - before
            if stored:
                sets += 1
            else:
                failed += 1
    elapsed = clock() - started
    return ReplayResult(metrics=metrics, run_seconds=elapsed, sets=sets,
                        failed_sets=failed, get_seconds=get_seconds,
                        set_seconds=set_seconds)
