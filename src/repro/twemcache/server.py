"""A threaded TCP server speaking the memcached-style protocol.

Stands in for Twemcache v2.5.3 in the section 4 implementation study: the
engine (slab allocator + LRU or CAMP) sits behind real sockets, multiple
client threads race through the engine's lock, and the trace replayer's
measured run time includes network transmission and value copying — the
three components the paper's Figure 9b breaks out.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional, Tuple

from repro.errors import ProtocolError, ReproError
from repro.twemcache.engine import TwemcacheEngine
from repro.twemcache.protocol import (
    CRLF,
    parse_command_line,
    render_stats,
    render_value,
)

__all__ = ["TwemcacheServer"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read command lines, execute, write responses."""

    def handle(self) -> None:
        engine: TwemcacheEngine = self.server.engine  # type: ignore[attr-defined]
        while True:
            line = self.rfile.readline()
            if not line:
                return
            line = line.rstrip(b"\r\n")
            if not line:
                continue
            try:
                request = parse_command_line(line)
            except ProtocolError as exc:
                self.wfile.write(f"CLIENT_ERROR {exc}".encode() + CRLF)
                continue
            if request.command == "quit":
                return
            if request.command == "version":
                self.wfile.write(b"VERSION repro-camp/1.0" + CRLF)
            elif request.command == "stats":
                self.wfile.write(render_stats(engine.stats()))
            elif request.command == "get":
                out = b""
                for key in request.keys:
                    item = engine.get(key)
                    if item is not None:
                        out += render_value(key, item.flags, item.value)
                self.wfile.write(out + b"END" + CRLF)
            elif request.command in ("set", "add", "replace"):
                data = self.rfile.read(request.nbytes)
                trailer = self.rfile.read(2)
                if trailer != CRLF:
                    self.wfile.write(b"CLIENT_ERROR bad data chunk" + CRLF)
                    continue
                operation = getattr(engine, request.command)
                stored = operation(request.key, data, flags=request.flags,
                                   expire_after=request.exptime,
                                   cost=request.cost)
                self.wfile.write(b"STORED" + CRLF if stored
                                 else b"NOT_STORED" + CRLF)
            elif request.command == "delete":
                removed = engine.delete(request.key)
                self.wfile.write(b"DELETED" + CRLF if removed
                                 else b"NOT_FOUND" + CRLF)
            elif request.command in ("incr", "decr"):
                try:
                    operation = getattr(engine, request.command)
                    updated = operation(request.key, request.delta)
                except ProtocolError as exc:
                    self.wfile.write(f"CLIENT_ERROR {exc}".encode() + CRLF)
                    continue
                if updated is None:
                    self.wfile.write(b"NOT_FOUND" + CRLF)
                else:
                    self.wfile.write(str(updated).encode("ascii") + CRLF)
            elif request.command == "touch":
                touched = engine.touch(request.key, request.exptime)
                self.wfile.write(b"TOUCHED" + CRLF if touched
                                 else b"NOT_FOUND" + CRLF)
            elif request.command == "flush_all":
                engine.flush_all()
                self.wfile.write(b"OK" + CRLF)
            elif request.command == "save":
                try:
                    engine.save()
                except ReproError as exc:
                    self.wfile.write(f"SERVER_ERROR {exc}".encode() + CRLF)
                else:
                    self.wfile.write(b"OK" + CRLF)


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TwemcacheServer:
    """Lifecycle wrapper: serve an engine on 127.0.0.1 in the background."""

    def __init__(self, engine: TwemcacheEngine,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._engine = engine
        self._server = _ThreadedTCPServer((host, port), _Handler)
        self._server.engine = engine  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def engine(self) -> TwemcacheEngine:
        return self._engine

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "TwemcacheServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="twemcache-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TwemcacheServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
