"""A threaded TCP server speaking the memcached-style protocol.

Stands in for Twemcache v2.5.3 in the section 4 implementation study: the
engine (slab allocator + LRU or CAMP) sits behind real sockets, multiple
client threads race through the engine's lock, and the trace replayer's
measured run time includes network transmission and value copying — the
three components the paper's Figure 9b breaks out.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional, Tuple

from repro.twemcache.engine import TwemcacheEngine
from repro.twemcache.protocol import ServerSession

__all__ = ["TwemcacheServer", "RECV_BYTES"]

#: per-read chunk size shared by both server transports
RECV_BYTES = 65536


class _Handler(socketserver.BaseRequestHandler):
    """One connection: a blocking-socket transport over ServerSession.

    All protocol logic (framing, parsing, execution, response
    rendering) lives in the sans-IO session; this loop only moves
    bytes.  A short data block is no longer re-interpreted as commands:
    the session waits for the rest, and on a framing error (bad
    trailer, oversized line) it replies CLIENT_ERROR and the connection
    closes instead of serving a desynced stream.
    """

    def handle(self) -> None:
        session = ServerSession(self.server.engine)  # type: ignore[attr-defined]
        while True:
            try:
                data = self.request.recv(RECV_BYTES)
            except OSError:
                return
            if not data:
                return
            out, close = session.receive(data)
            if out:
                try:
                    self.request.sendall(out)
                except OSError:
                    return
            if close:
                return


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # socketserver's default backlog of 5 makes a 64-connection client
    # storm stall in SYN retries; match asyncio.start_server's default
    request_queue_size = 100


class TwemcacheServer:
    """Lifecycle wrapper: serve an engine on 127.0.0.1 in the background."""

    def __init__(self, engine: TwemcacheEngine,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._engine = engine
        self._server = _ThreadedTCPServer((host, port), _Handler)
        self._server.engine = engine  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def engine(self) -> TwemcacheEngine:
        return self._engine

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "TwemcacheServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="twemcache-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TwemcacheServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
