"""``AsyncTwemcacheServer`` — the asyncio transport over the sans-IO core.

One event loop serves every connection through a callback
:class:`asyncio.Protocol` (no per-read task or stream machinery): each
``data_received`` chunk is fed to the connection's
:class:`~repro.twemcache.protocol.ServerSession` and *all* commands it
completed are answered with a single batched ``transport.write``.  A
pipelined client therefore costs one wakeup and one write per chunk of
commands instead of one thread wakeup per request — the architectural
win over the thread-per-connection server, which pays GIL hand-offs and
kernel scheduling for every concurrently-active socket
(``benchmarks/test_async_serving.py`` measures the gap at 64 pipelined
connections).

Lifecycle is dual-mode:

* sync — ``start()`` spins up a daemon thread running a private event
  loop, so the asyncio server drops into any existing threaded test or
  CLI exactly like :class:`~repro.twemcache.server.TwemcacheServer`
  (same ``start``/``stop``/``address`` surface, context manager too).
* async — ``await serve()`` / ``await aclose()`` from a running loop.

``stop()``/``aclose()`` drain gracefully: the listener closes first, and
because command execution is synchronous inside ``data_received``, every
command already received has been answered by the time the drain closes
the transports — which flush buffered responses before closing.  Only
half-received frames are dropped, exactly as a connection loss would.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.faults.transport import FaultyTransport
from repro.twemcache.protocol import ServerSession

__all__ = ["AsyncTwemcacheServer"]


class _Connection(asyncio.Protocol):
    """One client socket: bytes → ServerSession → batched response."""

    __slots__ = ("_server", "_session", "_transport", "_raw_transport")

    def __init__(self, server: "AsyncTwemcacheServer") -> None:
        self._server = server
        self._session: Optional[ServerSession] = None
        self._transport: Optional[asyncio.Transport] = None
        self._raw_transport: Optional[asyncio.Transport] = None

    def connection_made(self, transport) -> None:
        self._raw_transport = transport
        plan = self._server._fault_plan
        if plan is not None:
            # responses route through the write-seam faults (latency,
            # drop, reset); the raw transport still registers below so
            # drain/close bookkeeping is untouched
            self._transport = FaultyTransport(
                transport, plan, self._server._fault_target)
        else:
            self._transport = transport
        self._session = ServerSession(self._server.engine)
        self._server._transports.add(transport)
        self._server.connections_served += 1

    def data_received(self, data: bytes) -> None:
        assert self._session is not None and self._transport is not None
        out, close = self._session.receive(data)
        if out:
            self._transport.write(out)
        if close:
            self._transport.close()

    def connection_lost(self, exc) -> None:
        if self._raw_transport is not None:
            self._server._transports.discard(self._raw_transport)


class AsyncTwemcacheServer:
    """Pipelined asyncio server over any engine duck type."""

    def __init__(self, engine, host: str = "127.0.0.1",
                 port: int = 0, fault_plan=None,
                 fault_target: str = "server") -> None:
        """``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`)
        wraps every accepted connection's transport so response writes
        can be delayed, dropped, or turned into resets — tests and
        chaos drills only; None (the default) serves unwrapped."""
        self._engine = engine
        self._host = host
        self._port = port
        self._fault_plan = fault_plan
        self._fault_target = fault_target
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._finished: Optional[asyncio.Event] = None
        self._transports: Set[asyncio.Transport] = set()
        self._address: Optional[Tuple[str, int]] = None
        self.connections_served = 0

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def engine(self):
        return self._engine

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise ConfigurationError("server is not running")
        return self._address

    @property
    def active_connections(self) -> int:
        return len(self._transports)

    # ------------------------------------------------------------------
    # async lifecycle
    # ------------------------------------------------------------------
    async def serve(self) -> "AsyncTwemcacheServer":
        """Bind and start accepting on the current event loop."""
        if self._server is not None:
            raise ConfigurationError("server already running")
        self._loop = asyncio.get_running_loop()
        self._server = await self._loop.create_server(
            lambda: _Connection(self), self._host, self._port)
        self._address = self._server.sockets[0].getsockname()[:2]
        return self

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight connections, release the port."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        # every received chunk was answered synchronously in its
        # data_received; closing flushes each transport's write buffer
        for transport in list(self._transports):
            transport.close()
        deadline = 500                       # ~5s of 10ms waits
        while self._transports and deadline:
            await asyncio.sleep(0.01)
            deadline -= 1
        self._server = None
        self._address = None

    async def __aenter__(self) -> "AsyncTwemcacheServer":
        return await self.serve()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # sync lifecycle (background event-loop thread)
    # ------------------------------------------------------------------
    def start(self) -> "AsyncTwemcacheServer":
        """Serve on a private event loop in a daemon thread."""
        if self._thread is not None:
            raise ConfigurationError("server already running")
        started = threading.Event()
        failure: list = []

        async def _main() -> None:
            try:
                await self.serve()
            except Exception as exc:       # bind failure: surface in start()
                failure.append(exc)
                started.set()
                return
            finished = asyncio.Event()
            self._finished = finished
            started.set()
            await finished.wait()
            await self.aclose()

        def _run() -> None:
            asyncio.run(_main())

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="async-twemcache-server")
        self._thread.start()
        started.wait(timeout=10)
        if failure:
            self._thread.join(timeout=5)
            self._thread = None
            raise failure[0]
        return self

    def stop(self) -> None:
        """Drain and stop the background loop; join its thread."""
        if self._thread is None:
            return
        loop, finished = self._loop, self._finished
        if loop is not None and finished is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(finished.set)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop = None
        self._finished = None

    def __enter__(self) -> "AsyncTwemcacheServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
