"""Metrics of the paper's evaluation (section 3).

*Miss rate* — misses / requests; *cost-miss ratio* — Σ cost of missed
requests / Σ cost of all requests.  For both, "the first request to a
particular key-value pair in the trace (called a cold request) is not
counted because any algorithm will fault on such requests."

:class:`OccupancyTracker` reproduces the y-axis of Figures 6c/6d — the
fraction of KVS memory occupied by the key-value pairs of a given trace
file — by subscribing to the store's insert/evict events and bucketing
bytes by key namespace (``"tf1:..."`` → ``"tf1"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set, Tuple, Union

from repro.core.policy import CacheItem
from repro.errors import ConfigurationError

__all__ = ["SimulationMetrics", "OccupancyTracker", "WindowedMetrics",
           "PerNamespaceMetrics", "default_namespace"]

Number = Union[int, float]


@dataclass
class SimulationMetrics:
    """Request-stream counters with cold-request exclusion."""

    requests: int = 0
    cold_requests: int = 0
    hits: int = 0
    misses: int = 0
    l2_hits: int = 0
    cost_total: float = 0.0
    cost_missed: float = 0.0
    cost_l2_served: float = 0.0
    bytes_total: int = 0
    bytes_missed: int = 0
    _seen: Set[str] = field(default_factory=set, repr=False)

    def record(self, key: str, size: int, cost: Number, hit: bool) -> None:
        """Account one request.  Cold requests bump only ``cold_requests``."""
        self.requests += 1
        if key not in self._seen:
            self._seen.add(key)
            self.cold_requests += 1
            return
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.cost_missed += cost
            self.bytes_missed += size
        self.cost_total += cost
        self.bytes_total += size

    def record_l2(self, key: str, size: int, cost: Number,
                  charged: Number) -> None:
        """Account one disk-tier-served request (HIT_L2 / MISS_PROMOTED).

        ``cost`` is the item's full recompute cost (feeds ``cost_total``
        like any other request); ``charged`` is the discounted spend the
        disk read actually incurred (``l2_hit_cost_factor * cost``),
        accumulated in ``cost_l2_served`` so :attr:`total_miss_cost`
        prices the hierarchy's real recomputation + disk bill.  Cold
        requests are excluded as usual (a first-ever request cannot be
        L2-served in practice, but the rule stays uniform).
        """
        self.requests += 1
        if key not in self._seen:
            self._seen.add(key)
            self.cold_requests += 1
            return
        self.l2_hits += 1
        self.cost_l2_served += charged
        self.cost_total += cost
        self.bytes_total += size

    @property
    def counted_requests(self) -> int:
        """Requests that participate in the ratios (non-cold)."""
        return self.hits + self.misses + self.l2_hits

    @property
    def total_miss_cost(self) -> float:
        """What serving the non-hits actually cost: full recompute for
        true misses plus the discounted charge for disk-tier serves."""
        return self.cost_missed + self.cost_l2_served

    @property
    def miss_rate(self) -> float:
        """Misses / counted requests (0.0 when nothing counted)."""
        counted = self.counted_requests
        return self.misses / counted if counted else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.counted_requests else 0.0

    @property
    def cost_miss_ratio(self) -> float:
        """Σ cost actually spent (recompute + discounted disk serves) /
        Σ cost of all counted requests.  Identical to the paper's ratio
        when no disk tier is in play (``cost_l2_served`` stays 0)."""
        if not self.cost_total:
            return 0.0
        return (self.cost_missed + self.cost_l2_served) / self.cost_total

    @property
    def byte_miss_ratio(self) -> float:
        """Σ bytes missed / Σ bytes of counted requests (bonus metric)."""
        return self.bytes_missed / self.bytes_total if self.bytes_total else 0.0

    @property
    def cost_miss_rate(self) -> float:
        """Σ cost of missed requests / counted requests.

        A *rate* rather than a ratio: the average recomputation spend per
        (non-cold) request, so namespaces with very different request
        volumes and cost scales can be compared on absolute spend per
        request — the quantity the tenancy arbiter trades off.
        """
        counted = self.counted_requests
        return self.cost_missed / counted if counted else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "cold_requests": self.cold_requests,
            "hits": self.hits,
            "misses": self.misses,
            "l2_hits": self.l2_hits,
            "miss_rate": self.miss_rate,
            "cost_miss_ratio": self.cost_miss_ratio,
            "byte_miss_ratio": self.byte_miss_ratio,
            "cost_miss_rate": self.cost_miss_rate,
            "total_miss_cost": self.total_miss_cost,
        }


def default_namespace(key: str) -> str:
    """Namespace = text before the first ``:`` (e.g. ``tf1:k42`` → ``tf1``)."""
    head, sep, _ = key.partition(":")
    return head if sep else ""


class OccupancyTracker:
    """Bytes resident per key namespace, sampled over time (Figures 6c/6d)."""

    def __init__(self,
                 capacity: int,
                 namespace_of: Callable[[str], str] = default_namespace
                 ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._namespace_of = namespace_of
        self._bytes: Dict[str, int] = {}
        #: list of (request index, {namespace: fraction}) samples
        self.samples: List[Tuple[int, Dict[str, float]]] = []

    # CacheListener interface -------------------------------------------------
    def on_insert(self, item: CacheItem) -> None:
        namespace = self._namespace_of(item.key)
        self._bytes[namespace] = self._bytes.get(namespace, 0) + item.size

    def on_evict(self, item: CacheItem, explicit: bool) -> None:
        namespace = self._namespace_of(item.key)
        remaining = self._bytes.get(namespace, 0) - item.size
        if remaining <= 0:
            self._bytes.pop(namespace, None)
        else:
            self._bytes[namespace] = remaining

    # sampling ----------------------------------------------------------------
    def fraction(self, namespace: str) -> float:
        """Fraction of the KVS capacity held by ``namespace`` right now."""
        return self._bytes.get(namespace, 0) / self._capacity

    def bytes_of(self, namespace: str) -> int:
        return self._bytes.get(namespace, 0)

    def namespaces(self) -> Dict[str, int]:
        return dict(self._bytes)

    def sample(self, request_index: int) -> None:
        """Record a time-series point for all live namespaces."""
        fractions = {ns: b / self._capacity for ns, b in self._bytes.items()}
        self.samples.append((request_index, fractions))

    def series(self, namespace: str) -> List[Tuple[int, float]]:
        """The sampled (request index, fraction) series for one namespace."""
        return [(index, fractions.get(namespace, 0.0))
                for index, fractions in self.samples]


class WindowedMetrics:
    """Time series of miss rate / cost-miss ratio over request windows.

    Complements :class:`SimulationMetrics` (whole-run aggregates) for
    studying transients — e.g. the recovery spike after each phase switch
    of the section 3.1 experiment.  Cold requests are excluded per window
    with the same first-ever-request rule as the aggregate metrics.
    """

    def __init__(self, window: int = 10_000) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._window = window
        self._seen: Set[str] = set()
        self._count = 0
        self._misses = 0
        self._cost_total = 0.0
        self._cost_missed = 0.0
        #: list of (end request index, miss rate, cost-miss ratio)
        self.windows: List[Tuple[int, float, float]] = []
        #: counted (non-cold) requests per flushed window
        self.window_counts: List[int] = []
        self._requests = 0

    def record(self, key: str, cost: Number, hit: bool) -> None:
        self._requests += 1
        if key not in self._seen:
            self._seen.add(key)
        else:
            self._count += 1
            self._cost_total += cost
            if not hit:
                self._misses += 1
                self._cost_missed += cost
        if self._requests % self._window == 0:
            self._flush()

    def _flush(self) -> None:
        miss_rate = self._misses / self._count if self._count else 0.0
        cost_ratio = (self._cost_missed / self._cost_total
                      if self._cost_total else 0.0)
        self.windows.append((self._requests, miss_rate, cost_ratio))
        self.window_counts.append(self._count)
        self._count = self._misses = 0
        self._cost_total = self._cost_missed = 0.0

    def finish(self) -> None:
        """Flush a trailing partial window, if any."""
        if self._requests % self._window:
            self._flush()

    def miss_rate_series(self) -> List[Tuple[int, float]]:
        return [(index, miss) for index, miss, _ in self.windows]

    def cost_miss_series(self) -> List[Tuple[int, float]]:
        return [(index, cost) for index, _, cost in self.windows]


class PerNamespaceMetrics:
    """Aggregate metrics broken down by key namespace.

    The paper's introduction motivates CAMP with two applications sharing
    one cache (member profiles vs ML-computed ads); this recorder shows
    what each application experiences: its own miss rate, cost-miss ratio
    and recomputation spend.  Namespaces come from the same key-prefix
    convention the occupancy tracker uses (``"ads:model7"`` → ``"ads"``).
    """

    def __init__(self,
                 namespace_of: Callable[[str], str] = default_namespace
                 ) -> None:
        self._namespace_of = namespace_of
        self._per_namespace: Dict[str, SimulationMetrics] = {}
        self._resident_bytes: Dict[str, int] = {}

    def record(self, key: str, size: int, cost: Number, hit: bool) -> None:
        self._metrics_for(key).record(key, size, cost, hit)

    def record_l2(self, key: str, size: int, cost: Number,
                  charged: Number) -> None:
        """Per-namespace face of ``SimulationMetrics.record_l2`` — each
        application sees its own disk-tier serves and discounted spend."""
        self._metrics_for(key).record_l2(key, size, cost, charged)

    def _metrics_for(self, key: str) -> SimulationMetrics:
        namespace = self._namespace_of(key)
        metrics = self._per_namespace.get(namespace)
        if metrics is None:
            metrics = SimulationMetrics()
            self._per_namespace[namespace] = metrics
        return metrics

    # CacheListener interface -------------------------------------------------
    # Subscribe the recorder to a KVS (``kvs.add_listener(metrics)``) and it
    # also tracks bytes resident per namespace, surfaced by
    # :meth:`resident_bytes` and the extended summary rows.
    def on_insert(self, item: CacheItem) -> None:
        namespace = self._namespace_of(item.key)
        self._resident_bytes[namespace] = \
            self._resident_bytes.get(namespace, 0) + item.size

    def on_evict(self, item: CacheItem, explicit: bool) -> None:
        namespace = self._namespace_of(item.key)
        remaining = self._resident_bytes.get(namespace, 0) - item.size
        if remaining <= 0:
            self._resident_bytes.pop(namespace, None)
        else:
            self._resident_bytes[namespace] = remaining

    def resident_bytes(self, namespace: str) -> int:
        """Bytes currently resident for ``namespace`` (0 when untracked)."""
        return self._resident_bytes.get(namespace, 0)

    def namespaces(self) -> List[str]:
        return sorted(self._per_namespace)

    def metrics(self, namespace: str) -> SimulationMetrics:
        try:
            return self._per_namespace[namespace]
        except KeyError:
            raise ConfigurationError(
                f"no requests recorded for namespace {namespace!r}"
            ) from None

    def summary_rows(self, extended: bool = False) -> List[Tuple]:
        """(namespace, requests, miss rate, cost-miss ratio, cost missed).

        With ``extended=True`` each row gains two trailing columns —
        ``cost_miss_rate`` and ``resident_bytes`` — used by the tenancy
        reports; the default shape is unchanged for existing callers.
        """
        rows: List[Tuple] = []
        for namespace in self.namespaces():
            metrics = self._per_namespace[namespace]
            row = (namespace, metrics.requests, metrics.miss_rate,
                   metrics.cost_miss_ratio, metrics.cost_missed)
            if extended:
                row = row + (metrics.cost_miss_rate,
                             self.resident_bytes(namespace))
            rows.append(row)
        return rows
