"""The KVS of the paper's simulator (section 3).

"We implemented a simulator that consists of a KVS and a request generator
... The KVS manages a fixed-size memory that implements either the LRU or
the CAMP algorithm.  Every time the request generator references a key and
the KVS reports a miss for its value, the request generator inserts the
missing key-value pair in the KVS.  This results in evictions when the size
of the incoming key-value pair is larger than the available free space."

The store owns byte accounting; the policy owns victim selection.  Optional
pieces: an admission controller (section 6 future work) and listeners (the
occupancy tracker behind Figures 6c/6d subscribes to insert/evict events).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Union

from repro.core.admission import AdmissionController
from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import ConfigurationError, EvictionError

__all__ = ["KVS", "CacheListener"]

Number = Union[int, float]


class CacheListener(Protocol):
    """Observer of residency changes (used by metrics/occupancy trackers)."""

    def on_insert(self, item: CacheItem) -> None: ...

    def on_evict(self, item: CacheItem, explicit: bool) -> None: ...


class KVS:
    """A fixed-capacity key-value store with a pluggable eviction policy."""

    def __init__(self,
                 capacity: int,
                 policy: EvictionPolicy,
                 admission: Optional[AdmissionController] = None,
                 item_overhead: int = 0) -> None:
        """``capacity`` is in bytes.  ``item_overhead`` is charged on top of
        every value's size (per-item metadata, like Twemcache's header)."""
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if item_overhead < 0:
            raise ConfigurationError(
                f"item_overhead must be >= 0, got {item_overhead}")
        self._capacity = capacity
        self._policy = policy
        self._admission = admission
        self._overhead = item_overhead
        self._items: Dict[str, CacheItem] = {}
        self._used = 0
        self._listeners: List[CacheListener] = []
        # counters
        self._rejected_too_large = 0
        self._rejected_admission = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_listener(self, listener: CacheListener) -> None:
        self._listeners.append(listener)

    def _notify_insert(self, item: CacheItem) -> None:
        for listener in self._listeners:
            listener.on_insert(item)

    def _notify_evict(self, item: CacheItem, explicit: bool) -> None:
        for listener in self._listeners:
            listener.on_evict(item, explicit)

    # ------------------------------------------------------------------
    # the request interface used by the simulator
    # ------------------------------------------------------------------
    def get(self, key: str) -> bool:
        """Look up a key; True on hit.  Hits refresh the policy state."""
        if key in self._items:
            self._policy.on_hit(key)
            if self._admission is not None:
                self._admission.on_access(key)
            return True
        return False

    def put(self, key: str, size: int, cost: Number) -> bool:
        """Insert a computed value (the request generator's insert-on-miss).

        Returns True when the pair became resident.  Values that can never
        fit (or that the admission controller declines) are rejected and the
        store is left untouched.  An existing key is overwritten.
        """
        charged = size + self._overhead
        item = CacheItem(key, charged, cost)
        if key in self._items:
            self.delete(key)
        if charged > self._capacity or not self._policy.fits(item,
                                                             self._capacity):
            self._rejected_too_large += 1
            return False
        if self._admission is not None and not self._admission.admit(
                key, size, cost):
            self._rejected_admission += 1
            return False
        while self._policy.wants_eviction(item, self.free_bytes):
            if not len(self._policy):
                # nothing left to evict yet still no room: give up
                self._rejected_too_large += 1
                return False
            victim_key = self._policy.pop_victim(item)
            victim = self._items.pop(victim_key)
            self._used -= victim.size
            self._evictions += 1
            self._notify_evict(victim, explicit=False)
        self._policy.on_insert(key, charged, cost)
        self._items[key] = item
        self._used += charged
        self._notify_insert(item)
        return True

    def resize(self, new_capacity: int) -> List[CacheItem]:
        """Change the byte budget at runtime; returns the items evicted.

        Growing simply raises the ceiling.  Shrinking evicts through the
        policy until the resident set fits the new budget, notifying
        listeners exactly like demand evictions (``explicit=False``) —
        this is the primitive the tenancy arbiter uses to move bytes
        between partitions.
        """
        if new_capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {new_capacity}")
        self._capacity = new_capacity
        evicted: List[CacheItem] = []
        while self._used > self._capacity:
            if not len(self._policy):
                raise EvictionError(
                    "resize cannot reclaim space: policy is empty but "
                    "bytes are still accounted")
            victim_key = self._policy.pop_victim()
            victim = self._items.pop(victim_key)
            self._used -= victim.size
            self._evictions += 1
            evicted.append(victim)
            self._notify_evict(victim, explicit=False)
        return evicted

    def delete(self, key: str) -> bool:
        """Explicitly remove a key; True when it was resident."""
        item = self._items.pop(key, None)
        if item is None:
            return False
        self._policy.on_remove(key)
        self._used -= item.size
        self._notify_evict(item, explicit=True)
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self._capacity - self._used

    @property
    def policy(self) -> EvictionPolicy:
        return self._policy

    @property
    def eviction_count(self) -> int:
        return self._evictions

    @property
    def rejected_too_large(self) -> int:
        return self._rejected_too_large

    @property
    def rejected_admission(self) -> int:
        return self._rejected_admission

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def resident_items(self) -> Iterable[CacheItem]:
        return self._items.values()

    def check_consistency(self) -> None:
        """Verify byte accounting and store/policy agreement (test hook)."""
        if sum(item.size for item in self._items.values()) != self._used:
            raise EvictionError("byte accounting out of sync")
        if self._used > self._capacity:
            raise EvictionError("capacity exceeded")
        if len(self._policy) != len(self._items):
            raise EvictionError("policy and store disagree on residency")
        for key in self._items:
            if key not in self._policy:
                raise EvictionError(f"policy lost track of {key!r}")
