"""The KVS of the paper's simulator (section 3).

"We implemented a simulator that consists of a KVS and a request generator
... The KVS manages a fixed-size memory that implements either the LRU or
the CAMP algorithm.  Every time the request generator references a key and
the KVS reports a miss for its value, the request generator inserts the
missing key-value pair in the KVS.  This results in evictions when the size
of the incoming key-value pair is larger than the available free space."

The store owns byte accounting; the policy owns victim selection.  Optional
pieces: an admission controller (section 6 future work) and listeners (the
occupancy tracker behind Figures 6c/6d subscribes to insert/evict events).

Requests report structured :class:`~repro.cache.outcomes.Outcome` values
(``lookup``/``insert``), carry first-class TTLs (``expire_at`` on
:class:`CacheItem`, lazily reclaimed on lookup), and can be batched
(``lookup_many``/``insert_many`` drive the policy under a single
``bulk()`` lock acquisition).  The historical bool API (``get``/``put``)
survives as a thin deprecation shim; new code should go through
:class:`repro.cache.store.Store`.
"""

from __future__ import annotations

import time
from dataclasses import replace as dataclass_replace
from typing import (Callable, Dict, Iterable, List, Optional, Protocol,
                    Tuple, Union)

from repro.cache.outcomes import Outcome
from repro.core.admission import AdmissionController
from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import ConfigurationError, EvictionError

__all__ = ["KVS", "CacheListener"]

Number = Union[int, float]

#: (key, size, cost) or (key, size, cost, ttl) — the insert_many row shape
PutEntry = Union[Tuple[str, int, Number], Tuple[str, int, Number,
                                                Optional[float]]]


class CacheListener(Protocol):
    """Observer of residency changes (used by metrics/occupancy trackers)."""

    def on_insert(self, item: CacheItem) -> None: ...

    def on_evict(self, item: CacheItem, explicit: bool) -> None: ...


class KVS:
    """A fixed-capacity key-value store with a pluggable eviction policy."""

    #: values live with the caller (Store memoizes them), not in here
    stores_values = False

    def __init__(self,
                 capacity: int,
                 policy: EvictionPolicy,
                 admission: Optional[AdmissionController] = None,
                 item_overhead: int = 0,
                 clock: Optional[Callable[[], float]] = None) -> None:
        """``capacity`` is in bytes.  ``item_overhead`` is charged on top of
        every value's size (per-item metadata, like Twemcache's header).
        ``clock`` feeds TTL expiry and is injectable for deterministic
        tests (defaults to ``time.monotonic``)."""
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if item_overhead < 0:
            raise ConfigurationError(
                f"item_overhead must be >= 0, got {item_overhead}")
        self._capacity = capacity
        self._policy = policy
        self._admission = admission
        self._overhead = item_overhead
        self._clock = clock if clock is not None else time.monotonic
        self._items: Dict[str, CacheItem] = {}
        self._used = 0
        self._listeners: List[CacheListener] = []
        # counters
        self._rejected_too_large = 0
        self._rejected_admission = 0
        self._evictions = 0
        self._expired = 0

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_listener(self, listener: CacheListener) -> None:
        """Subscribe; listeners are notified in registration order."""
        self._listeners.append(listener)

    def _notify_insert(self, item: CacheItem) -> None:
        for listener in self._listeners:
            listener.on_insert(item)

    def _notify_evict(self, item: CacheItem, explicit: bool) -> None:
        for listener in self._listeners:
            listener.on_evict(item, explicit)

    def _notify_touch(self, item: CacheItem) -> None:
        """TTL reset on a live key.  ``on_touch`` is an *optional* hook —
        only durability listeners care, so the protocol keeps it off the
        required surface and dispatch skips listeners without it."""
        for listener in self._listeners:
            on_touch = getattr(listener, "on_touch", None)
            if on_touch is not None:
                on_touch(item)

    # ------------------------------------------------------------------
    # the structured request interface
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Outcome:
        """Look up a key: HIT, MISS, or EXPIRED (entry lazily reclaimed).

        Hits refresh the policy (and admission-history) state.  Expired
        entries are removed like an explicit delete — *not* like a
        capacity eviction — so pressure-driven listeners (ghost caches)
        do not mistake lifecycle expiry for memory pressure.
        """
        return self._lookup_one(self._policy, key, self._clock())

    def _lookup_one(self, policy: EvictionPolicy, key: str,
                    now: float) -> Outcome:
        item = self._items.get(key)
        if item is None:
            return Outcome.MISS
        expire_at = item.expire_at
        if expire_at != 0.0 and now >= expire_at:
            self._drop(policy, item, explicit=True)
            self._expired += 1
            return Outcome.EXPIRED
        policy.on_hit(key)
        if self._admission is not None:
            self._admission.on_access(key)
        return Outcome.HIT

    def insert(self, key: str, size: int, cost: Number,
               ttl: Optional[float] = None) -> Outcome:
        """Insert a computed value (the request generator's insert-on-miss).

        Returns MISS_INSERTED when the pair became resident, or a
        rejection outcome when it can never fit / the admission
        controller declines.  Overwrites replace the resident copy —
        but a *rejected* replacement leaves the old copy untouched
        rather than silently dropping it.  ``ttl`` is seconds until
        expiry on this store's clock (None or 0 = never).
        """
        return self._insert_one(self._policy, key, size, cost, ttl)

    def _insert_one(self, policy: EvictionPolicy, key: str, size: int,
                    cost: Number, ttl: Optional[float]) -> Outcome:
        charged = size + self._overhead
        expire_at = self._clock() + ttl if ttl else 0.0
        item = CacheItem(key, charged, cost, expire_at)
        # Admissibility is decided *before* any resident copy is removed,
        # so a rejected replacement cannot lose the old value.
        if charged > self._capacity or not policy.fits(item, self._capacity):
            self._rejected_too_large += 1
            return Outcome.MISS_REJECTED_TOO_LARGE
        if self._admission is not None and not self._admission.admit(
                key, size, cost):
            self._rejected_admission += 1
            return Outcome.MISS_REJECTED_ADMISSION
        items = self._items
        listeners = self._listeners
        existing = items.pop(key, None)
        if existing is not None:
            policy.on_remove(key)
            self._used -= existing.size
            if listeners:
                self._notify_evict(existing, explicit=True)
        while policy.wants_eviction(item, self._capacity - self._used):
            if not len(policy):
                # nothing left to evict yet still no room: give up
                self._rejected_too_large += 1
                return Outcome.MISS_REJECTED_TOO_LARGE
            victim_key = policy.pop_victim(item)
            victim = items.pop(victim_key)
            self._used -= victim.size
            self._evictions += 1
            if listeners:
                self._notify_evict(victim, explicit=False)
        policy.on_insert(key, charged, cost)
        items[key] = item
        self._used += charged
        if listeners:
            self._notify_insert(item)
        return Outcome.MISS_INSERTED

    def touch(self, key: str, ttl: Optional[float] = None) -> bool:
        """Reset a live key's expiry (None or 0 = never); True when live."""
        item = self._items.get(key)
        if item is None:
            return False
        now = self._clock()
        if item.expire_at != 0 and now >= item.expire_at:
            self._drop(self._policy, item, explicit=True)
            self._expired += 1
            return False
        expire_at = now + ttl if ttl else 0.0
        refreshed = dataclass_replace(item, expire_at=expire_at)
        self._items[key] = refreshed
        self._notify_touch(refreshed)
        return True

    def peek(self, key: str) -> Optional[CacheItem]:
        """The resident item's metadata without refreshing policy state.

        Expired-but-unreclaimed entries are reported as absent.
        """
        item = self._items.get(key)
        if item is None:
            return None
        if item.expire_at != 0 and self._clock() >= item.expire_at:
            return None
        return item

    def purge_expired(self, limit: Optional[int] = None) -> int:
        """Eagerly reclaim expired entries (all, or at most ``limit``)."""
        now = self._clock()
        lapsed = [item for item in self._items.values()
                  if item.expire_at != 0 and now >= item.expire_at]
        if limit is not None:
            lapsed = lapsed[:limit]
        for item in lapsed:
            self._drop(self._policy, item, explicit=True)
            self._expired += 1
        return len(lapsed)

    # ------------------------------------------------------------------
    # batched requests — one policy lock acquisition per batch
    # ------------------------------------------------------------------
    def lookup_many(self, keys: Iterable[str]) -> List[Outcome]:
        """Batched :meth:`lookup`: same per-key semantics, driven through
        the policy's ``bulk()`` handle so thread-safe wrappers lock once
        for the whole batch."""
        outcomes: List[Outcome] = []
        append = outcomes.append
        now = self._clock()
        with self._policy.bulk() as policy:
            lookup_one = self._lookup_one
            for key in keys:
                append(lookup_one(policy, key, now))
        return outcomes

    def insert_many(self, entries: Iterable[PutEntry]) -> List[Outcome]:
        """Batched :meth:`insert` over (key, size, cost[, ttl]) rows.

        Exactly equivalent to sequential inserts — same residency, same
        evictions — just cheaper under a thread-safe policy wrapper.
        """
        outcomes: List[Outcome] = []
        append = outcomes.append
        with self._policy.bulk() as policy:
            insert_one = self._insert_one
            for entry in entries:
                key, size, cost = entry[0], entry[1], entry[2]
                ttl = entry[3] if len(entry) > 3 else None
                append(insert_one(policy, key, size, cost, ttl))
        return outcomes

    # ------------------------------------------------------------------
    # the historical bool API (deprecated shims)
    # ------------------------------------------------------------------
    def get(self, key: str) -> bool:
        """Deprecated: use :meth:`lookup` (or go through ``Store``).

        True on hit; expired entries read as misses.
        """
        return self.lookup(key) is Outcome.HIT

    def put(self, key: str, size: int, cost: Number) -> bool:
        """Deprecated: use :meth:`insert` (or go through ``Store``).

        True when the pair became resident.
        """
        return self.insert(key, size, cost) is Outcome.MISS_INSERTED

    # ------------------------------------------------------------------
    # resizing / removal
    # ------------------------------------------------------------------
    def resize(self, new_capacity: int) -> List[CacheItem]:
        """Change the byte budget at runtime; returns the items evicted.

        Growing simply raises the ceiling.  Shrinking evicts through the
        policy until the resident set fits the new budget, notifying
        listeners exactly like demand evictions (``explicit=False``) —
        this is the primitive the tenancy arbiter uses to move bytes
        between partitions.
        """
        if new_capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {new_capacity}")
        self._capacity = new_capacity
        evicted: List[CacheItem] = []
        while self._used > self._capacity:
            if not len(self._policy):
                raise EvictionError(
                    "resize cannot reclaim space: policy is empty but "
                    "bytes are still accounted")
            victim_key = self._policy.pop_victim()
            victim = self._items.pop(victim_key)
            self._used -= victim.size
            self._evictions += 1
            evicted.append(victim)
            self._notify_evict(victim, explicit=False)
        return evicted

    def restore(self, items: Iterable[CacheItem],
                policy_state: Dict[str, object]) -> List[CacheItem]:
        """Install a durable snapshot into this (empty) store.

        The policy state is imported first — it must list exactly the
        snapshot's items — then each item is installed verbatim (sizes
        are already overhead-charged; expiry rebasing is the snapshot
        layer's job) and listeners see it as an insert.  If the snapshot
        was taken at a larger capacity than this store now has, the
        policy evicts down to fit; the evicted items are returned so the
        caller can account for them.
        """
        if self._items:
            raise ConfigurationError(
                f"restore requires an empty store; {len(self._items)} "
                f"items are resident")
        self._policy.import_state(policy_state)
        for item in items:
            if item.key in self._items:
                raise ConfigurationError(
                    f"snapshot lists {item.key!r} twice")
            self._items[item.key] = item
            self._used += item.size
            self._notify_insert(item)
        if len(self._policy) != len(self._items):
            raise ConfigurationError(
                "snapshot policy state disagrees with its item set")
        evicted: List[CacheItem] = []
        while self._used > self._capacity:
            victim_key = self._policy.pop_victim()
            victim = self._items.pop(victim_key)
            self._used -= victim.size
            self._evictions += 1
            evicted.append(victim)
            self._notify_evict(victim, explicit=False)
        return evicted

    def delete(self, key: str) -> bool:
        """Explicitly remove a key; True when it was resident."""
        item = self._items.pop(key, None)
        if item is None:
            return False
        self._policy.on_remove(key)
        self._used -= item.size
        self._notify_evict(item, explicit=True)
        return True

    def _drop(self, policy: EvictionPolicy, item: CacheItem,
              explicit: bool) -> None:
        """Remove a known-resident item through the given policy handle."""
        self._items.pop(item.key, None)
        policy.on_remove(item.key)
        self._used -= item.size
        if self._listeners:
            self._notify_evict(item, explicit=explicit)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self._capacity - self._used

    @property
    def policy(self) -> EvictionPolicy:
        return self._policy

    @property
    def item_overhead(self) -> int:
        """Bytes charged per item on top of its value size."""
        return self._overhead

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    @property
    def eviction_count(self) -> int:
        return self._evictions

    @property
    def rejected_too_large(self) -> int:
        return self._rejected_too_large

    @property
    def rejected_admission(self) -> int:
        return self._rejected_admission

    @property
    def expired_count(self) -> int:
        """Entries reclaimed because their TTL lapsed."""
        return self._expired

    def stats(self) -> Dict[str, Number]:
        return {
            "items": len(self._items),
            "capacity": self._capacity,
            "used_bytes": self._used,
            "evictions": self._evictions,
            "rejected_too_large": self._rejected_too_large,
            "rejected_admission": self._rejected_admission,
            "expired": self._expired,
        }

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def resident_items(self) -> Iterable[CacheItem]:
        return self._items.values()

    def check_consistency(self) -> None:
        """Verify byte accounting and store/policy agreement (test hook)."""
        if sum(item.size for item in self._items.values()) != self._used:
            raise EvictionError("byte accounting out of sync")
        if self._used > self._capacity:
            raise EvictionError("capacity exceeded")
        if len(self._policy) != len(self._items):
            raise EvictionError("policy and store disagree on residency")
        for key in self._items:
            if key not in self._policy:
                raise EvictionError(f"policy lost track of {key!r}")
