"""The KVS memory simulator, its metrics, and the hierarchical extension."""

from __future__ import annotations

from repro.cache.hierarchy import (LookupOutcome, MultiLevelCache,
                                    TwoLevelCache)
from repro.cache.kvs import KVS, CacheListener
from repro.cache.metrics import (
    OccupancyTracker,
    PerNamespaceMetrics,
    SimulationMetrics,
    WindowedMetrics,
    default_namespace,
)
from repro.cache.async_store import AsyncStore
from repro.cache.outcomes import AccessResult, BatchResult, Computed, Outcome
from repro.cache.store import Store, StoreConfig

__all__ = [
    "KVS",
    "CacheListener",
    "Store",
    "AsyncStore",
    "StoreConfig",
    "Outcome",
    "AccessResult",
    "BatchResult",
    "Computed",
    "SimulationMetrics",
    "OccupancyTracker",
    "WindowedMetrics",
    "PerNamespaceMetrics",
    "default_namespace",
    "TwoLevelCache",
    "MultiLevelCache",
    "LookupOutcome",
]
