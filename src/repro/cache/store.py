"""The unified request surface: a read-through facade over any backend.

The paper's KVS model is "lookup, and on a miss recompute at cost(p) and
insert".  :class:`Store` is that contract as one public API:

* :meth:`Store.get_or_compute` — read-through with a loader; the store
  *measures* the loader's wall time and memoizes it as the paper's
  cost(p), so callers no longer hand-roll insert-on-miss or invent costs.
* Structured :class:`~repro.cache.outcomes.Outcome` / ``AccessResult``
  replace bool returns (HIT / MISS_INSERTED / MISS_REJECTED_TOO_LARGE /
  MISS_REJECTED_ADMISSION / EXPIRED).
* First-class TTLs — expiry lives in ``CacheItem``/``KVS`` (and the slab
  engine), not in any one engine's private bookkeeping.
* Batched :meth:`get_many` / :meth:`put_many` drive the eviction policy
  under a single ``bulk()`` lock acquisition — measurably faster than
  looped single calls on thread-safe-wrapped policies (see
  ``benchmarks/test_store_batch.py``).
* :class:`StoreConfig` — a fluent builder unifying construction: policy
  by registry name, admission controller, item overhead, listeners,
  metrics, clock.

A *backend* is anything exposing the structured KVS surface (``lookup``,
``insert``, ``delete``, ``touch``, containment).  :class:`repro.cache.kvs.KVS`
is the canonical one; the twemcache slab engine adapts its four-step
allocation path to the same protocol so the server routes through a Store
too.  Backends that hold their own value payloads declare
``stores_values = True`` and receive ``value``/metadata kwargs on insert;
otherwise the Store memoizes loader values itself and drops them on
eviction via a listener.

Thread safety has two levels: a thread-safe *policy* wrapper makes the
byte accounting safe (as for the bare KVS), while the optional ``lock``
constructor argument serializes whole Store operations — the twemcache
engine passes its engine-wide RLock so ``engine.store`` is as safe as
the engine's own methods.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Union)

from repro.cache.kvs import KVS, PutEntry
from repro.cache.metrics import SimulationMetrics
from repro.cache.outcomes import AccessResult, BatchResult, Computed, Outcome
from repro.core import make_policy
from repro.core.admission import AdmissionController
from repro.core.concurrent import ThreadSafePolicy
from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import ConfigurationError

__all__ = ["Store", "StoreConfig", "Outcome", "AccessResult", "BatchResult",
           "Computed"]

Number = Union[int, float]

#: loader(key) -> value | Computed
Loader = Callable[[str], object]


class _NoLock:
    """No-op context manager for lock-free (single-threaded) stores."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NO_LOCK = _NoLock()


class _Flight:
    """One in-progress load that concurrent callers of the same missing
    key attach to instead of recomputing (the single-flight guarantee)."""

    __slots__ = ("_event", "result", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.result: Optional[AccessResult] = None
        self.error: Optional[BaseException] = None

    def resolve(self, result: AccessResult) -> None:
        self.result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._event.set()

    def wait(self) -> AccessResult:
        self._event.wait()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return replace(self.result, coalesced=True)


class _ValueReaper:
    """Listener that drops memoized values when their key leaves the store."""

    def __init__(self, values: Dict[str, object]) -> None:
        self._values = values

    def on_insert(self, item: CacheItem) -> None:
        pass

    def on_evict(self, item: CacheItem, explicit: bool) -> None:
        self._values.pop(item.key, None)


class Store:
    """Read-through facade: one request API over a pluggable backend."""

    def __init__(self,
                 backend: KVS,
                 metrics: Optional[SimulationMetrics] = None,
                 sizer: Optional[Callable[[str, object], int]] = None,
                 lock: Optional[object] = None) -> None:
        """``backend`` is usually a :class:`KVS`; any object speaking the
        structured protocol works.  ``metrics`` (optional) is fed by
        :meth:`access` and :meth:`get_or_compute` with the paper's
        cold-request exclusion.  ``sizer`` maps (key, loaded value) to a
        byte size when the loader does not declare one (defaults to
        ``len(value)``).  ``lock`` (any context manager, e.g. an RLock)
        serializes every Store operation — pass the owning engine's lock
        when the backend is shared across threads."""
        self._backend = backend
        self._backend_stores_values = bool(
            getattr(backend, "stores_values", False))
        # optional backend capabilities, resolved once (not per request)
        self._backend_peek = getattr(backend, "peek", None)
        self._backend_value_of = getattr(backend, "value_of", None)
        # tiered backends price a disk-tier serve at this fraction of the
        # item's recompute cost (0.0 for single-tier backends, whose
        # lookups never return HIT_L2 / MISS_PROMOTED)
        self._backend_l2_factor = float(
            getattr(backend, "l2_hit_cost_factor", 0.0) or 0.0)
        self._sizer = sizer
        self._lock = lock if lock is not None else _NO_LOCK
        self._values: Dict[str, object] = {}
        self._reaping = False
        self._persistence = None
        #: keys a warm restart left metadata-resident with their payload
        #: lost (log-replayed inserts); get_or_compute recomputes these
        #: once and re-memoizes.  Set by StoreConfig.persistence wiring.
        self._lost_values: set = set()
        #: RecoveryReport of the warm start that built this store (None
        #: for cold builds); set by StoreConfig.persistence wiring
        self.last_recovery = None
        self.metrics = metrics
        # single-flight bookkeeping: per-key in-progress loads, guarded
        # by their own mutex (never held while a loader runs)
        self._flights: Dict[str, _Flight] = {}
        self._flights_mutex = threading.Lock()
        #: loader invocations this store actually paid for
        self.loads = 0
        #: get_or_compute calls answered by someone else's in-flight load
        self.coalesced_loads = 0

    # ------------------------------------------------------------------
    # single-key requests
    # ------------------------------------------------------------------
    def get(self, key: str) -> AccessResult:
        """Pure lookup: HIT (with the memoized value), MISS, or EXPIRED.

        On a tiered backend a disk-tier serve surfaces as ``HIT_L2``
        (promoted into DRAM) or ``MISS_PROMOTED`` (still disk-resident);
        both carry the payload when one was demoted with the item.
        """
        with self._lock:
            outcome = self._backend.lookup(key)
            if (outcome is Outcome.HIT or outcome is Outcome.HIT_L2
                    or outcome is Outcome.MISS_PROMOTED):
                item = self._peek(key)
                if item is not None:
                    return AccessResult(key, outcome, item.size, item.cost,
                                        self._value_of(key), True)
                return AccessResult(key, outcome, 0, 0.0,
                                    self._value_of(key), True)
            return AccessResult(key, outcome,
                                expired=outcome is Outcome.EXPIRED)

    def put(self, key: str, size: int, cost: Number = 0.0,
            ttl: Optional[float] = None, value: object = None,
            **meta: object) -> AccessResult:
        """Explicit insert; ``.outcome`` says what happened and
        ``.resident`` reports membership after the call — a rejected
        replacement leaves the old copy resident, so the two disagree
        exactly when an overwrite was refused.

        ``value`` (and any extra ``meta`` kwargs, for backends that store
        their own payloads) is memoized for later hits.
        """
        with self._lock:
            if self._backend_stores_values:
                if value is None:
                    raise ConfigurationError(
                        f"this store's backend holds value payloads; "
                        f"pass value= when putting {key!r}")
                outcome = self._backend.insert(key, size, cost, ttl=ttl,
                                               value=value, **meta)
            else:
                outcome = self._backend.insert(key, size, cost, ttl=ttl)
                if outcome is Outcome.MISS_INSERTED and value is not None:
                    self._memoize(key, value)
            resident = outcome is Outcome.MISS_INSERTED or (
                outcome.is_rejection and key in self._backend)
            return AccessResult(key, outcome, size=size, cost=cost,
                                value=value, resident=resident)

    def put_outcome(self, key: str, size: int, cost: Number = 0.0,
                    ttl: Optional[float] = None, value: object = None,
                    **meta: object) -> Outcome:
        """:meth:`put` without the per-request result allocation.

        Same insert semantics; returns only the :class:`Outcome`.  The
        residency-after-rejection detail that :meth:`put` reports via
        ``.resident`` is not computed — callers that only branch on "was
        the new pair stored" (the memcached ``set`` verb) use this.
        """
        with self._lock:
            if self._backend_stores_values:
                if value is None:
                    raise ConfigurationError(
                        f"this store's backend holds value payloads; "
                        f"pass value= when putting {key!r}")
                return self._backend.insert(key, size, cost, ttl=ttl,
                                            value=value, **meta)
            outcome = self._backend.insert(key, size, cost, ttl=ttl)
            if outcome is Outcome.MISS_INSERTED and value is not None:
                self._memoize(key, value)
            return outcome

    def access(self, key: str, size: int, cost: Number,
               ttl: Optional[float] = None) -> AccessResult:
        """One simulator step: lookup, record metrics, insert on miss.

        This is :meth:`get_or_compute` with the (size, cost) already
        known from a trace record — no loader, no value payload.
        """
        with self._lock:
            backend = self._backend
            outcome = backend.lookup(key)
            if outcome is Outcome.HIT:
                if self.metrics is not None:
                    self.metrics.record(key, size, cost, True)
                return AccessResult(key, outcome, size, cost, None, True)
            if outcome is Outcome.HIT_L2 or outcome is Outcome.MISS_PROMOTED:
                if self.metrics is not None:
                    self.metrics.record_l2(key, size, cost,
                                           self._backend_l2_factor * cost)
                return AccessResult(key, outcome, size, cost, None, True)
            if self.metrics is not None:
                self.metrics.record(key, size, cost, False)
            expired = outcome is Outcome.EXPIRED
            outcome = backend.insert(key, size, cost, ttl=ttl)
            return AccessResult(key, outcome, size, cost, None,
                                outcome is Outcome.MISS_INSERTED, expired)

    def access_outcome(self, key: str, size: int, cost: Number,
                       ttl: Optional[float] = None) -> Outcome:
        """:meth:`access` without the per-request result allocation.

        Returns only the final :class:`Outcome` (the lookup's HIT, or
        what happened to the insert-on-miss) — exactly the information
        the trace simulator tallies, so its per-request loop allocates
        nothing.  Metrics recording and semantics match :meth:`access`;
        an expired lookup reports the follow-up insert's outcome, as
        ``access`` reports it in ``.outcome``.

        Only meaningful on lock-free stores (the simulator's); locked
        stores fall back to the same path under their lock.
        """
        lock = self._lock
        if lock is not _NO_LOCK:
            with lock:
                return self._access_outcome_unlocked(key, size, cost, ttl)
        return self._access_outcome_unlocked(key, size, cost, ttl)

    def _access_outcome_unlocked(self, key: str, size: int, cost: Number,
                                 ttl: Optional[float]) -> Outcome:
        backend = self._backend
        outcome = backend.lookup(key)
        if outcome is Outcome.HIT:
            if self.metrics is not None:
                self.metrics.record(key, size, cost, True)
            return outcome
        if outcome is Outcome.HIT_L2 or outcome is Outcome.MISS_PROMOTED:
            if self.metrics is not None:
                self.metrics.record_l2(key, size, cost,
                                       self._backend_l2_factor * cost)
            return outcome
        if self.metrics is not None:
            self.metrics.record(key, size, cost, False)
        return backend.insert(key, size, cost, ttl=ttl)

    def get_or_compute(self, key: str, loader: Loader,
                       ttl: Optional[float] = None,
                       size: Optional[int] = None,
                       cost: Optional[Number] = None) -> AccessResult:
        """Read-through: return the cached value or recompute-and-insert.

        On a miss the ``loader(key)`` runs once; its wall-clock seconds
        become the item's cost(p) unless ``cost`` (or a
        :class:`Computed` return) says otherwise, and ``len(value)``
        becomes the size unless ``size``/``Computed``/the store's sizer
        does.  The result's ``value`` is always usable — even when the
        insert was rejected, the freshly computed value is handed back.

        Misses are **single-flight**: concurrent callers of the same
        missing key share one loader invocation and one admission
        decision — the first caller loads, the rest block until it
        resolves and receive the same result marked ``coalesced=True``
        (a thundering herd pays cost(p) once, the exact waste CAMP's
        cost model exists to avoid).  A loader failure propagates to
        every waiter.  Note that when the store holds a whole-store
        lock the loader still runs *under* it, so coalescing there is
        implicit (followers block on the lock, then hit).
        """
        with self._lock:
            outcome = self._backend.lookup(key)
            if outcome is Outcome.HIT:
                return self._hit_access(key, loader)
            if outcome is Outcome.HIT_L2 or outcome is Outcome.MISS_PROMOTED:
                result = self._l2_access(key, outcome, loader)
                if result is not None:
                    return result
        expired = outcome is Outcome.EXPIRED
        flight, leader = self._join_flight(key)
        if not leader:
            return flight.wait()
        try:
            with self._lock:
                # re-probe under leadership: the previous leader may
                # have inserted while this caller was joining
                outcome = self._backend.lookup(key)
                l2_result = None
                if (outcome is Outcome.HIT_L2
                        or outcome is Outcome.MISS_PROMOTED):
                    l2_result = self._l2_access(key, outcome, loader)
                if outcome is Outcome.HIT:
                    result = self._hit_access(key, loader)
                elif l2_result is not None:
                    result = l2_result
                else:
                    expired = expired or outcome is Outcome.EXPIRED
                    started = time.perf_counter()
                    loaded = loader(key)
                    elapsed = time.perf_counter() - started
                    self.loads += 1
                    result = self._store_loaded(key, loaded, size, cost,
                                                ttl, elapsed, expired)
            flight.resolve(result)
            return result
        except BaseException as exc:
            flight.fail(exc)
            raise
        finally:
            self._leave_flight(key, flight)

    # -- single-flight plumbing (shared with AsyncStore) ----------------
    def _join_flight(self, key: str):
        """Return ``(flight, leader)``: attach to the key's in-progress
        load, or open a new one and become its leader."""
        with self._flights_mutex:
            flight = self._flights.get(key)
            if flight is not None:
                self.coalesced_loads += 1
                return flight, False
            flight = _Flight()
            self._flights[key] = flight
            return flight, True

    def _leave_flight(self, key: str, flight: _Flight) -> None:
        with self._flights_mutex:
            if self._flights.get(key) is flight:
                del self._flights[key]

    def _value_lost(self, key: str) -> bool:
        """A warm restart left this key resident without its payload."""
        return key in self._lost_values and self._value_of(key) is None

    def _hit_access(self, key: str,
                    loader: Optional[Loader] = None) -> AccessResult:
        """Build the HIT result for a resident key (metrics recorded).

        When a warm restart's AOL replay rebuilt the key's residency
        without its payload (the log records metadata only) and a
        ``loader`` is given, honour the "value is always usable"
        contract by recomputing once and re-memoizing, while
        residency/policy still count a hit.  Keys that never had a
        value (metadata-only callers, negative-caching loaders) keep
        the plain HIT-with-None behaviour.  Caller holds the store
        lock.
        """
        if loader is not None and self._value_lost(key):
            return self._adopt_reloaded(key, loader(key))
        return self._hit_result(key, self._value_of(key))

    def _adopt_reloaded(self, key: str, loaded: object) -> AccessResult:
        """Memoize a freshly recomputed payload for a lost-value hit."""
        self._lost_values.discard(key)
        value = loaded.value if isinstance(loaded, Computed) else loaded
        if value is not None:
            self._memoize(key, value)
        return self._hit_result(key, value)

    def _l2_access(self, key: str, outcome: Outcome,
                   loader: Optional[Loader]) -> Optional[AccessResult]:
        """Build the result for a disk-tier-served lookup (caller holds
        the store lock; metrics get the discounted L2 charge).

        Returns None when the disk record carried no payload but a
        ``loader`` expects one (metadata-only demotions from trace
        traffic): the caller falls through to the ordinary miss path and
        recomputes, keeping the "value is always usable" contract.
        """
        value = self._value_of(key)
        if value is None and loader is not None:
            return None
        item = self._peek(key)
        item_size = item.size if item is not None else 0
        item_cost = item.cost if item is not None else 0.0
        if self.metrics is not None:
            self.metrics.record_l2(key, item_size, item_cost,
                                   self._backend_l2_factor * item_cost)
        return AccessResult(key, outcome, size=item_size, cost=item_cost,
                            value=value, resident=True)

    def _hit_result(self, key: str, value: object) -> AccessResult:
        item = self._peek(key)
        item_size = item.size if item is not None else 0
        item_cost = item.cost if item is not None else 0.0
        if self.metrics is not None:
            self.metrics.record(key, item_size, item_cost, True)
        return AccessResult(key, Outcome.HIT, size=item_size,
                            cost=item_cost, value=value, resident=True)

    def _store_loaded(self, key: str, loaded: object,
                      size: Optional[int], cost: Optional[Number],
                      ttl: Optional[float], elapsed: float,
                      expired: bool) -> AccessResult:
        """Insert a loader's product (the miss half of get_or_compute);
        caller holds the store lock."""
        value, size, cost, ttl = self._resolve_computed(
            key, loaded, size, cost, ttl, elapsed)
        if self._backend_stores_values:
            outcome = self._backend.insert(key, size, cost, ttl=ttl,
                                           value=value)
        else:
            outcome = self._backend.insert(key, size, cost, ttl=ttl)
            if outcome is Outcome.MISS_INSERTED and value is not None:
                self._memoize(key, value)
        if self.metrics is not None:
            self.metrics.record(key, size, cost, False)
        return AccessResult(key, outcome, size=size, cost=cost,
                            value=value,
                            resident=outcome is Outcome.MISS_INSERTED,
                            expired=expired)

    def _resolve_computed(self, key: str, loaded: object,
                          size: Optional[int], cost: Optional[Number],
                          ttl: Optional[float], elapsed: float):
        if isinstance(loaded, Computed):
            value = loaded.value
            size = size if size is not None else loaded.size
            cost = cost if cost is not None else loaded.cost
            ttl = ttl if ttl is not None else loaded.ttl
        else:
            value = loaded
        if size is None:
            if self._sizer is not None:
                size = self._sizer(key, value)
            else:
                try:
                    size = len(value)  # type: ignore[arg-type]
                except TypeError:
                    raise ConfigurationError(
                        f"cannot size loaded value for {key!r}; pass "
                        f"size=, return a Computed, or give the store a "
                        f"sizer") from None
        if cost is None:
            cost = elapsed
        return value, size, cost, ttl

    def delete(self, key: str) -> bool:
        """Explicit removal; True when the key was resident."""
        with self._lock:
            self._values.pop(key, None)
            return self._backend.delete(key)

    def touch(self, key: str, ttl: Optional[float] = None) -> bool:
        """Reset a live key's TTL (None or 0 = never); True when live."""
        with self._lock:
            return self._backend.touch(key, ttl)

    # ------------------------------------------------------------------
    # batched requests
    # ------------------------------------------------------------------
    def get_many(self, keys: Sequence[str]) -> BatchResult:
        """Batched lookup under one policy-lock acquisition.

        Returns bare per-key outcomes (no per-item result allocation, no
        metrics feed) — the throughput-oriented sibling of :meth:`get`.
        """
        with self._lock:
            lookup_many = getattr(self._backend, "lookup_many", None)
            if lookup_many is not None:
                return BatchResult(lookup_many(keys))
            return BatchResult([self._backend.lookup(key) for key in keys])

    def put_many(self, entries: Iterable[PutEntry]) -> BatchResult:
        """Batched insert of (key, size, cost[, ttl]) rows under one
        policy-lock acquisition; outcome semantics match :meth:`put`.

        Rows carry no value payloads, so backends that store their own
        values (the slab engine) are refused rather than silently fed
        empty payloads — use :meth:`put` with ``value=`` there.
        """
        if self._backend_stores_values:
            raise ConfigurationError(
                "put_many rows carry no value payloads; this store's "
                "backend holds values — use put(value=...) instead")
        with self._lock:
            insert_many = getattr(self._backend, "insert_many", None)
            if insert_many is not None:
                return BatchResult(insert_many(entries))
            outcomes = []
            for entry in entries:
                key, size, cost = entry[0], entry[1], entry[2]
                ttl = entry[3] if len(entry) > 3 else None
                outcomes.append(
                    self._backend.insert(key, size, cost, ttl=ttl))
            return BatchResult(outcomes)

    # ------------------------------------------------------------------
    # value memoization
    # ------------------------------------------------------------------
    def _memoize(self, key: str, value: object) -> None:
        if not self._reaping:
            add_listener = getattr(self._backend, "add_listener", None)
            if add_listener is not None:
                add_listener(_ValueReaper(self._values))
            self._reaping = True
        self._values[key] = value

    def _value_of(self, key: str) -> object:
        if self._backend_stores_values:
            value_of = self._backend_value_of
            return value_of(key) if value_of is not None else None
        return self._values.get(key)

    def _peek(self, key: str) -> Optional[CacheItem]:
        peek = self._backend_peek
        return peek(key) if peek is not None else None

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @property
    def persistence(self):
        """The attached :class:`~repro.persistence.PersistenceManager`
        (None unless the store was built with ``.persistence(...)``)."""
        return self._persistence

    def attach_persistence(self, manager) -> None:
        """Adopt a persistence manager (normally done by StoreConfig)."""
        self._persistence = manager

    def snapshot_payloads(self) -> Dict[str, bytes]:
        """Memoized values that can ride along in a snapshot (bytes
        only — arbitrary loader objects are cache-local by design)."""
        with self._lock:
            return self._snapshot_payloads_unlocked()

    def _snapshot_payloads_unlocked(self) -> Dict[str, bytes]:
        """Lock-free variant handed to the persistence manager as its
        payload source: the manager only calls it on paths where this
        store's lock is already held (``save()``, or auto-compaction
        fired from inside a locked mutation) — re-acquiring would
        deadlock a non-reentrant lock."""
        return {key: bytes(value)
                for key, value in self._values.items()
                if isinstance(value, (bytes, bytearray))}

    def save(self) -> int:
        """Write a snapshot generation now; returns its number.

        Requires the store to have been built with persistence
        configured (``StoreConfig.persistence(...)``).
        """
        if self._persistence is None:
            raise ConfigurationError(
                "this store has no persistence configured; build it with "
                "StoreConfig.persistence(...)")
        with self._lock:
            return self._persistence.snapshot()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> KVS:
        return self._backend

    @property
    def kvs(self) -> KVS:
        """The backend, under its historical name (usually a KVS)."""
        return self._backend

    def stats(self) -> Dict[str, Number]:
        with self._lock:
            return dict(self._backend.stats())

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._backend

    def __len__(self) -> int:
        with self._lock:
            return len(self._backend)

    def check_consistency(self) -> None:
        with self._lock:
            check = getattr(self._backend, "check_consistency", None)
            if check is not None:
                check()
            for key in self._values:
                if key not in self._backend:
                    raise ConfigurationError(
                        f"memoized value for non-resident key {key!r}")


class StoreConfig:
    """Fluent, one-stop construction of a :class:`Store` over a KVS.

    >>> store = (StoreConfig(64 << 20)
    ...          .policy("camp", precision=5)
    ...          .thread_safe()
    ...          .track_metrics()
    ...          .build())
    """

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._policy_name: Optional[str] = "camp"
        self._policy_kwargs: Dict[str, object] = {}
        self._policy_instance: Optional[EvictionPolicy] = None
        self._admission: Optional[AdmissionController] = None
        self._item_overhead = 0
        self._thread_safe = False
        self._listeners: List[object] = []
        self._clock: Optional[Callable[[], float]] = None
        self._metrics: Optional[SimulationMetrics] = None
        self._sizer: Optional[Callable[[str, object], int]] = None
        self._lock: Optional[object] = None
        self._persistence_config: Optional[object] = None
        self._recover = True
        self._tiered_config: Optional[Dict[str, object]] = None

    def policy(self, policy: Union[str, EvictionPolicy],
               **kwargs: object) -> "StoreConfig":
        """Eviction policy, by registry name (kwargs forwarded to the
        factory) or as a ready instance."""
        if isinstance(policy, EvictionPolicy):
            if kwargs:
                raise ConfigurationError(
                    "policy kwargs only apply to registry names")
            self._policy_instance = policy
            self._policy_name = None
        else:
            self._policy_name = policy
            self._policy_kwargs = dict(kwargs)
            self._policy_instance = None
        return self

    def admission(self, controller: AdmissionController) -> "StoreConfig":
        self._admission = controller
        return self

    def item_overhead(self, overhead: int) -> "StoreConfig":
        """Bytes charged per item on top of its value size."""
        self._item_overhead = overhead
        return self

    def thread_safe(self, enabled: bool = True) -> "StoreConfig":
        """Wrap the policy in a :class:`ThreadSafePolicy`; batch calls
        still take its lock only once."""
        self._thread_safe = enabled
        return self

    def listener(self, listener: object) -> "StoreConfig":
        """Subscribe a :class:`CacheListener`; repeatable, order kept."""
        self._listeners.append(listener)
        return self

    def clock(self, clock: Callable[[], float]) -> "StoreConfig":
        """TTL clock (injectable for deterministic expiry tests)."""
        self._clock = clock
        return self

    def track_metrics(self,
                      metrics: Optional[SimulationMetrics] = None
                      ) -> "StoreConfig":
        """Feed a :class:`SimulationMetrics` (a fresh one by default)."""
        self._metrics = metrics if metrics is not None else SimulationMetrics()
        return self

    def sizer(self, sizer: Callable[[str, object], int]) -> "StoreConfig":
        """How to size loader values lacking ``len()`` / explicit sizes."""
        self._sizer = sizer
        return self

    def lock(self, lock: object) -> "StoreConfig":
        """Serialize whole Store operations under this context manager."""
        self._lock = lock
        return self

    def persistence(self, directory: str, fsync: str = "never",
                    fsync_every: int = 64,
                    compact_ratio: Optional[float] = 4.0,
                    keep_generations: int = 2,
                    snapshot_payloads: bool = True,
                    recover: bool = True) -> "StoreConfig":
        """Make the store durable: mutations append to an operation log
        under ``directory``, ``store.save()`` writes atomic snapshot
        generations, and — with ``recover`` (the default) — ``build()``
        warm-starts from whatever healthy state the directory holds,
        restoring items *and* eviction-policy priorities.
        """
        from repro.persistence import PersistenceConfig
        self._persistence_config = PersistenceConfig(
            directory=directory, fsync=fsync, fsync_every=fsync_every,
            compact_ratio=compact_ratio, keep_generations=keep_generations,
            snapshot_payloads=snapshot_payloads)
        self._recover = recover
        return self

    def tiered(self, directory: str, disk_capacity: int,
               demote_min_cost_per_byte: float = 0.0,
               l2_hit_cost_factor: float = 0.1,
               segment_bytes: int = 1 << 20,
               demotion_filter: Optional[object] = None,
               recover: bool = True) -> "StoreConfig":
        """Stack the DRAM store over an on-disk victim tier (L2).

        Capacity evictions from DRAM pass a demotion filter — by default
        :class:`~repro.tiering.filter.CostDensityFilter` at
        ``demote_min_cost_per_byte`` (0.0 demotes everything) — and are
        appended to segment files under ``directory``, bounded by
        ``disk_capacity`` logical bytes.  Misses probe the tier before
        any loader; tier hits are promoted back and charged
        ``l2_hit_cost_factor`` of their recompute cost (surfacing as
        ``Outcome.HIT_L2`` / ``Outcome.MISS_PROMOTED``).  With
        ``recover`` (the default) ``build()`` rebuilds the tier's index
        from whatever healthy segment frames the directory holds.

        Mutually exclusive with :meth:`persistence` — the tier is a
        victim cache over the same DRAM state a snapshot would capture,
        and the two would fight over recovery semantics.
        """
        self._tiered_config = {
            "directory": directory,
            "disk_capacity": disk_capacity,
            "demote_min_cost_per_byte": demote_min_cost_per_byte,
            "l2_hit_cost_factor": l2_hit_cost_factor,
            "segment_bytes": segment_bytes,
            "demotion_filter": demotion_filter,
            "recover": recover,
        }
        return self

    def build(self) -> Store:
        if self._policy_instance is not None:
            policy = self._policy_instance
        else:
            policy = make_policy(self._policy_name, self._capacity,
                                 **self._policy_kwargs)
        store_lock = self._lock
        if self._thread_safe:
            if getattr(policy, "concurrent_safe", False):
                # internally synchronized policies (sharded CAMP's
                # striped locks) must not gain a global policy lock on
                # top — that re-serializes every event and undoes the
                # striping.  The KVS byte accounting still needs mutual
                # exclusion, so the *store* gets a lock instead: policy
                # events stay striped for direct policy users while
                # whole-store operations serialize exactly once.
                if store_lock is None:
                    store_lock = threading.Lock()
            else:
                policy = ThreadSafePolicy(policy)
        kvs = KVS(self._capacity, policy, admission=self._admission,
                  item_overhead=self._item_overhead, clock=self._clock)
        backend = kvs
        if self._tiered_config is not None:
            if self._persistence_config is not None:
                raise ConfigurationError(
                    "tiered(...) and persistence(...) are mutually "
                    "exclusive — the disk tier recovers its own segment "
                    "files")
            backend = self._build_tiered_backend(kvs)
            if self._thread_safe and store_lock is None:
                # demotion/promotion are multi-step (KVS + payload dict +
                # file appends); per-policy-event locking cannot cover
                # them, so the whole store serializes
                store_lock = threading.RLock()
        for listener in self._listeners:
            kvs.add_listener(listener)
        store = Store(backend, metrics=self._metrics, sizer=self._sizer,
                      lock=store_lock)
        if self._persistence_config is not None:
            self._wire_persistence(store, kvs)
        return store

    def _build_tiered_backend(self, kvs: KVS):
        """Construct the DiskTier + TieredBackend stack (lazy import —
        ``repro.tiering`` depends on this module's siblings)."""
        from repro.tiering.backend import TieredBackend
        from repro.tiering.disk_tier import DiskTier
        config = self._tiered_config
        tier = DiskTier(config["directory"],
                        capacity_bytes=config["disk_capacity"],
                        segment_bytes=config["segment_bytes"],
                        clock=self._clock,
                        recover=config["recover"])
        demotion_filter = config["demotion_filter"]
        if demotion_filter is None:
            from repro.tiering.filter import AlwaysDemote, CostDensityFilter
            threshold = config["demote_min_cost_per_byte"]
            demotion_filter = (CostDensityFilter(threshold) if threshold > 0
                               else AlwaysDemote())
        return TieredBackend(kvs, tier, demotion_filter=demotion_filter,
                             l2_hit_cost_factor=config["l2_hit_cost_factor"])

    def build_async(self):
        """Build the same store wrapped for asyncio callers: an
        :class:`~repro.cache.async_store.AsyncStore` whose
        ``get_or_compute`` awaits (async or sync) loaders off the event
        loop's critical path with single-flight coalescing.  All
        configuration — policy, admission, TTL clock, metrics,
        persistence — is shared with :meth:`build`.
        """
        from repro.cache.async_store import AsyncStore
        return AsyncStore(self.build())

    def _wire_persistence(self, store: Store, kvs: KVS) -> None:
        """Recover (before the op logger attaches, so restored items are
        not re-logged), then start logging into the state directory.

        The manager is told which generation the live state actually
        corresponds to (the recovered one, or 0 for a cold build): if a
        corrupt newest snapshot forced recovery to fall back — or
        ``recover=False`` skipped it over existing state — the manager
        opens a *fresh* generation rather than appending mutations to a
        log no future recovery would pair with this state.
        """
        from repro.persistence import PersistenceManager, RecoveryManager
        # fail at build, not at the first save (or worse, mid-put when
        # auto-compaction fires): the policy must support state export
        kvs.policy.export_state()
        synced = 0
        if self._recover:
            report = RecoveryManager(
                self._persistence_config.directory).recover_into(kvs)
            for key, payload in report.payloads.items():
                store._memoize(key, payload)
            store.last_recovery = report
            synced = report.generation
            # keys whose payload did not survive (log-replayed inserts,
            # or snapshot rows saved without values): get_or_compute
            # reloads these once instead of handing back a None value
            store._lost_values = {
                item.key for item in kvs.resident_items()
            } - set(report.payloads)
        manager = PersistenceManager(
            kvs, self._persistence_config,
            payload_source=store._snapshot_payloads_unlocked,
            synced_generation=synced)
        store.attach_persistence(manager)
