"""``AsyncStore`` — the asyncio face of the unified Store facade.

Wraps a sync :class:`~repro.cache.store.Store` (built by the same
:class:`~repro.cache.store.StoreConfig`, via ``build_async()``), so
outcome types, TTL handling, metrics, and persistence hooks are all
literally shared — there is one store; this class changes *when* work
happens, not what it decides:

* Cache-resident requests (hits, puts, deletes, batches) execute inline
  on the event loop — they are in-memory operations measured in
  microseconds, cheaper than any executor hand-off.
* ``get_or_compute`` misses await the loader (a coroutine function, a
  coroutine-returning callable, or a plain sync callable) **without
  blocking the loop**, and are **single-flight**: every concurrent
  awaiter of one missing key attaches to the same in-flight load and
  shares its one admission decision; late arrivals get the shared
  result marked ``coalesced=True``.  A cancelled awaiter does not
  cancel the load (it is shielded): the work completes once and the
  cache keeps the value.

One event loop per AsyncStore: the wrapper keeps its flight table as
plain dicts guarded by loop atomicity.  The underlying sync store may
still be shared with threads (its own locks apply).
"""

from __future__ import annotations

import asyncio
import inspect
import time
from dataclasses import replace
from typing import Callable, Dict, Iterable, Optional, Sequence, Union

from repro.cache.kvs import PutEntry
from repro.cache.outcomes import AccessResult, BatchResult, Outcome
from repro.cache.store import Store

__all__ = ["AsyncStore"]

Number = Union[int, float]

#: loader(key) -> value | Computed | awaitable of either
AsyncLoader = Callable[[str], object]


class AsyncStore:
    """Asyncio-native read-through facade over a sync :class:`Store`."""

    def __init__(self, store: Store) -> None:
        self._store = store
        self._flights: Dict[str, asyncio.Task] = {}
        #: loader invocations this wrapper actually awaited
        self.loads = 0
        #: get_or_compute calls answered by an already-in-flight load
        self.coalesced_loads = 0

    # ------------------------------------------------------------------
    # the read-through path
    # ------------------------------------------------------------------
    async def get_or_compute(self, key: str, loader: AsyncLoader,
                             ttl: Optional[float] = None,
                             size: Optional[int] = None,
                             cost: Optional[Number] = None) -> AccessResult:
        """Await the cached value or recompute-and-insert, coalescing
        concurrent misses of one key into a single loader invocation.

        Semantics match :meth:`Store.get_or_compute` (measured cost(p),
        Computed overrides, always-usable value); the loader may be
        async and runs off the store lock.
        """
        flight = self._flights.get(key)
        if flight is None:
            store = self._store
            with store._lock:
                outcome = store._backend.lookup(key)
                if outcome is Outcome.HIT and not store._value_lost(key):
                    return store._hit_access(key)
                if (outcome is Outcome.HIT_L2
                        or outcome is Outcome.MISS_PROMOTED):
                    served = store._l2_access(key, outcome, loader)
                    if served is not None:
                        return served
            expired = outcome is Outcome.EXPIRED
            flight = asyncio.ensure_future(
                self._load(key, loader, ttl, size, cost, expired))
            self._flights[key] = flight
            flight.add_done_callback(
                lambda _task: self._flights.pop(key, None))
            return await asyncio.shield(flight)
        self.coalesced_loads += 1
        result = await asyncio.shield(flight)
        return replace(result, coalesced=True)

    async def _load(self, key: str, loader: AsyncLoader,
                    ttl: Optional[float], size: Optional[int],
                    cost: Optional[Number], expired: bool) -> AccessResult:
        """The leader's half: await the loader, then adjudicate under
        the store lock exactly like the sync miss path."""
        store = self._store
        started = time.perf_counter()
        loaded = loader(key)
        if inspect.isawaitable(loaded):
            loaded = await loaded
        elapsed = time.perf_counter() - started
        self.loads += 1
        with store._lock:
            # the key may have become resident while the loader ran
            # (an external put, or a lost-value hit being re-adopted)
            outcome = store._backend.lookup(key)
            if outcome is Outcome.HIT:
                if store._value_lost(key):
                    return store._adopt_reloaded(key, loaded)
                return store._hit_access(key)
            if outcome is Outcome.HIT_L2 or outcome is Outcome.MISS_PROMOTED:
                # the loader already ran; the disk tier re-served the key
                # meanwhile — prefer the tier's payload, else fall through
                # and store the freshly loaded one over the promoted copy
                served = store._l2_access(key, outcome, loader)
                if served is not None:
                    return served
            expired = expired or outcome is Outcome.EXPIRED
            return store._store_loaded(key, loaded, size, cost, ttl,
                                       elapsed, expired)

    # ------------------------------------------------------------------
    # inline (in-memory) operations — thin delegation
    # ------------------------------------------------------------------
    def get(self, key: str) -> AccessResult:
        return self._store.get(key)

    def put(self, key: str, size: int, cost: Number = 0.0,
            ttl: Optional[float] = None, value: object = None,
            **meta: object) -> AccessResult:
        return self._store.put(key, size, cost, ttl=ttl, value=value,
                               **meta)

    def access(self, key: str, size: int, cost: Number,
               ttl: Optional[float] = None) -> AccessResult:
        return self._store.access(key, size, cost, ttl=ttl)

    def get_many(self, keys: Sequence[str]) -> BatchResult:
        return self._store.get_many(keys)

    def put_many(self, entries: Iterable[PutEntry]) -> BatchResult:
        return self._store.put_many(entries)

    def delete(self, key: str) -> bool:
        return self._store.delete(key)

    def touch(self, key: str, ttl: Optional[float] = None) -> bool:
        return self._store.touch(key, ttl)

    # ------------------------------------------------------------------
    # durability & introspection
    # ------------------------------------------------------------------
    async def save(self) -> int:
        """Write a snapshot generation without stalling the event loop
        (snapshots do real file IO, so it runs in a worker thread)."""
        return await asyncio.to_thread(self._store.save)

    @property
    def persistence(self):
        return self._store.persistence

    @property
    def last_recovery(self):
        return self._store.last_recovery

    @property
    def store(self) -> Store:
        """The wrapped sync store (one state, two calling conventions)."""
        return self._store

    @property
    def backend(self):
        return self._store.backend

    @property
    def metrics(self):
        return self._store.metrics

    @property
    def inflight(self) -> int:
        """Loads currently being awaited (distinct keys)."""
        return len(self._flights)

    def stats(self) -> Dict[str, Number]:
        return self._store.stats()

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def check_consistency(self) -> None:
        self._store.check_consistency()
