"""Two-level hierarchical cache — the paper's section 6 extension.

"More longer term, we are extending CAMP for use with a hierarchical cache
(using SSD, hard disk, or both) which may persist costly data items."

:class:`TwoLevelCache` stacks a small, fast L1 (RAM) over a large, slower
L2 (SSD).  L1 victims are *demoted* into L2 rather than dropped; an L2 hit
*promotes* the pair back into L1.  Each level runs its own eviction policy
(CAMP by default for both — "CAMP systematically renders such decisions by
considering size and cost of key-value pairs ... with a two level cache").

A promotion is charged ``l2_hit_cost_factor * cost`` (reading from SSD is
cheaper than recomputing, but not free), which the hierarchical metrics in
:meth:`lookup` surface to the caller.

These classes are the *offline simulation* face of tiering: metadata-only
levels, one :class:`LookupOutcome` per request, no payloads and no disk.
The production counterpart — real values in segment files, crash
recovery, demotion filters — is :mod:`repro.tiering`; both carry TTLs
through demotion and promotion (an item's remaining lifetime is the same
however deep it sinks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cache.kvs import KVS
from repro.cache.outcomes import Outcome
from repro.core.policy import CacheItem
from repro.errors import ConfigurationError

__all__ = ["TwoLevelCache", "MultiLevelCache", "LookupOutcome"]

Number = Union[int, float]


@dataclass(frozen=True, slots=True)
class LookupOutcome:
    """Where a request was served and what it cost."""

    level: int          # 1 = L1 hit, 2 = L2 hit (promoted), 0 = miss
    charged_cost: float  # 0 for L1 hits, discounted for L2, full for misses

    @property
    def hit(self) -> bool:
        return self.level > 0


def _remaining_ttl(item: CacheItem, store: KVS) -> Optional[float]:
    """Seconds of life the item has left on its store's clock.

    None = no expiry; a non-positive return means it has already lapsed
    (the caller drops it instead of re-inserting an immortal corpse —
    re-inserting with ``ttl=None`` was exactly the TTL-loss bug).
    """
    if not item.expire_at:
        return None
    return item.expire_at - store.clock()


class TwoLevelCache:
    """An L1/L2 cache with demotion on eviction and promotion on L2 hit."""

    def __init__(self,
                 l1: KVS,
                 l2: KVS,
                 l2_hit_cost_factor: float = 0.1) -> None:
        if not 0 <= l2_hit_cost_factor <= 1:
            raise ConfigurationError(
                f"l2_hit_cost_factor must be in [0, 1], got {l2_hit_cost_factor}")
        self._l1 = l1
        self._l2 = l2
        self._factor = l2_hit_cost_factor
        self._demotions = 0
        self._promotions = 0
        # capture L1 evictions for demotion via a listener
        l1.add_listener(_DemotionListener(self))

    # ------------------------------------------------------------------
    @property
    def l1(self) -> KVS:
        return self._l1

    @property
    def l2(self) -> KVS:
        return self._l2

    @property
    def demotions(self) -> int:
        return self._demotions

    @property
    def promotions(self) -> int:
        return self._promotions

    # ------------------------------------------------------------------
    def lookup(self, key: str, size: int, cost: Number,
               ttl: Optional[float] = None) -> LookupOutcome:
        """Serve one request read-through: L1, then L2, then 'compute'.

        On a total miss the computed pair is inserted into L1 (with
        ``ttl``, if any; demoting an L1 victim into L2 if needed).  On
        an L2 hit the pair is promoted into L1 and removed from L2, its
        remaining TTL — not a fresh one — travelling with it.
        """
        if self._l1.lookup(key) is Outcome.HIT:
            return LookupOutcome(level=1, charged_cost=0.0)
        if self._l2.lookup(key) is Outcome.HIT:
            item = self._l2.peek(key)
            remaining = (_remaining_ttl(item, self._l2)
                         if item is not None else None)
            self._l2.delete(key)        # promote: move, don't duplicate
            self._promotions += 1
            self._l1.insert(key, size, cost, ttl=remaining)
            return LookupOutcome(level=2, charged_cost=self._factor * cost)
        self._l1.insert(key, size, cost, ttl=ttl)
        return LookupOutcome(level=0, charged_cost=float(cost))

    def resident_level(self, key: str) -> int:
        """1, 2 or 0 for not resident (diagnostics)."""
        if key in self._l1:
            return 1
        if key in self._l2:
            return 2
        return 0

    def _demote(self, item: CacheItem) -> None:
        remaining = _remaining_ttl(item, self._l2)
        if remaining is not None and remaining <= 0:
            return   # lapsed while resident: drop, don't bury in L2
        self._demotions += 1
        self._l2.insert(item.key, item.size, item.cost, ttl=remaining)


class _DemotionListener:
    """Feeds L1 policy evictions (not explicit deletes) into L2."""

    def __init__(self, owner: TwoLevelCache) -> None:
        self._owner = owner

    def on_insert(self, item) -> None:  # pragma: no cover - uninteresting
        pass

    def on_evict(self, item, explicit: bool) -> None:
        if not explicit:
            self._owner._demote(item)


class MultiLevelCache:
    """An N-level cache hierarchy (RAM → SSD → disk → ...).

    Generalizes :class:`TwoLevelCache` to any number of levels, each with
    its own store and hit-cost factor ("using SSD, hard disk, or both" —
    paper section 6).  Victims cascade downward level by level; a hit at
    level ``i`` promotes the pair back to level 1 and charges
    ``factors[i-1] * cost``.  Factors must increase with depth (deeper
    media are slower) and stay below 1 (still cheaper than recomputing).
    """

    def __init__(self, stores: "list[KVS]",
                 hit_cost_factors: "list[float]") -> None:
        if len(stores) < 2:
            raise ConfigurationError("a hierarchy needs at least two levels")
        if len(hit_cost_factors) != len(stores):
            raise ConfigurationError(
                "need one hit-cost factor per level (level 1 usually 0)")
        previous = -1.0
        for factor in hit_cost_factors:
            if not 0 <= factor <= 1:
                raise ConfigurationError(
                    f"hit-cost factors must be in [0, 1], got {factor}")
            if factor < previous:
                raise ConfigurationError(
                    "hit-cost factors must be non-decreasing with depth")
            previous = factor
        self._stores = list(stores)
        self._factors = list(hit_cost_factors)
        self.promotions = 0
        self.demotions = 0
        # chain demotion listeners: level i evictions insert into level i+1
        for upper_index in range(len(stores) - 1):
            stores[upper_index].add_listener(
                _CascadeListener(self, upper_index + 1))

    @property
    def levels(self) -> int:
        return len(self._stores)

    def store(self, level: int) -> KVS:
        """The KVS at 1-based ``level``."""
        if not 1 <= level <= len(self._stores):
            raise ConfigurationError(f"no level {level}")
        return self._stores[level - 1]

    def resident_level(self, key: str) -> int:
        for index, store in enumerate(self._stores, start=1):
            if key in store:
                return index
        return 0

    def lookup(self, key: str, size: int, cost: Number,
               ttl: Optional[float] = None) -> LookupOutcome:
        """Serve one request; hits promote to level 1, misses fill level 1.

        An ``EXPIRED`` at any level reclaims that level's entry and the
        probe continues deeper — a lapsed L1 copy must not shadow a
        still-valid L2 one (their TTLs can differ only through
        :meth:`KVS.touch`, but the contract holds regardless).
        """
        for index, store in enumerate(self._stores, start=1):
            if store.lookup(key) is not Outcome.HIT:
                continue
            if index > 1:
                item = store.peek(key)
                remaining = (_remaining_ttl(item, store)
                             if item is not None else None)
                store.delete(key)
                self.promotions += 1
                self._stores[0].insert(key, size, cost, ttl=remaining)
            return LookupOutcome(level=index,
                                 charged_cost=self._factors[index - 1]
                                 * cost)
        self._stores[0].insert(key, size, cost, ttl=ttl)
        return LookupOutcome(level=0, charged_cost=float(cost))

    def _demote(self, level_index: int, item: CacheItem) -> None:
        below = self._stores[level_index]
        remaining = _remaining_ttl(item, below)
        if remaining is not None and remaining <= 0:
            return
        self.demotions += 1
        below.insert(item.key, item.size, item.cost, ttl=remaining)


class _CascadeListener:
    """Feeds one level's policy evictions into the next level down."""

    def __init__(self, owner: MultiLevelCache, below_index: int) -> None:
        self._owner = owner
        self._below_index = below_index

    def on_insert(self, item) -> None:  # pragma: no cover - uninteresting
        pass

    def on_evict(self, item, explicit: bool) -> None:
        if not explicit:
            self._owner._demote(self._below_index, item)
