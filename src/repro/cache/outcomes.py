"""Structured request outcomes shared by :class:`KVS` and :class:`Store`.

The paper's KVS contract is "lookup, and on a miss recompute at cost(p)
and insert".  Bare booleans flatten that contract: a ``False`` from
``put`` cannot say *why* the pair is not resident (too large for the
store?  declined by the admission controller?), and a ``False`` from
``get`` cannot distinguish a cold miss from an expired entry.  Every
request surface in the repo now reports one of these outcomes instead;
the old bool API survives only as a deprecation shim.

This module is deliberately tiny and import-cycle free: ``kvs`` and
``store`` both import it, ``store`` re-exports it as the public face.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

__all__ = ["Outcome", "AccessResult", "BatchResult", "Computed"]

Number = Union[int, float]


class Outcome(enum.Enum):
    """Disposition of one request against the store.

    ``HIT``/``MISS``/``EXPIRED`` describe lookups; the ``MISS_*`` values
    describe what happened to the insert-on-miss.  ``EXPIRED`` means the
    key *was* resident but its TTL had lapsed — the entry is reclaimed
    and the request counts as a miss.

    Tiered (DRAM-over-disk) stores add two dispositions: ``HIT_L2`` —
    the DRAM lookup missed, the disk tier served the pair, and it was
    promoted back into DRAM (a hit, charged the tier's discounted
    cost); ``MISS_PROMOTED`` — the disk tier served the pair but DRAM
    *declined* the promotion (admission/size), so the entry stays
    disk-resident.  Both are "served without recomputing"; only
    ``HIT_L2`` counts as a hit.
    """

    HIT = "hit"
    HIT_L2 = "hit_l2"
    MISS = "miss"
    MISS_INSERTED = "miss_inserted"
    MISS_PROMOTED = "miss_promoted"
    MISS_REJECTED_TOO_LARGE = "miss_rejected_too_large"
    MISS_REJECTED_ADMISSION = "miss_rejected_admission"
    EXPIRED = "expired"

    @property
    def is_rejection(self) -> bool:
        return self in (Outcome.MISS_REJECTED_TOO_LARGE,
                        Outcome.MISS_REJECTED_ADMISSION)

    @property
    def is_hit(self) -> bool:
        """Served from cache memory (either tier) without recomputation
        *and* resident afterwards."""
        return self in (Outcome.HIT, Outcome.HIT_L2)

    @property
    def served_from_cache(self) -> bool:
        """The request never needed the loader — a DRAM hit, a disk hit
        (promoted or not)."""
        return self in (Outcome.HIT, Outcome.HIT_L2, Outcome.MISS_PROMOTED)


@dataclass(slots=True)
class AccessResult:
    """Everything one request produced.

    ``resident`` is the key's membership *after* the call; ``expired``
    flags that the lookup found a lapsed entry (set even when the
    follow-up insert gave the final ``outcome``).  ``coalesced`` marks a
    result shared from another caller's in-flight load (single-flight
    ``get_or_compute``): this caller paid no loader invocation of its
    own.  Truthiness means HIT, matching the old ``KVS.get`` bool.
    """

    key: str
    outcome: Outcome
    size: int = 0
    cost: Number = 0.0
    value: object = None
    resident: bool = False
    expired: bool = False
    coalesced: bool = False

    @property
    def hit(self) -> bool:
        """HIT or HIT_L2 — served from cache and resident afterwards."""
        return self.outcome.is_hit

    @property
    def miss(self) -> bool:
        return not self.hit

    @property
    def served(self) -> bool:
        """No recomputation was needed — includes ``MISS_PROMOTED``
        (disk-served but not re-admitted to DRAM)."""
        return self.outcome.served_from_cache

    @property
    def rejected(self) -> bool:
        return self.outcome.is_rejection

    def __bool__(self) -> bool:
        return self.hit


@dataclass(slots=True)
class BatchResult:
    """Per-item outcomes of one ``get_many``/``put_many`` call.

    Kept lightweight on purpose — batch calls exist for throughput, so
    they return bare outcomes rather than one :class:`AccessResult`
    allocation per item.
    """

    outcomes: List[Outcome]

    def count(self, outcome: Outcome) -> int:
        return self.outcomes.count(outcome)

    @property
    def hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.is_hit)

    @property
    def misses(self) -> int:
        return len(self.outcomes) - self.hits

    @property
    def expired(self) -> int:
        return self.count(Outcome.EXPIRED)

    @property
    def inserted(self) -> int:
        return self.count(Outcome.MISS_INSERTED)

    @property
    def rejected(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.is_rejection)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[Outcome]:
        return iter(self.outcomes)


@dataclass(slots=True)
class Computed:
    """A loader's explicit answer for :meth:`Store.get_or_compute`.

    Returning the bare value lets the store derive ``size`` from
    ``len(value)`` and ``cost`` from the measured recompute time;
    returning ``Computed`` overrides any of the three plus the TTL.
    """

    value: object = None
    size: Optional[int] = None
    cost: Optional[Number] = None
    ttl: Optional[float] = None
