"""Pairing heap with the same addressable interface as :class:`DaryHeap`.

Provided as an alternative priority queue for the heap-structure ablation
(the paper cites Larkin/Sen/Tarjan's study when picking the 8-ary implicit
heap; this lets us reproduce that design decision empirically).

The heap exposes ``push`` / ``pop`` / ``peek`` / ``peek_second`` /
``update`` / ``remove`` and a ``node_visits`` counter, so GDS and CAMP can
run unchanged on top of it.
"""

from __future__ import annotations

from typing import Any, Generic, Optional, TypeVar

from repro.errors import ReproError

__all__ = ["PairingEntry", "PairingHeap"]

T = TypeVar("T")


class PairingEntry(Generic[T]):
    """Handle to a pairing-heap node (left-child / right-sibling layout)."""

    __slots__ = ("priority", "item", "child", "sibling", "prev", "in_heap")

    def __init__(self, priority: Any, item: T) -> None:
        self.priority = priority
        self.item = item
        self.child: Optional[PairingEntry[T]] = None
        self.sibling: Optional[PairingEntry[T]] = None
        # ``prev`` is the left sibling, or the parent when this node is the
        # leftmost child.  ``None`` for the root / detached nodes.
        self.prev: Optional[PairingEntry[T]] = None
        self.in_heap = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairingEntry(priority={self.priority!r}, item={self.item!r})"


class PairingHeap(Generic[T]):
    """Min pairing heap with O(1) meld/insert and amortized O(log n) pop."""

    __slots__ = ("_root", "_size", "node_visits")

    def __init__(self) -> None:
        self._root: Optional[PairingEntry[T]] = None
        self._size = 0
        self.node_visits = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, entry: PairingEntry[T]) -> bool:
        return entry.in_heap

    def reset_visits(self) -> None:
        self.node_visits = 0

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def push(self, entry: PairingEntry[T]) -> PairingEntry[T]:
        if entry.in_heap:
            raise ReproError("entry is already in a heap")
        entry.child = entry.sibling = entry.prev = None
        entry.in_heap = True
        self._root = entry if self._root is None else self._meld(self._root, entry)
        self._size += 1
        self.node_visits += 1
        return entry

    def peek(self) -> PairingEntry[T]:
        if self._root is None:
            raise ReproError("peek on an empty heap")
        return self._root

    def peek_second(self) -> Optional[PairingEntry[T]]:
        """Second-smallest entry: the best among the root's children."""
        if self._root is None or self._size < 2:
            return None
        best: Optional[PairingEntry[T]] = None
        node = self._root.child
        while node is not None:
            self.node_visits += 1
            if best is None or node.priority < best.priority:
                best = node
            node = node.sibling
        return best

    def pop(self) -> PairingEntry[T]:
        if self._root is None:
            raise ReproError("pop from an empty heap")
        top = self._root
        self._root = self._merge_pairs(top.child)
        if self._root is not None:
            self._root.prev = None
            self._root.sibling = None
        top.child = top.sibling = top.prev = None
        top.in_heap = False
        self._size -= 1
        return top

    def remove(self, entry: PairingEntry[T]) -> None:
        if not entry.in_heap:
            raise ReproError("entry is not in this heap")
        if entry is self._root:
            self.pop()
            return
        self._cut(entry)
        subtree = self._merge_pairs(entry.child)
        if subtree is not None:
            subtree.prev = None
            subtree.sibling = None
            assert self._root is not None
            self._root = self._meld(self._root, subtree)
        entry.child = entry.sibling = entry.prev = None
        entry.in_heap = False
        self._size -= 1

    def update(self, entry: PairingEntry[T], priority: Any) -> None:
        """Change a priority; handles both decrease and increase."""
        if not entry.in_heap:
            raise ReproError("entry is not in this heap")
        old = entry.priority
        if priority < old:
            entry.priority = priority
            if entry is not self._root:
                self._cut(entry)
                assert self._root is not None
                self._root = self._meld(self._root, entry)
        elif old < priority:
            # increase-key: detach and reinsert
            self.remove(entry)
            entry.priority = priority
            self.push(entry)
        else:
            entry.priority = priority

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _meld(self, a: PairingEntry[T], b: PairingEntry[T]) -> PairingEntry[T]:
        """Make the larger-priority root a child of the smaller one."""
        self.node_visits += 2
        if b.priority < a.priority:
            a, b = b, a
        b.prev = a
        b.sibling = a.child
        if a.child is not None:
            a.child.prev = b
        a.child = b
        return a

    def _merge_pairs(self, first: Optional[PairingEntry[T]]) -> Optional[PairingEntry[T]]:
        """Two-pass pairing of a sibling list; returns the merged root."""
        if first is None:
            return None
        # pass 1: meld adjacent pairs left to right
        pairs = []
        node: Optional[PairingEntry[T]] = first
        while node is not None:
            a = node
            b = node.sibling
            node = b.sibling if b is not None else None
            a.sibling = None
            a.prev = None
            if b is not None:
                b.sibling = None
                b.prev = None
                pairs.append(self._meld(a, b))
            else:
                pairs.append(a)
        # pass 2: meld right to left
        result = pairs[-1]
        for tree in reversed(pairs[:-1]):
            result = self._meld(tree, result)
        return result

    def _cut(self, entry: PairingEntry[T]) -> None:
        """Detach ``entry`` (a non-root node) from its parent's child list."""
        prev = entry.prev
        assert prev is not None
        if prev.child is entry:  # leftmost child: prev is the parent
            prev.child = entry.sibling
        else:  # prev is the left sibling
            prev.sibling = entry.sibling
        if entry.sibling is not None:
            entry.sibling.prev = prev
        entry.sibling = None
        entry.prev = None
        self.node_visits += 1

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify heap order and size; raises on corruption."""
        count = 0
        if self._root is not None:
            stack = [self._root]
            while stack:
                node = stack.pop()
                count += 1
                child = node.child
                while child is not None:
                    if child.priority < node.priority:
                        raise ReproError("pairing heap order violated")
                    stack.append(child)
                    child = child.sibling
        if count != self._size:
            raise ReproError(f"size mismatch: counted {count}, stored {self._size}")
