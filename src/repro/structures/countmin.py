"""Count-min sketch with periodic aging — TinyLFU's frequency estimator.

A fixed-size probabilistic counter array: ``estimate`` never undercounts
(within the aging window) and overcounts with probability bounded by the
sketch geometry.  ``add`` also drives the *reset* mechanism from the
TinyLFU paper: once ``sample_window`` increments have been observed, every
counter is halved, so stale popularity decays and the sketch tracks the
recent request distribution.

Used by :class:`repro.core.admission.TinyLfuAdmission`; exposed here
because it is a generally useful substrate (hot-key detection, cluster
load stats).
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import ConfigurationError

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """``depth`` rows of ``width`` 4-bit-spirit counters (ints, capped)."""

    def __init__(self,
                 width: int = 1024,
                 depth: int = 4,
                 sample_window: int = 16_384,
                 max_count: int = 15,
                 seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError("width and depth must be >= 1")
        if sample_window < 1:
            raise ConfigurationError("sample_window must be >= 1")
        if max_count < 1:
            raise ConfigurationError("max_count must be >= 1")
        self._width = width
        self._depth = depth
        self._window = sample_window
        self._max = max_count
        rng = random.Random(seed)
        # per-row hash mixers (odd multipliers for a multiply-shift hash)
        self._salts: List[int] = [rng.randrange(1, 2 ** 61) | 1
                                  for _ in range(depth)]
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self._additions = 0
        self._resets = 0

    # ------------------------------------------------------------------
    def _indices(self, key: str) -> List[int]:
        base = hash(key) & 0xFFFFFFFFFFFFFFFF
        return [((base * salt) >> 32) % self._width for salt in self._salts]

    def add(self, key: str) -> None:
        """Count one occurrence (conservative update: only minimal rows)."""
        indices = self._indices(key)
        current = min(row[i] for row, i in zip(self._rows, indices))
        if current < self._max:
            for row, i in zip(self._rows, indices):
                if row[i] == current:
                    row[i] += 1
        self._additions += 1
        if self._additions >= self._window:
            self._age()

    def estimate(self, key: str) -> int:
        """Approximate recent frequency of ``key`` (never negative)."""
        indices = self._indices(key)
        return min(row[i] for row, i in zip(self._rows, indices))

    def _age(self) -> None:
        """TinyLFU reset: halve every counter."""
        for row in self._rows:
            for i, value in enumerate(row):
                if value:
                    row[i] = value >> 1
        self._additions = 0
        self._resets += 1

    # ------------------------------------------------------------------
    @property
    def resets(self) -> int:
        return self._resets

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth
