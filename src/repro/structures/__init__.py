"""Priority queues and linked lists used by every eviction policy.

Three interchangeable addressable min-heaps are provided:

* :class:`~repro.structures.dary_heap.DaryHeap` — the 8-ary implicit heap
  the paper actually uses (default backend),
* :class:`~repro.structures.pairing_heap.PairingHeap`,
* :class:`~repro.structures.fibonacci_heap.FibonacciHeap` — the textbook
  choice the paper cites for a straightforward GDS.

All three share an interface (``push`` / ``pop`` / ``peek`` /
``peek_second`` / ``update`` / ``remove`` / ``node_visits``), so GDS and
CAMP can be benchmarked over any of them (the "heap kind" ablation).
:func:`make_heap` builds one by name.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.structures.countmin import CountMinSketch
from repro.structures.dary_heap import DaryHeap, FastDaryHeap, HeapEntry
from repro.structures.dlist import DList, DListNode
from repro.structures.fibonacci_heap import FibEntry, FibonacciHeap
from repro.structures.pairing_heap import PairingEntry, PairingHeap

__all__ = [
    "DList",
    "DListNode",
    "DaryHeap",
    "FastDaryHeap",
    "HeapEntry",
    "PairingHeap",
    "PairingEntry",
    "FibonacciHeap",
    "FibEntry",
    "CountMinSketch",
    "AddressableHeap",
    "make_heap",
    "HEAP_KINDS",
]


@runtime_checkable
class AddressableHeap(Protocol):
    """Structural type implemented by all heap backends in this package."""

    node_visits: int

    def push(self, entry: Any) -> Any: ...

    def pop(self) -> Any: ...

    def peek(self) -> Any: ...

    def peek_second(self) -> Optional[Any]: ...

    def update(self, entry: Any, priority: Any) -> None: ...

    def remove(self, entry: Any) -> None: ...

    def reset_visits(self) -> None: ...

    def __len__(self) -> int: ...

    def __contains__(self, entry: Any) -> bool: ...


# Each heap advertises the handle class callers should instantiate.
DaryHeap.entry_type = HeapEntry  # type: ignore[attr-defined]
FastDaryHeap.entry_type = HeapEntry  # type: ignore[attr-defined]
PairingHeap.entry_type = PairingEntry  # type: ignore[attr-defined]
FibonacciHeap.entry_type = FibEntry  # type: ignore[attr-defined]

#: Heap kinds accepted by :func:`make_heap`.
HEAP_KINDS = ("dary", "binary", "pairing", "fibonacci")


def make_heap(kind: str = "dary", arity: int = 8,
              count_visits: bool = True) -> AddressableHeap:
    """Build a heap backend by name.

    ``kind`` is one of ``"dary"`` (uses ``arity``, default 8 per the paper),
    ``"binary"`` (shorthand for a 2-ary implicit heap), ``"pairing"`` or
    ``"fibonacci"``.

    ``count_visits=False`` picks the accounting-free implicit heap
    (``node_visits`` stays 0) for production hot paths; the pointer-based
    backends ignore the flag (they only appear in measurement ablations).
    """
    if kind == "dary":
        return DaryHeap(arity=arity) if count_visits \
            else FastDaryHeap(arity=arity)
    if kind == "binary":
        return DaryHeap(arity=2) if count_visits else FastDaryHeap(arity=2)
    if kind == "pairing":
        return PairingHeap()
    if kind == "fibonacci":
        return FibonacciHeap()
    raise ConfigurationError(
        f"unknown heap kind {kind!r}; expected one of {HEAP_KINDS}")
