"""Intrusive doubly-linked list.

This is the substrate for every LRU queue in the library.  The list is
*intrusive*: elements are :class:`DListNode` instances (or subclasses that
carry a payload), so membership, removal and moves are O(1) without any
auxiliary map.  A sentinel node keeps all link manipulation branch-free.

CAMP (paper section 2) relies on exactly this property: a cache hit moves a
node to the tail of its LRU queue in constant time, and only the queue *head*
ever participates in the heap of queues.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import ReproError

__all__ = ["DListNode", "DList"]


class DListNode:
    """A node that can live in at most one :class:`DList` at a time.

    Subclass it to attach a payload; the base class only carries links.
    """

    __slots__ = ("prev", "next", "_list")

    def __init__(self) -> None:
        self.prev: Optional[DListNode] = None
        self.next: Optional[DListNode] = None
        self._list: Optional[DList] = None

    @property
    def linked(self) -> bool:
        """True while the node is a member of some list."""
        return self._list is not None


class DList:
    """A doubly-linked list of :class:`DListNode` with O(1) removal.

    The head is the *least recently appended* element; :meth:`append` pushes
    to the tail.  Used as an LRU queue: head = eviction candidate.
    """

    __slots__ = ("_sentinel", "_size")

    def __init__(self) -> None:
        self._sentinel = DListNode()
        self._sentinel.prev = self._sentinel
        self._sentinel.next = self._sentinel
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def head(self) -> Optional[DListNode]:
        """The node at the front (next eviction candidate), or ``None``."""
        if self._size == 0:
            return None
        return self._sentinel.next

    @property
    def tail(self) -> Optional[DListNode]:
        """The node at the back (most recently appended), or ``None``."""
        if self._size == 0:
            return None
        return self._sentinel.prev

    def append(self, node: DListNode) -> None:
        """Insert ``node`` at the tail (most-recent end)."""
        if node._list is not None:
            raise ReproError("node is already linked into a list")
        sentinel = self._sentinel
        last = sentinel.prev
        node.prev = last
        node.next = sentinel
        last.next = node
        sentinel.prev = node
        node._list = self
        self._size += 1

    def appendleft(self, node: DListNode) -> None:
        """Insert ``node`` at the head (least-recent end)."""
        if node._list is not None:
            raise ReproError("node is already linked into a list")
        first = self._sentinel.next
        assert first is not None
        node.next = first
        node.prev = self._sentinel
        first.prev = node
        self._sentinel.next = node
        node._list = self
        self._size += 1

    def insert_after(self, anchor: DListNode, node: DListNode) -> None:
        """Insert ``node`` immediately after ``anchor`` (which must be linked here)."""
        if anchor._list is not self:
            raise ReproError("anchor does not belong to this list")
        if node._list is not None:
            raise ReproError("node is already linked into a list")
        nxt = anchor.next
        assert nxt is not None
        node.prev = anchor
        node.next = nxt
        anchor.next = node
        nxt.prev = node
        node._list = self
        self._size += 1

    def remove(self, node: DListNode) -> None:
        """Unlink ``node`` from this list in O(1)."""
        if node._list is not self:
            raise ReproError("node does not belong to this list")
        prev, nxt = node.prev, node.next
        prev.next = nxt
        nxt.prev = prev
        node.prev = None
        node.next = None
        node._list = None
        self._size -= 1

    def popleft(self) -> DListNode:
        """Remove and return the head node."""
        if self._size == 0:
            raise ReproError("popleft from an empty DList")
        sentinel = self._sentinel
        node = sentinel.next
        nxt = node.next
        sentinel.next = nxt
        nxt.prev = sentinel
        node.prev = None
        node.next = None
        node._list = None
        self._size -= 1
        return node

    def pop(self) -> DListNode:
        """Remove and return the tail node."""
        node = self.tail
        if node is None:
            raise ReproError("pop from an empty DList")
        self.remove(node)
        return node

    def move_to_tail(self, node: DListNode) -> None:
        """Move an already-linked node to the tail (the LRU 'touch').

        This is the single hottest list operation (every cache hit in
        every LRU-family policy lands here), so the links are respliced
        directly rather than through a remove/append pair: no membership
        or size bookkeeping needs to change.
        """
        if node._list is not self:
            raise ReproError("node does not belong to this list")
        sentinel = self._sentinel
        if sentinel.prev is node:
            return
        prev, nxt = node.prev, node.next
        prev.next = nxt
        nxt.prev = prev
        last = sentinel.prev
        node.prev = last
        node.next = sentinel
        last.next = node
        sentinel.prev = node

    def successor(self, node: DListNode) -> Optional[DListNode]:
        """The node after ``node``, or ``None`` if it is the tail."""
        if node._list is not self:
            raise ReproError("node does not belong to this list")
        nxt = node.next
        return None if nxt is self._sentinel else nxt

    def clear(self) -> None:
        """Unlink every node."""
        while self._size:
            self.popleft()

    def __iter__(self) -> Iterator[DListNode]:
        node = self._sentinel.next
        while node is not self._sentinel:
            assert node is not None
            nxt = node.next  # allow removal of the yielded node mid-iteration
            yield node
            node = nxt
