"""Fibonacci heap with the addressable-heap interface.

The paper cites Fredman & Tarjan's Fibonacci heap as the textbook priority
queue a straightforward GDS implementation would use.  We provide it as a
third interchangeable backend (with :class:`~repro.structures.dary_heap.DaryHeap`
and :class:`~repro.structures.pairing_heap.PairingHeap`) for the heap
ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Generic, List, Optional, TypeVar

from repro.errors import ReproError

__all__ = ["FibEntry", "FibonacciHeap"]

T = TypeVar("T")


class _NegativeInfinity:
    """Compares below every other priority; used to implement delete()."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return True

    def __le__(self, other: Any) -> bool:
        return True

    def __gt__(self, other: Any) -> bool:
        return False

    def __ge__(self, other: Any) -> bool:
        return other is self

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover
        return "-inf"


_NEG_INF = _NegativeInfinity()


class FibEntry(Generic[T]):
    """Handle to a Fibonacci-heap node (circular doubly-linked root lists)."""

    __slots__ = ("priority", "item", "parent", "child", "left", "right",
                 "degree", "mark", "in_heap")

    def __init__(self, priority: Any, item: T) -> None:
        self.priority = priority
        self.item = item
        self.parent: Optional[FibEntry[T]] = None
        self.child: Optional[FibEntry[T]] = None
        self.left: FibEntry[T] = self
        self.right: FibEntry[T] = self
        self.degree = 0
        self.mark = False
        self.in_heap = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FibEntry(priority={self.priority!r}, item={self.item!r})"


class FibonacciHeap(Generic[T]):
    """Min Fibonacci heap: O(1) insert/decrease-key, O(log n) extract-min."""

    __slots__ = ("_min", "_size", "node_visits")

    def __init__(self) -> None:
        self._min: Optional[FibEntry[T]] = None
        self._size = 0
        self.node_visits = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, entry: FibEntry[T]) -> bool:
        return entry.in_heap

    def reset_visits(self) -> None:
        self.node_visits = 0

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def push(self, entry: FibEntry[T]) -> FibEntry[T]:
        if entry.in_heap:
            raise ReproError("entry is already in a heap")
        entry.parent = entry.child = None
        entry.left = entry.right = entry
        entry.degree = 0
        entry.mark = False
        entry.in_heap = True
        self._add_to_roots(entry)
        if self._min is None or entry.priority < self._min.priority:
            self._min = entry
        self._size += 1
        self.node_visits += 1
        return entry

    def peek(self) -> FibEntry[T]:
        if self._min is None:
            raise ReproError("peek on an empty heap")
        return self._min

    def peek_second(self) -> Optional[FibEntry[T]]:
        """Second-smallest entry: best among other roots and min's children."""
        if self._min is None or self._size < 2:
            return None
        best: Optional[FibEntry[T]] = None
        node = self._min.right
        while node is not self._min:
            self.node_visits += 1
            if best is None or node.priority < best.priority:
                best = node
            node = node.right
        child = self._min.child
        if child is not None:
            node = child
            while True:
                self.node_visits += 1
                if best is None or node.priority < best.priority:
                    best = node
                node = node.right
                if node is child:
                    break
        return best

    def pop(self) -> FibEntry[T]:
        if self._min is None:
            raise ReproError("pop from an empty heap")
        top = self._min
        # promote children to roots
        child = top.child
        if child is not None:
            node = child
            while True:
                nxt = node.right
                node.parent = None
                node.mark = False
                self._add_to_roots(node)
                self.node_visits += 1
                node = nxt
                if node is child:
                    break
            top.child = None
        self._remove_from_roots(top)
        if top.right is top:
            self._min = None
        else:
            self._min = top.right
            self._consolidate()
        top.left = top.right = top
        top.in_heap = False
        top.degree = 0
        self._size -= 1
        return top

    def remove(self, entry: FibEntry[T]) -> None:
        if not entry.in_heap:
            raise ReproError("entry is not in this heap")
        saved = entry.priority
        self._decrease(entry, _NEG_INF)
        popped = self.pop()
        assert popped is entry
        entry.priority = saved

    def update(self, entry: FibEntry[T], priority: Any) -> None:
        if not entry.in_heap:
            raise ReproError("entry is not in this heap")
        old = entry.priority
        if priority < old:
            self._decrease(entry, priority)
        elif old < priority:
            self.remove(entry)
            entry.priority = priority
            self.push(entry)
        else:
            entry.priority = priority

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _add_to_roots(self, entry: FibEntry[T]) -> None:
        if self._min is None:
            entry.left = entry.right = entry
        else:
            entry.right = self._min.right
            entry.left = self._min
            self._min.right.left = entry
            self._min.right = entry

    def _remove_from_roots(self, entry: FibEntry[T]) -> None:
        entry.left.right = entry.right
        entry.right.left = entry.left

    def _consolidate(self) -> None:
        # collect current roots
        roots: List[FibEntry[T]] = []
        assert self._min is not None
        node = self._min
        while True:
            roots.append(node)
            node = node.right
            if node is self._min:
                break
        degree_table: dict[int, FibEntry[T]] = {}
        for node in roots:
            self.node_visits += 1
            x = node
            d = x.degree
            while d in degree_table:
                y = degree_table.pop(d)
                if y.priority < x.priority:
                    x, y = y, x
                self._link(y, x)
                d = x.degree
            degree_table[d] = x
        # rebuild the root list and find the new minimum
        self._min = None
        for node in degree_table.values():
            node.left = node.right = node
            if self._min is None:
                self._min = node
            else:
                self._add_to_roots(node)
                if node.priority < self._min.priority:
                    self._min = node

    def _link(self, child: FibEntry[T], parent: FibEntry[T]) -> None:
        """Make ``child`` (a root) a child of ``parent`` (a root)."""
        self._remove_from_roots(child)
        child.parent = parent
        child.mark = False
        if parent.child is None:
            parent.child = child
            child.left = child.right = child
        else:
            child.right = parent.child.right
            child.left = parent.child
            parent.child.right.left = child
            parent.child.right = child
        parent.degree += 1
        self.node_visits += 1

    def _decrease(self, entry: FibEntry[T], priority: Any) -> None:
        entry.priority = priority
        parent = entry.parent
        if parent is not None and entry.priority < parent.priority:
            self._cut(entry, parent)
            self._cascading_cut(parent)
        assert self._min is not None
        if entry.priority < self._min.priority:
            self._min = entry

    def _cut(self, entry: FibEntry[T], parent: FibEntry[T]) -> None:
        # remove entry from parent's child list
        if entry.right is entry:
            parent.child = None
        else:
            entry.left.right = entry.right
            entry.right.left = entry.left
            if parent.child is entry:
                parent.child = entry.right
        parent.degree -= 1
        entry.parent = None
        entry.mark = False
        self._add_to_roots(entry)
        self.node_visits += 1

    def _cascading_cut(self, entry: FibEntry[T]) -> None:
        parent = entry.parent
        if parent is None:
            return
        if not entry.mark:
            entry.mark = True
        else:
            self._cut(entry, parent)
            self._cascading_cut(parent)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify heap order, parent pointers and size."""
        if self._min is None:
            if self._size != 0:
                raise ReproError("empty heap with nonzero size")
            return
        count = 0
        node = self._min
        roots = []
        while True:
            if node.parent is not None:
                raise ReproError("root with a parent pointer")
            if node.priority < self._min.priority:
                raise ReproError("min pointer is not minimal")
            roots.append(node)
            node = node.right
            if node is self._min:
                break
        stack = roots
        while stack:
            node = stack.pop()
            count += 1
            child = node.child
            if child is None:
                continue
            c = child
            degree = 0
            while True:
                degree += 1
                if c.parent is not node:
                    raise ReproError("child with wrong parent pointer")
                if c.priority < node.priority:
                    raise ReproError("fibonacci heap order violated")
                stack.append(c)
                c = c.right
                if c is child:
                    break
            if degree != node.degree:
                raise ReproError("degree field mismatch")
        if count != self._size:
            raise ReproError(f"size mismatch: counted {count}, stored {self._size}")
