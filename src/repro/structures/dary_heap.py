"""d-ary implicit min-heap with external handles and node-visit accounting.

The paper implements both GDS and CAMP on top of an *8-ary implicit heap*
(branching factor at most 8, array-backed) following Larkin, Sen and
Tarjan's empirical study of priority queues.  Figure 4 of the paper reports
the **number of heap nodes visited** by each algorithm; to regenerate that
figure, this heap counts every array slot it inspects or moves while
sifting.  GDS and CAMP use the identical structure, so their visit counts
are directly comparable.

Handles (:class:`HeapEntry`) let callers update or remove an element in
place — required by GDS (priority bump on every hit) and by CAMP (queue-head
priority changes).

Visit accounting is a *measurement* feature, and the counter increments sit
inside the sift loops — squarely on the production hot path.
:class:`FastDaryHeap` is the same heap with every increment deleted rather
than branched over (``node_visits`` stays 0), so turning stats off costs
literally nothing per operation.  :func:`repro.structures.make_heap` picks
the variant via ``count_visits``.
"""

from __future__ import annotations

from typing import Any, Generic, List, Optional, TypeVar

from repro.errors import ReproError

__all__ = ["HeapEntry", "DaryHeap", "FastDaryHeap"]

T = TypeVar("T")


class HeapEntry(Generic[T]):
    """A handle to an element stored in a :class:`DaryHeap`.

    ``priority`` must be totally ordered (ints or tuples of ints here, so
    eviction order is exact — no float ties).  ``item`` is an arbitrary
    payload.  ``index`` is maintained by the heap; ``-1`` means detached.
    """

    __slots__ = ("priority", "item", "index")

    def __init__(self, priority: Any, item: T) -> None:
        self.priority = priority
        self.item = item
        self.index = -1

    @property
    def in_heap(self) -> bool:
        return self.index >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapEntry(priority={self.priority!r}, item={self.item!r})"


class DaryHeap(Generic[T]):
    """Array-backed min-heap with branching factor ``arity`` (default 8).

    Supports O(log_d n) push/pop/update/remove through handles, O(1) peek,
    and O(d) :meth:`peek_second` (the second-smallest element of a heap is
    always among the root's children).
    """

    __slots__ = ("_arity", "_data", "node_visits")

    def __init__(self, arity: int = 8) -> None:
        if arity < 2:
            raise ReproError(f"heap arity must be >= 2, got {arity}")
        self._arity = arity
        self._data: List[HeapEntry[T]] = []
        #: cumulative count of heap-array slots inspected or moved; the
        #: quantity plotted in Figure 4 of the paper.
        self.node_visits = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return self._arity

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def __contains__(self, entry: HeapEntry[T]) -> bool:
        i = entry.index
        return 0 <= i < len(self._data) and self._data[i] is entry

    def reset_visits(self) -> None:
        """Zero the node-visit counter (start of a measured run)."""
        self.node_visits = 0

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def push(self, entry: HeapEntry[T]) -> HeapEntry[T]:
        """Insert a detached entry; returns it for chaining."""
        if entry.in_heap:
            raise ReproError("entry is already in a heap")
        entry.index = len(self._data)
        self._data.append(entry)
        self.node_visits += 1
        self._sift_up(entry.index)
        return entry

    def peek(self) -> HeapEntry[T]:
        """The minimum entry without removing it."""
        if not self._data:
            raise ReproError("peek on an empty heap")
        return self._data[0]

    def peek_second(self) -> Optional[HeapEntry[T]]:
        """The second-smallest entry, or ``None`` if fewer than two elements.

        GDS needs ``min H(q) over q in M \\ {p}`` when ``p`` happens to be
        the heap minimum; that value is the priority of the best root child.
        """
        n = len(self._data)
        if n < 2:
            return None
        first = 1
        last = min(n, self._arity + 1)
        best = self._data[first]
        self.node_visits += 1
        for i in range(first + 1, last):
            self.node_visits += 1
            if self._data[i].priority < best.priority:
                best = self._data[i]
        return best

    def pop(self) -> HeapEntry[T]:
        """Remove and return the minimum entry."""
        if not self._data:
            raise ReproError("pop from an empty heap")
        top = self._data[0]
        self._detach(0)
        return top

    def remove(self, entry: HeapEntry[T]) -> None:
        """Remove an arbitrary entry through its handle."""
        if entry not in self:
            raise ReproError("entry is not in this heap")
        self._detach(entry.index)

    def update(self, entry: HeapEntry[T], priority: Any) -> None:
        """Change ``entry``'s priority and restore heap order."""
        if entry not in self:
            raise ReproError("entry is not in this heap")
        old = entry.priority
        entry.priority = priority
        self.node_visits += 1
        if priority < old:
            self._sift_up(entry.index)
        elif old < priority:
            self._sift_down(entry.index)

    def replace_min(self, priority: Any) -> None:
        """Raise the root's priority in place (no handle lookup).

        CAMP's eviction path always re-keys the queue it just popped the
        victim from — which is by definition the heap minimum — so the
        handle checks of :meth:`update` are provably redundant there.
        ``priority`` must be >= the current root priority.
        """
        if not self._data:
            raise ReproError("replace_min on an empty heap")
        self._data[0].priority = priority
        self.node_visits += 1
        self._sift_down(0)

    def reprioritize(self, entry: HeapEntry[T], priority: Any) -> None:
        """:meth:`update` minus the membership check, for callers whose
        handle discipline guarantees the entry is in this heap (CAMP's
        queue handles).  Semantics and visit accounting are identical."""
        old = entry.priority
        entry.priority = priority
        self.node_visits += 1
        if priority < old:
            self._sift_up(entry.index)
        elif old < priority:
            self._sift_down(entry.index)

    def clear(self) -> None:
        for entry in self._data:
            entry.index = -1
        self._data.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _detach(self, index: int) -> None:
        data = self._data
        victim = data[index]
        last = data.pop()
        self.node_visits += 1
        victim.index = -1
        if last is victim:
            return
        data[index] = last
        last.index = index
        # restore order in whichever direction is needed
        if index > 0 and last.priority < data[(index - 1) // self._arity].priority:
            self._sift_up(index)
        else:
            self._sift_down(index)

    def _sift_up(self, index: int) -> None:
        data = self._data
        entry = data[index]
        d = self._arity
        while index > 0:
            parent = (index - 1) // d
            self.node_visits += 1
            if data[parent].priority <= entry.priority:
                break
            data[index] = data[parent]
            data[index].index = index
            index = parent
        data[index] = entry
        entry.index = index

    def _sift_down(self, index: int) -> None:
        data = self._data
        entry = data[index]
        d = self._arity
        n = len(data)
        while True:
            first_child = index * d + 1
            if first_child >= n:
                break
            last_child = min(first_child + d, n)
            best = first_child
            self.node_visits += 1
            for c in range(first_child + 1, last_child):
                self.node_visits += 1
                if data[c].priority < data[best].priority:
                    best = c
            if data[best].priority < entry.priority:
                data[index] = data[best]
                data[index].index = index
                index = best
            else:
                break
        data[index] = entry
        entry.index = index

    # ------------------------------------------------------------------
    # validation (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise if the heap order or index map is corrupt."""
        d = self._arity
        for i, entry in enumerate(self._data):
            if entry.index != i:
                raise ReproError(f"index map corrupt at slot {i}")
            if i > 0:
                parent = (i - 1) // d
                if self._data[parent].priority > entry.priority:
                    raise ReproError(f"heap order violated at slot {i}")


class FastDaryHeap(DaryHeap):
    """:class:`DaryHeap` with visit accounting compiled out.

    Identical structure and ordering — only the ``node_visits`` increments
    are gone, so ``node_visits`` reads 0 forever.  This is what CAMP runs
    on when built with ``stats=False`` (the production configuration); the
    counting base class stays available for Figure 4 style measurements.
    """

    __slots__ = ()

    def push(self, entry: HeapEntry[T]) -> HeapEntry[T]:
        if entry.in_heap:
            raise ReproError("entry is already in a heap")
        entry.index = len(self._data)
        self._data.append(entry)
        self._sift_up(entry.index)
        return entry

    def peek_second(self) -> Optional[HeapEntry[T]]:
        data = self._data
        n = len(data)
        if n < 2:
            return None
        last = min(n, self._arity + 1)
        best = data[1]
        for i in range(2, last):
            if data[i].priority < best.priority:
                best = data[i]
        return best

    def update(self, entry: HeapEntry[T], priority: Any) -> None:
        if entry not in self:
            raise ReproError("entry is not in this heap")
        old = entry.priority
        entry.priority = priority
        if priority < old:
            self._sift_up(entry.index)
        elif old < priority:
            self._sift_down(entry.index)

    def replace_min(self, priority: Any) -> None:
        data = self._data
        if not data:
            raise ReproError("replace_min on an empty heap")
        data[0].priority = priority
        self._sift_down(0)

    def reprioritize(self, entry: HeapEntry[T], priority: Any) -> None:
        old = entry.priority
        entry.priority = priority
        if priority < old:
            self._sift_up(entry.index)
        elif old < priority:
            self._sift_down(entry.index)

    def _detach(self, index: int) -> None:
        data = self._data
        victim = data[index]
        last = data.pop()
        victim.index = -1
        if last is victim:
            return
        data[index] = last
        last.index = index
        if index > 0 and last.priority < data[(index - 1) // self._arity].priority:
            self._sift_up(index)
        else:
            self._sift_down(index)

    def _sift_up(self, index: int) -> None:
        data = self._data
        entry = data[index]
        priority = entry.priority
        d = self._arity
        while index > 0:
            parent = (index - 1) // d
            above = data[parent]
            if above.priority <= priority:
                break
            data[index] = above
            above.index = index
            index = parent
        data[index] = entry
        entry.index = index

    def _sift_down(self, index: int) -> None:
        data = self._data
        entry = data[index]
        priority = entry.priority
        d = self._arity
        n = len(data)
        while True:
            first_child = index * d + 1
            if first_child >= n:
                break
            last_child = min(first_child + d, n)
            best = data[first_child]
            best_index = first_child
            for c in range(first_child + 1, last_child):
                child = data[c]
                if child.priority < best.priority:
                    best = child
                    best_index = c
            if best.priority < priority:
                data[index] = best
                best.index = index
                index = best_index
            else:
                break
        data[index] = entry
        entry.index = index

