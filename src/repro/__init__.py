"""repro — a from-scratch reproduction of CAMP (Middleware 2014).

CAMP (Cost Adaptive Multi-queue eviction Policy) approximates Greedy Dual
Size with LRU-queue-per-rounded-ratio bookkeeping so that cache hits cost
O(1) and evictions touch a heap whose size is the number of distinct rounded
cost-to-size ratios rather than the number of resident items.

Public surface (see README for a guided tour):

* ``repro.core`` — CAMP, GDS and every baseline policy
* ``repro.cache`` — the KVS simulator and metrics
* ``repro.workloads`` — BG-like trace generation and trace IO
* ``repro.sim`` — trace-driven simulation and parameter sweeps
* ``repro.twemcache`` — slab-allocated key-value server (Section 4 study)
* ``repro.experiments`` — one entry per paper table/figure
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.errors import (
    AllocationError,
    CapacityError,
    ClusterError,
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
    ProtocolError,
    ReproError,
    TraceFormatError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "EvictionError",
    "DuplicateKeyError",
    "MissingKeyError",
    "TraceFormatError",
    "ProtocolError",
    "AllocationError",
    "ClusterError",
]
