"""``FaultPlan`` — a deterministic schedule of injectable faults.

Each :class:`Fault` names a *seam* (where in the stack it fires), a
*target* (which node/path/endpoint, substring-matched, ``"*"`` for
any), and a 0-based operation index ``at`` on that fault's own match
counter.  IO seams consume faults with :meth:`FaultPlan.take` — called
once per operation, it advances the counters and returns the faults
due *now* — while process-level drills read their scheduled events
with :meth:`FaultPlan.events_at`, keyed by an explicit step number.

Counters are per-fault, not global, so two faults aimed at different
targets never perturb each other's timing; the whole plan is
reproducible from its construction alone (the ``seed`` is carried for
schedule builders and client jitter, never consulted by ``take``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import ReproError

__all__ = ["Fault", "FaultError", "FaultPlan", "FILE_KINDS",
           "TRANSPORT_KINDS", "PROCESS_KINDS"]

#: file-seam kinds (consumed by :mod:`repro.faults.files`)
FILE_KINDS = ("enospc", "short_write", "torn_write")
#: transport-seam kinds (consumed by :mod:`repro.faults.transport`);
#: "refuse" applies to the connect seam, the rest to read/write
TRANSPORT_KINDS = ("refuse", "reset", "latency", "stall", "drop")
#: process-seam kinds (consumed by supervisor-level drills)
PROCESS_KINDS = ("sigkill", "sigstop", "sigcont", "restart")

_SEAMS = ("connect", "read", "write", "file", "process")


class FaultError(ReproError):
    """A fault plan is malformed."""


@dataclass(frozen=True, slots=True)
class Fault:
    """One scheduled fault.

    ``at`` is the 0-based index of the first matching operation the
    fault fires on (or, for the process seam, the schedule step it is
    due at); ``count`` extends it over that many consecutive matches.
    ``delay`` is seconds for latency/stall kinds; ``keep_bytes`` is
    how much of the buffer a short/torn write actually persists.
    """

    kind: str
    seam: str
    target: str = "*"
    at: int = 0
    count: int = 1
    delay: float = 0.0
    keep_bytes: int = 0

    def __post_init__(self) -> None:
        if self.seam not in _SEAMS:
            raise FaultError(
                f"unknown seam {self.seam!r}; expected one of {_SEAMS}")
        if self.at < 0 or self.count < 1:
            raise FaultError(
                f"fault needs at >= 0 and count >= 1, got "
                f"at={self.at} count={self.count}")

    def matches(self, target: str) -> bool:
        return self.target == "*" or self.target in target


@dataclass
class FaultPlan:
    """A reusable, thread-safe schedule of :class:`Fault` entries."""

    faults: Sequence[Fault] = ()
    seed: int = 0
    _seen: Dict[int, int] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def __post_init__(self) -> None:
        self.faults = tuple(self.faults)
        self.fired = 0

    # ------------------------------------------------------------------
    # IO seams: counter-driven consumption
    # ------------------------------------------------------------------
    def take(self, seam: str, target: str) -> List[Fault]:
        """Advance every matching fault's counter by one operation and
        return the faults due on *this* operation (usually 0 or 1)."""
        due: List[Fault] = []
        with self._lock:
            for index, fault in enumerate(self.faults):
                if fault.seam != seam or not fault.matches(target):
                    continue
                op = self._seen.get(index, 0)
                self._seen[index] = op + 1
                if fault.at <= op < fault.at + fault.count:
                    due.append(fault)
                    self.fired += 1
        return due

    def pending(self, seam: str) -> bool:
        """Whether any fault on ``seam`` has firings left (observability
        for tests: a drained plan means the schedule fully executed)."""
        with self._lock:
            for index, fault in enumerate(self.faults):
                if fault.seam != seam:
                    continue
                if self._seen.get(index, 0) < fault.at + fault.count:
                    return True
        return False

    # ------------------------------------------------------------------
    # process seam: step-driven consumption
    # ------------------------------------------------------------------
    def events_at(self, step: int) -> List[Fault]:
        """The process-seam faults scheduled for ``step`` (their ``at``
        is a schedule step, not an operation counter)."""
        return [fault for fault in self.faults
                if fault.seam == "process" and fault.at == step]

    def last_step(self) -> int:
        """The highest scheduled process step (-1 when none)."""
        steps = [fault.at for fault in self.faults
                 if fault.seam == "process"]
        return max(steps, default=-1)
