"""Transport-seam faults for the asyncio client and server.

Server side, :class:`FaultyTransport` wraps the real
``asyncio.Transport`` handed to a connection: every response ``write``
consults the plan and can be delayed (``latency``/``stall``), dropped
on the floor (``drop`` — the client sees a stall and times out), or
turned into a hard reset (``reset`` aborts the socket mid-reply).

Client side, :func:`apply_connect_faults` and :func:`apply_read_faults`
are awaited at :class:`~repro.twemcache.async_client.AsyncSocketClient`
dial and read points: ``refuse`` raises ``ConnectionRefusedError``
before any bytes move, ``latency``/``stall`` sleep (a stall longer
than the client timeout surfaces as ``TimeoutError`` upstream), and
``reset`` raises ``ConnectionResetError`` as if the peer vanished.
"""

from __future__ import annotations

import asyncio
import errno
from typing import Optional

from repro.faults.plan import FaultPlan

__all__ = ["FaultyTransport", "apply_connect_faults", "apply_read_faults"]


class FaultyTransport:
    """Wrap a server-side transport; faults fire on response writes."""

    def __init__(self, transport: asyncio.Transport, plan: FaultPlan,
                 target: str) -> None:
        self._transport = transport
        self._plan = plan
        self._target = target

    def write(self, data: bytes) -> None:
        for fault in self._plan.take("write", self._target):
            if fault.kind == "drop":
                return
            if fault.kind == "reset":
                self._transport.abort()
                return
            if fault.kind in ("latency", "stall"):
                loop = asyncio.get_event_loop()
                loop.call_later(fault.delay, self._write_later, data)
                return
        self._transport.write(data)

    def _write_later(self, data: bytes) -> None:
        if not self._transport.is_closing():
            self._transport.write(data)

    def __getattr__(self, name: str):
        return getattr(self._transport, name)


async def apply_connect_faults(plan: Optional[FaultPlan],
                               target: str) -> None:
    """Run the connect-seam faults due for this dial (client side)."""
    if plan is None:
        return
    for fault in plan.take("connect", target):
        if fault.kind == "refuse":
            raise ConnectionRefusedError(
                errno.ECONNREFUSED, f"injected refusal dialing {target}")
        if fault.kind in ("latency", "stall"):
            await asyncio.sleep(fault.delay)


async def apply_read_faults(plan: Optional[FaultPlan],
                            target: str) -> None:
    """Run the read-seam faults due before this read (client side)."""
    if plan is None:
        return
    for fault in plan.take("read", target):
        if fault.kind == "reset":
            raise ConnectionResetError(
                errno.ECONNRESET, f"injected reset reading {target}")
        if fault.kind in ("latency", "stall"):
            await asyncio.sleep(fault.delay)
