"""The file-op shim: disk faults for persistence and the disk tier.

:func:`fault_open` is a drop-in for ``open`` on the append/publish
paths (AOL handle, snapshot temp file, disk-tier segments).  Writable
binary handles come back wrapped in :class:`FaultyFile`, whose
``write`` consults the *currently injected* plans — injection can
happen after the handle was opened, which is how tests arrange "the
log is healthy, then the disk fills".  With no plan injected the
wrapper is a single list check per write.

File-seam kinds:

* ``enospc``      — the write persists nothing and raises ``ENOSPC``.
* ``short_write`` — ``keep_bytes`` of the buffer land on disk, then
  ``ENOSPC`` — the classic partially-applied append.
* ``torn_write``  — ``keep_bytes`` land, then ``EIO`` — a power cut
  mid-frame; the torn prefix stays behind for recovery to truncate.

Read-only and text-mode handles pass through unwrapped: faults model
the mutation path, and recovery reads must see the disk as it is.
"""

from __future__ import annotations

import builtins
import errno
import os
import threading
from contextlib import contextmanager
from typing import IO, Iterator, List, Union

from repro.faults.plan import Fault, FaultPlan

__all__ = ["fault_open", "inject", "active_plans", "FaultyFile"]

_PLANS: List[FaultPlan] = []
_PLANS_LOCK = threading.Lock()


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for every :class:`FaultyFile` write issued
    inside the block (process-wide; plans nest)."""
    with _PLANS_LOCK:
        _PLANS.append(plan)
    try:
        yield plan
    finally:
        with _PLANS_LOCK:
            _PLANS.remove(plan)


def active_plans() -> List[FaultPlan]:
    with _PLANS_LOCK:
        return list(_PLANS)


class FaultyFile:
    """A binary write handle that consults the injected fault plans."""

    def __init__(self, handle: IO[bytes], target: str) -> None:
        self._handle = handle
        self._target = target

    def write(self, data: bytes) -> int:
        if _PLANS:
            for plan in active_plans():
                for fault in plan.take("file", self._target):
                    self._apply(fault, data)
        return self._handle.write(data)

    def _apply(self, fault: Fault, data: bytes) -> None:
        keep = max(0, min(fault.keep_bytes, len(data)))
        if fault.kind == "enospc":
            raise OSError(errno.ENOSPC,
                          f"injected ENOSPC on {self._target}")
        if fault.kind == "short_write":
            if keep:
                self._handle.write(data[:keep])
                self._handle.flush()
            raise OSError(errno.ENOSPC,
                          f"injected short write ({keep}/{len(data)} "
                          f"bytes) on {self._target}")
        if fault.kind == "torn_write":
            if keep:
                self._handle.write(data[:keep])
                self._handle.flush()
            raise OSError(errno.EIO,
                          f"injected torn write ({keep}/{len(data)} "
                          f"bytes) on {self._target}")
        raise OSError(errno.EIO,
                      f"injected {fault.kind} on {self._target}")

    # everything else passes through to the real handle
    def __getattr__(self, name: str):
        return getattr(self._handle, name)

    def __enter__(self) -> "FaultyFile":
        self._handle.__enter__()
        return self

    def __exit__(self, *exc: object):
        return self._handle.__exit__(*exc)

    def __iter__(self):
        return iter(self._handle)


def fault_open(path: Union[str, os.PathLike], mode: str = "rb",
               **kwargs) -> IO[bytes]:
    """``open`` that routes writable binary handles through the shim."""
    handle = builtins.open(path, mode, **kwargs)
    if "b" not in mode or not any(flag in mode for flag in "wax+"):
        return handle
    return FaultyFile(handle, str(path))
