"""``repro.faults`` — the seeded, deterministic fault-injection plane.

A :class:`FaultPlan` is a declarative schedule of faults; the plane
delivers them at three seams, so every failure mode the cluster tier
claims to survive is reproducible from a seed instead of hoped-for:

* **transport** (:mod:`repro.faults.transport`) — connection refusal,
  resets, added latency, and read/write stalls, injected into
  :class:`~repro.twemcache.async_client.AsyncSocketClient` dials/reads
  and (via a wrapping transport) into
  :class:`~repro.twemcache.async_server.AsyncTwemcacheServer` writes.
* **files** (:mod:`repro.faults.files`) — ENOSPC, short writes, and
  torn mid-frame writes on the persistence paths (snapshot temp files,
  the append-only log, disk-tier segments).
* **process** — SIGSTOP/SIGCONT/SIGKILL/restart events consumed by
  :class:`~repro.cluster.supervisor.ClusterSupervisor` drills (the
  ``cluster-chaos`` experiment walks a fleet through them).

Everything is deterministic: each fault carries a 0-based operation
index on its own (seam, target) counter, so "the 3rd append to the AOL
fails with ENOSPC" means exactly that, run after run.
"""

from repro.faults.plan import Fault, FaultError, FaultPlan
from repro.faults.files import fault_open, inject
from repro.faults.transport import FaultyTransport, apply_connect_faults

__all__ = ["Fault", "FaultError", "FaultPlan", "fault_open", "inject",
           "FaultyTransport", "apply_connect_faults"]
