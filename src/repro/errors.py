"""Exception hierarchy for the CAMP reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class CapacityError(ReproError):
    """An operation could not be satisfied within the configured capacity."""


class EvictionError(ReproError):
    """An eviction was requested but no victim could be produced."""


class DuplicateKeyError(ReproError):
    """A key was inserted into a policy or store that already tracks it."""


class MissingKeyError(ReproError, KeyError):
    """A key expected to be resident was not found."""


class TraceFormatError(ReproError):
    """A trace file contained a malformed record."""


class ProtocolError(ReproError):
    """A malformed message was seen on the wire protocol."""


class AllocationError(CapacityError):
    """The allocator could not satisfy a memory request."""


class ClusterError(ReproError):
    """A cooperative-cluster operation failed."""
