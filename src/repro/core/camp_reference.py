"""The seed (pre-optimization) CAMP implementation, frozen as a reference.

PR 5 rewrote :class:`repro.core.camp.CampPolicy`'s hot path (inlined queue
moves, inlined ratio arithmetic, optional stats accounting).  This module is
a verbatim copy of the implementation *before* that rewrite.  It exists so
the optimized policy can be pinned decision-for-decision against a known
good baseline:

* ``tests/test_hotpath_equivalence.py`` property-tests that optimized CAMP
  (stats accounting on and off) makes byte-identical eviction decisions on
  random traces;
* ``benchmarks/test_hotpath.py`` replays the primary figure trace through
  both and asserts identical eviction sequences while measuring speedup.

Do not optimize or otherwise modify this file: its value is that it stays
behind while ``camp.py`` moves.
"""


from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.core.rounding import RatioConverter, round_to_precision
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)
from repro.structures import DList, DListNode, make_heap

__all__ = ["ReferenceCampPolicy"]

Number = Union[int, float]


class _CampEntry(DListNode):
    """A resident pair: a linked-list node carrying CAMP bookkeeping."""

    __slots__ = ("item", "h", "seq", "ratio_key")

    def __init__(self, item: CacheItem, h: int, seq: int, ratio_key: int) -> None:
        super().__init__()
        self.item = item
        self.h = h          # H value fixed at the last request
        self.seq = seq      # global sequence number of the last request
        self.ratio_key = ratio_key  # rounded integer ratio = queue id


class _CampQueue:
    """One LRU queue per distinct rounded cost-to-size ratio."""

    __slots__ = ("ratio_key", "items", "handle")

    def __init__(self, ratio_key: int) -> None:
        self.ratio_key = ratio_key
        self.items = DList()
        self.handle = None  # heap handle; set right after creation

    def head_priority(self) -> Tuple[int, int]:
        head = self.items.head
        assert head is not None
        return (head.h, head.seq)


class ReferenceCampPolicy(EvictionPolicy):
    """Cost Adaptive Multi-queue eviction Policy."""

    name = "camp"  # same registry name: state files interchange with CampPolicy

    def __init__(self,
                 precision: Optional[int] = 5,
                 heap_kind: str = "dary",
                 arity: int = 8,
                 reround_on_hit: bool = True,
                 converter: Optional[RatioConverter] = None) -> None:
        """``precision`` counts significant bits kept (paper default 5);
        ``None`` disables rounding (the ∞/GDS-equivalent configuration).

        ``reround_on_hit`` applies the paper's "the new value is used for
        all future rounding": a hit recomputes the rounded ratio with the
        current multiplier, possibly migrating the pair to another queue.
        """
        if precision is not None and precision < 1:
            raise ConfigurationError(
                f"precision must be >= 1 or None, got {precision}")
        self._precision = precision
        self._heap = make_heap(heap_kind, arity=arity)
        self._entry_factory = type(self._heap).entry_type
        self._entries: Dict[str, _CampEntry] = {}
        self._queues: Dict[int, _CampQueue] = {}
        self._reround_on_hit = reround_on_hit
        self._converter = converter if converter is not None else RatioConverter()
        self._L = 0
        self._seq = 0
        self._heap_updates = 0
        self._queues_created = 0
        self._max_queues = 0

    # ------------------------------------------------------------------
    # rounded ratio
    # ------------------------------------------------------------------
    def _rounded_ratio(self, item: CacheItem) -> int:
        return round_to_precision(
            self._converter.to_integer(item.cost, item.size), self._precision)

    # ------------------------------------------------------------------
    # queue / heap plumbing
    # ------------------------------------------------------------------
    def _append_to_queue(self, entry: _CampEntry) -> None:
        """Append entry at the tail of its queue, creating it if needed."""
        queue = self._queues.get(entry.ratio_key)
        if queue is None:
            queue = _CampQueue(entry.ratio_key)
            self._queues[entry.ratio_key] = queue
            queue.items.append(entry)
            queue.handle = self._entry_factory(queue.head_priority(), queue)
            self._heap.push(queue.handle)
            self._heap_updates += 1
            self._queues_created += 1
            if len(self._queues) > self._max_queues:
                self._max_queues = len(self._queues)
        else:
            # tail append never changes the head, so the heap is untouched —
            # this is the O(1) hit/insert path the paper's Figure 3 shows.
            queue.items.append(entry)

    def _detach_from_queue(self, entry: _CampEntry) -> None:
        """Remove entry from its queue, fixing the heap if the head changed."""
        queue = self._queues[entry.ratio_key]
        was_head = queue.items.head is entry
        queue.items.remove(entry)
        if not queue.items:
            self._heap.remove(queue.handle)
            self._heap_updates += 1
            del self._queues[entry.ratio_key]
        elif was_head:
            self._heap.update(queue.handle, queue.head_priority())
            self._heap_updates += 1

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def on_hit(self, key: str) -> None:
        entry = self._entries.get(key)
        if entry is None:
            raise MissingKeyError(key)
        self._seq += 1
        # Algorithm 1 line 2: L advances to the smallest H among all
        # resident pairs — the minimum queue head, an O(1) heap peek.
        # (The pseudocode prints min over M \ {p}; that reading breaks the
        # competitive bound — see repro.core.gds and the competitive-ratio
        # tests — while the Proposition-1 proof describes the global min.)
        self._L = self._heap.peek().priority[0]
        self._converter.observe(entry.item.size)
        if self._reround_on_hit:
            new_key = self._rounded_ratio(entry.item)
        else:
            new_key = entry.ratio_key
        h = self._L + new_key
        if new_key == entry.ratio_key:
            queue = self._queues[entry.ratio_key]
            was_head = queue.items.head is entry
            queue.items.move_to_tail(entry)
            entry.h = h
            entry.seq = self._seq
            if was_head:
                # the head changed (or the singleton's priority did)
                self._heap.update(queue.handle, queue.head_priority())
                self._heap_updates += 1
        else:
            # the adaptive multiplier grew: the pair migrates queues
            self._detach_from_queue(entry)
            entry.ratio_key = new_key
            entry.h = h
            entry.seq = self._seq
            self._append_to_queue(entry)

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        if key in self._entries:
            raise DuplicateKeyError(key)
        self._seq += 1
        item = CacheItem(key, size, cost)
        self._converter.observe(size)
        ratio_key = self._rounded_ratio(item)
        entry = _CampEntry(item, self._L + ratio_key, self._seq, ratio_key)
        self._entries[key] = entry
        self._append_to_queue(entry)

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._heap:
            raise EvictionError("CAMP has nothing to evict")
        # line 5: the victim is the head of the minimum-priority queue
        queue: _CampQueue = self._heap.peek().item
        entry = queue.items.popleft()
        del self._entries[entry.item.key]
        if queue.items:
            self._heap.update(queue.handle, queue.head_priority())
            self._heap_updates += 1
        else:
            self._heap.remove(queue.handle)
            self._heap_updates += 1
            del self._queues[queue.ratio_key]
        # line 6: L becomes the victim's H (the minimum evaluated while the
        # victim still counts as resident) — matching GDS; the survivors-
        # only reading violates Proposition 3, see
        # tests/test_competitive_ratio.py.
        self._L = entry.h
        return entry.item.key

    def on_remove(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            raise MissingKeyError(key)
        self._detach_from_queue(entry)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def precision(self) -> Optional[int]:
        return self._precision

    @property
    def inflation(self) -> int:
        """The global offset L."""
        return self._L

    @property
    def converter(self) -> RatioConverter:
        return self._converter

    @property
    def queue_count(self) -> int:
        """Number of non-empty LRU queues (the y-axis of Figure 5b)."""
        return len(self._queues)

    def queue_lengths(self) -> Dict[int, int]:
        """Mapping rounded-ratio -> queue length (diagnostics)."""
        return {k: len(q.items) for k, q in self._queues.items()}

    def iter_queue(self, ratio_key: int) -> Iterator[_CampEntry]:
        """Yield entries of one queue head-to-tail (used by invariant tests)."""
        queue = self._queues.get(ratio_key)
        if queue is None:
            return iter(())
        return iter(queue.items)  # type: ignore[return-value]

    def priority_of(self, key: str) -> int:
        """H(key) for a resident key."""
        entry = self._entries.get(key)
        if entry is None:
            raise MissingKeyError(key)
        return entry.h

    def peek_min_priority(self) -> Optional[Tuple[int, int]]:
        """(H, seq) of the current eviction candidate, or None when empty."""
        if not self._heap:
            return None
        return self._heap.peek().priority

    # ------------------------------------------------------------------
    # durable state (snapshot/restore hooks)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Everything a restored CAMP needs to evict identically: the
        queues (head-to-tail, preserving LRU order), each member's fixed
        H and touch sequence, the global clocks L/seq, and the adaptive
        multiplier.  Queue ids (rounded ratios) ride along so migration
        history survives even when the current multiplier would round a
        member into a different queue today."""
        queues = [
            [ratio_key, [[e.item.key, e.item.size, e.item.cost, e.h, e.seq]
                         for e in queue.items]]
            for ratio_key, queue in self._queues.items()
        ]
        return {
            "policy": self.name,
            "precision": self._precision,
            "reround_on_hit": self._reround_on_hit,
            "L": self._L,
            "seq": self._seq,
            "multiplier": self._converter.multiplier,
            "queues": queues,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        self._check_importable(state)
        self._precision = state["precision"]
        self._reround_on_hit = bool(state["reround_on_hit"])
        self._L = state["L"]
        self._seq = state["seq"]
        self._converter.observe(int(state["multiplier"]))
        for ratio_key, members in state["queues"]:
            for key, size, cost, h, seq in members:
                if key in self._entries:
                    raise ConfigurationError(
                        f"snapshot lists {key!r} in two queues")
                entry = _CampEntry(CacheItem(key, size, cost), h, seq,
                                  ratio_key)
                self._entries[key] = entry
                self._append_to_queue(entry)

    def stats(self) -> Dict[str, Union[int, float]]:
        return {
            "heap_node_visits": self._heap.node_visits,
            "heap_updates": self._heap_updates,
            "heap_size": len(self._heap),
            "queue_count": len(self._queues),
            "queues_created": self._queues_created,
            "max_queues": self._max_queues,
            "inflation": float(self._L),
            "multiplier": self._converter.multiplier,
        }

    def reset_stats(self) -> None:
        self._heap.reset_visits()
        self._heap_updates = 0
        self._queues_created = 0
        self._max_queues = len(self._queues)

    def check_invariants(self) -> None:
        """Verify CAMP's structural invariants (test hook).

        Within every queue, H and seq must be non-decreasing head-to-tail
        and every member's ratio_key must equal the queue key; the heap must
        carry exactly the non-empty queues keyed by their heads.
        """
        assert len(self._heap) == len(self._queues)
        total = 0
        for ratio_key, queue in self._queues.items():
            assert queue.items, "empty queue retained"
            assert queue.handle.priority == queue.head_priority()
            prev_h = prev_seq = None
            for node in queue.items:
                total += 1
                assert node.ratio_key == ratio_key
                if prev_h is not None:
                    assert node.h >= prev_h, "queue not ordered by H"
                    assert node.seq > prev_seq, "queue not ordered by seq"
                prev_h, prev_seq = node.h, node.seq
        assert total == len(self._entries)
