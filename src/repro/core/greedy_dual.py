"""Greedy Dual (Young 1991) — varying cost, uniform size.

The ancestor of GDS: ``H(p) = L + cost(p)`` with no size term.  The paper
describes GDS as the extension of this algorithm to variable sizes; we keep
the original as a baseline for the equi-sized trace of section 3.2, where
Greedy Dual and GDS coincide.
"""

from __future__ import annotations

from repro.core.gds import GdsPolicy
from repro.core.policy import CacheItem
from typing import Union

__all__ = ["GreedyDualPolicy"]


class GreedyDualPolicy(GdsPolicy):
    """GDS with the size term fixed at 1 (cost-only priorities)."""

    name = "greedy-dual"

    def _ratio(self, item: CacheItem) -> Union[int, float]:
        if self._integerize:
            # sizes are ignored: convert the bare cost
            return self._converter.to_integer(item.cost, 1)
        return item.cost
