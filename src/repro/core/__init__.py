"""Eviction policies: CAMP, GDS and every baseline the paper evaluates.

The registry (:func:`~repro.core.policy.make_policy`) builds policies by
name with the store capacity, which several baselines need for budgets:

>>> from repro.core import make_policy
>>> camp = make_policy("camp", capacity=1 << 20, precision=5)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.admission import (
    AdmissionController,
    AlwaysAdmit,
    ProbabilisticAdmission,
    SecondHitAdmission,
    TinyLfuAdmission,
)
from repro.core.arc import ArcPolicy
from repro.core.camp import CampPolicy
from repro.core.concurrent import ShardedCampPolicy, ThreadSafePolicy
from repro.core.fifo import FifoPolicy
from repro.core.gd_wheel import GdWheelPolicy
from repro.core.gds import GdsPolicy
from repro.core.gdsf import GdsfPolicy
from repro.core.greedy_dual import GreedyDualPolicy
from repro.core.lfu import LfuPolicy
from repro.core.lru import LruPolicy
from repro.core.lru_k import LruKPolicy
from repro.core.opt import BeladyPolicy, OfflineGreedyPolicy, next_use_schedule
from repro.core.policy import (
    CacheItem,
    EvictionPolicy,
    make_policy,
    policy_names,
    register_policy,
)
from repro.core.pooled_lru import (
    PooledLruPolicy,
    PoolSpec,
    cost_proportional_fractions,
    pools_from_cost_ranges,
    pools_from_cost_values,
)
from repro.core.rounding import (
    RatioConverter,
    distinct_value_bound,
    epsilon_for_precision,
    precision_for_epsilon,
    regular_rounding,
    round_to_precision,
)
from repro.core.random_policy import RandomPolicy
from repro.core.slru import SlruPolicy
from repro.core.two_q import TwoQPolicy

__all__ = [
    "CacheItem",
    "EvictionPolicy",
    "register_policy",
    "make_policy",
    "policy_names",
    "CampPolicy",
    "GdsPolicy",
    "GreedyDualPolicy",
    "GdsfPolicy",
    "GdWheelPolicy",
    "LruPolicy",
    "FifoPolicy",
    "LfuPolicy",
    "LruKPolicy",
    "TwoQPolicy",
    "ArcPolicy",
    "PooledLruPolicy",
    "PoolSpec",
    "pools_from_cost_values",
    "pools_from_cost_ranges",
    "cost_proportional_fractions",
    "SlruPolicy",
    "RandomPolicy",
    "BeladyPolicy",
    "OfflineGreedyPolicy",
    "next_use_schedule",
    "ThreadSafePolicy",
    "ShardedCampPolicy",
    "AdmissionController",
    "AlwaysAdmit",
    "ProbabilisticAdmission",
    "SecondHitAdmission",
    "TinyLfuAdmission",
    "RatioConverter",
    "round_to_precision",
    "regular_rounding",
    "epsilon_for_precision",
    "precision_for_epsilon",
    "distinct_value_bound",
]


# ----------------------------------------------------------------------
# registry population — factories take (capacity, **kwargs)
# ----------------------------------------------------------------------
def _default_pools(capacity: int,
                   pools: Optional[Sequence[PoolSpec]] = None,
                   **kwargs: object) -> PooledLruPolicy:
    if pools is None:
        # the paper's section 3.2 default: ranges [1,100), [100,10K),
        # [10K,∞) with budgets proportional to each range's lowest cost
        pools = pools_from_cost_ranges(
            [(0, 100), (100, 10_000), (10_000, float("inf"))])
    return PooledLruPolicy(capacity, pools)


register_policy("camp", lambda capacity, **kw: CampPolicy(**kw))
register_policy("gds", lambda capacity, **kw: GdsPolicy(**kw))
register_policy("greedy-dual", lambda capacity, **kw: GreedyDualPolicy(**kw))
register_policy("gdsf", lambda capacity, **kw: GdsfPolicy(**kw))
register_policy("gd-wheel", lambda capacity, **kw: GdWheelPolicy(**kw))
register_policy("lru", lambda capacity, **kw: LruPolicy(**kw))
register_policy("fifo", lambda capacity, **kw: FifoPolicy(**kw))
register_policy("lfu", lambda capacity, **kw: LfuPolicy(**kw))
register_policy("lru-k", lambda capacity, **kw: LruKPolicy(**kw))
register_policy("2q", lambda capacity, **kw: TwoQPolicy(capacity, **kw))
register_policy("arc", lambda capacity, **kw: ArcPolicy(capacity, **kw))
register_policy("pooled-lru", _default_pools)
register_policy("camp-sharded", lambda capacity, **kw: ShardedCampPolicy(**kw))
register_policy("slru", lambda capacity, **kw: SlruPolicy(capacity, **kw))
register_policy("random", lambda capacity, **kw: RandomPolicy(**kw))
# Belady / offline-greedy need the whole trace in advance, so they are not
# registered; build them with BeladyPolicy.from_trace(trace).
