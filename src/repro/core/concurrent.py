"""Vertical-scaling extensions from the paper's section 4.1.

The paper argues CAMP scales on multi-cores because (1) the shared heap is
touched only when a queue head changes, (2) distinct LRU queues can be
updated concurrently, and (3) each logical LRU queue "may be represented as
multiple physical queues" with keys hash-partitioned across them.

Two building blocks reproduce that story in Python:

* :class:`ThreadSafePolicy` — wraps any policy with one mutex so a
  multi-threaded server (see ``repro.twemcache.server``) can share it.
  The mutex is a plain (non-reentrant) ``threading.Lock``: no hot-path
  caller is re-entrant — the store drives the policy one event at a time,
  and batch paths go through :meth:`ThreadSafePolicy.bulk`, which takes
  the lock *once* and hands out the unwrapped inner policy.  A plain lock
  acquires measurably faster than the seed's ``RLock`` (no owner/count
  bookkeeping), which is exactly the per-request tax this wrapper exists
  to minimize.
* :class:`ShardedCampPolicy` — hash-partitions keys across ``shards``
  independent CAMP instances, each guarded by its own plain lock (lock
  striping, as in memcached's per-bucket locks), sharing one
  :class:`~repro.core.rounding.RatioConverter` so ratios stay comparable.
  Victim selection takes the globally minimal queue head across shards.
  Each shard maintains its own inflation offset ``L``; offsets stay within
  one another's reach because every shard sees a similar key sample — the
  deviation from single-instance CAMP is bounded by inter-shard skew and is
  measured (not assumed) in the concurrency ablation benchmark.

The sharded policy advertises ``concurrent_safe = True``:
:class:`~repro.cache.store.StoreConfig` (and any other wiring layer)
must *not* wrap it in a :class:`ThreadSafePolicy`, because a global lock
on top of per-shard locks re-serializes every request and makes shards
strictly slower than one instance — the regression the seed's sharding
ablation measured.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.camp import CampPolicy
from repro.core.policy import CacheItem, EvictionPolicy
from repro.core.rounding import RatioConverter
from repro.errors import ConfigurationError, EvictionError

__all__ = ["ThreadSafePolicy", "ShardedCampPolicy"]

Number = Union[int, float]


class ThreadSafePolicy(EvictionPolicy):
    """Serializes all access to an inner policy with one plain lock."""

    name = "thread-safe"

    def __init__(self, inner: EvictionPolicy) -> None:
        self._inner = inner
        self._lock = threading.Lock()

    @property
    def inner(self) -> EvictionPolicy:
        return self._inner

    def on_hit(self, key: str) -> None:
        with self._lock:
            self._inner.on_hit(key)

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        with self._lock:
            self._inner.on_insert(key, size, cost)

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        with self._lock:
            return self._inner.pop_victim(incoming)

    def on_remove(self, key: str) -> None:
        with self._lock:
            self._inner.on_remove(key)

    @contextmanager
    def bulk(self) -> Iterator[EvictionPolicy]:
        """Hold the lock once and hand out the inner policy for a batch.

        This is the throughput lever behind ``Store.get_many``/
        ``put_many``: one acquisition amortized over the whole batch
        instead of one per policy event.  It is also where re-entrant
        call patterns belong — the inner policy is driven lock-free
        inside the context, so nothing ever acquires the (plain,
        non-reentrant) lock twice.
        """
        with self._lock:
            yield self._inner

    def wants_eviction(self, incoming: CacheItem, free_bytes: int) -> bool:
        with self._lock:
            return self._inner.wants_eviction(incoming, free_bytes)

    def fits(self, incoming: CacheItem, capacity: int) -> bool:
        with self._lock:
            return self._inner.fits(incoming, capacity)

    def stats(self) -> Dict[str, Union[int, float]]:
        with self._lock:
            return self._inner.stats()

    def reset_stats(self) -> None:
        with self._lock:
            self._inner.reset_stats()

    def export_state(self) -> Dict[str, object]:
        """Snapshot the inner policy's state (its kind, not the wrapper's,
        names the dict — a thread-safe CAMP restores into bare CAMP and
        vice versa)."""
        with self._lock:
            return self._inner.export_state()

    def import_state(self, state: Dict[str, object]) -> None:
        with self._lock:
            self._inner.import_state(state)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._inner

    def __len__(self) -> int:
        with self._lock:
            return len(self._inner)


class ShardedCampPolicy(EvictionPolicy):
    """CAMP hash-partitioned over independent shards (section 4.1, point 3).

    Each shard is a :class:`CampPolicy` under its own plain lock; a
    request touches exactly one (lock, shard) pair, found with one hash
    and one list index.  Power-of-two shard counts route with a bit mask.
    """

    name = "camp-sharded"

    #: internally synchronized — wiring layers must not add a global lock
    concurrent_safe = True

    def __init__(self,
                 shards: int = 4,
                 precision: Optional[int] = 5,
                 heap_kind: str = "dary",
                 arity: int = 8,
                 stats: bool = True) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        converter = RatioConverter()
        self._shards: List[CampPolicy] = [
            CampPolicy(precision=precision, heap_kind=heap_kind, arity=arity,
                       converter=converter, stats=stats)
            for _ in range(shards)]
        self._locks = [threading.Lock() for _ in range(shards)]
        #: (lock, shard) pairs — one indexed fetch on the hot path
        self._lanes: List[Tuple[threading.Lock, CampPolicy]] = list(
            zip(self._locks, self._shards))
        self._count = shards
        self._mask = shards - 1 if shards & (shards - 1) == 0 else None

    def _lane(self, key: str) -> Tuple[threading.Lock, CampPolicy]:
        mask = self._mask
        if mask is not None:
            return self._lanes[hash(key) & mask]
        return self._lanes[hash(key) % self._count]

    def on_hit(self, key: str) -> None:
        lock, shard = self._lane(key)
        with lock:
            shard.on_hit(key)

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        lock, shard = self._lane(key)
        with lock:
            shard.on_insert(key, size, cost)

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        # choose the shard holding the globally minimal queue head
        best_lane = None
        best_priority = None
        for lane in self._lanes:
            lock, shard = lane
            with lock:
                priority = shard.peek_min_priority()
            if priority is None:
                continue
            if best_priority is None or priority < best_priority:
                best_priority = priority
                best_lane = lane
        if best_lane is None:
            raise EvictionError("all CAMP shards are empty")
        lock, shard = best_lane
        with lock:
            return shard.pop_victim(incoming)

    def on_remove(self, key: str) -> None:
        lock, shard = self._lane(key)
        with lock:
            shard.on_remove(key)

    def __contains__(self, key: str) -> bool:
        lock, shard = self._lane(key)
        with lock:
            return key in shard

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    @property
    def shard_count(self) -> int:
        return self._count

    def shard_sizes(self) -> List[int]:
        return [len(s) for s in self._shards]

    def stats(self) -> Dict[str, Union[int, float]]:
        merged: Dict[str, Union[int, float]] = {"shards": self._count}
        for stat_key in ("heap_node_visits", "heap_updates", "queue_count"):
            merged[stat_key] = sum(s.stats()[stat_key] for s in self._shards)
        return merged

    def reset_stats(self) -> None:
        for shard in self._shards:
            shard.reset_stats()
