"""Vertical-scaling extensions from the paper's section 4.1.

The paper argues CAMP scales on multi-cores because (1) the shared heap is
touched only when a queue head changes, (2) distinct LRU queues can be
updated concurrently, and (3) each logical LRU queue "may be represented as
multiple physical queues" with keys hash-partitioned across them.

Two building blocks reproduce that story in Python:

* :class:`ThreadSafePolicy` — wraps any policy with a re-entrant lock so a
  multi-threaded server (see ``repro.twemcache.server``) can share it.
* :class:`ShardedCampPolicy` — hash-partitions keys across ``shards``
  independent CAMP instances (each with its own lock), sharing one
  :class:`~repro.core.rounding.RatioConverter` so ratios stay comparable.
  Victim selection takes the globally minimal queue head across shards.
  Each shard maintains its own inflation offset ``L``; offsets stay within
  one another's reach because every shard sees a similar key sample — the
  deviation from single-instance CAMP is bounded by inter-shard skew and is
  measured (not assumed) in the concurrency ablation benchmark.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from repro.core.camp import CampPolicy
from repro.core.policy import CacheItem, EvictionPolicy
from repro.core.rounding import RatioConverter
from repro.errors import ConfigurationError, EvictionError

__all__ = ["ThreadSafePolicy", "ShardedCampPolicy"]

Number = Union[int, float]


class ThreadSafePolicy(EvictionPolicy):
    """Serializes all access to an inner policy with one re-entrant lock."""

    name = "thread-safe"

    def __init__(self, inner: EvictionPolicy) -> None:
        self._inner = inner
        self._lock = threading.RLock()

    @property
    def inner(self) -> EvictionPolicy:
        return self._inner

    def on_hit(self, key: str) -> None:
        with self._lock:
            self._inner.on_hit(key)

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        with self._lock:
            self._inner.on_insert(key, size, cost)

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        with self._lock:
            return self._inner.pop_victim(incoming)

    def on_remove(self, key: str) -> None:
        with self._lock:
            self._inner.on_remove(key)

    @contextmanager
    def bulk(self) -> Iterator[EvictionPolicy]:
        """Hold the lock once and hand out the inner policy for a batch.

        This is the throughput lever behind ``Store.get_many``/
        ``put_many``: one acquisition amortized over the whole batch
        instead of one per policy event.
        """
        with self._lock:
            yield self._inner

    def wants_eviction(self, incoming: CacheItem, free_bytes: int) -> bool:
        with self._lock:
            return self._inner.wants_eviction(incoming, free_bytes)

    def fits(self, incoming: CacheItem, capacity: int) -> bool:
        with self._lock:
            return self._inner.fits(incoming, capacity)

    def stats(self) -> Dict[str, Union[int, float]]:
        with self._lock:
            return self._inner.stats()

    def reset_stats(self) -> None:
        with self._lock:
            self._inner.reset_stats()

    def export_state(self) -> Dict[str, object]:
        """Snapshot the inner policy's state (its kind, not the wrapper's,
        names the dict — a thread-safe CAMP restores into bare CAMP and
        vice versa)."""
        with self._lock:
            return self._inner.export_state()

    def import_state(self, state: Dict[str, object]) -> None:
        with self._lock:
            self._inner.import_state(state)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._inner

    def __len__(self) -> int:
        with self._lock:
            return len(self._inner)


class ShardedCampPolicy(EvictionPolicy):
    """CAMP hash-partitioned over independent shards (section 4.1, point 3)."""

    name = "camp-sharded"

    def __init__(self,
                 shards: int = 4,
                 precision: Optional[int] = 5,
                 heap_kind: str = "dary",
                 arity: int = 8) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        converter = RatioConverter()
        self._shards: List[CampPolicy] = [
            CampPolicy(precision=precision, heap_kind=heap_kind, arity=arity,
                       converter=converter)
            for _ in range(shards)]
        self._locks = [threading.RLock() for _ in range(shards)]

    def _index(self, key: str) -> int:
        return hash(key) % len(self._shards)

    def on_hit(self, key: str) -> None:
        i = self._index(key)
        with self._locks[i]:
            self._shards[i].on_hit(key)

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        i = self._index(key)
        with self._locks[i]:
            self._shards[i].on_insert(key, size, cost)

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        # choose the shard holding the globally minimal queue head
        best_index = -1
        best_priority = None
        for i, shard in enumerate(self._shards):
            with self._locks[i]:
                priority = shard.peek_min_priority()
            if priority is None:
                continue
            if best_priority is None or priority < best_priority:
                best_priority = priority
                best_index = i
        if best_index < 0:
            raise EvictionError("all CAMP shards are empty")
        with self._locks[best_index]:
            return self._shards[best_index].pop_victim(incoming)

    def on_remove(self, key: str) -> None:
        i = self._index(key)
        with self._locks[i]:
            self._shards[i].on_remove(key)

    def __contains__(self, key: str) -> bool:
        i = self._index(key)
        with self._locks[i]:
            return key in self._shards[i]

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_sizes(self) -> List[int]:
        return [len(s) for s in self._shards]

    def stats(self) -> Dict[str, Union[int, float]]:
        merged: Dict[str, Union[int, float]] = {"shards": len(self._shards)}
        for stat_key in ("heap_node_visits", "heap_updates", "queue_count"):
            merged[stat_key] = sum(s.stats()[stat_key] for s in self._shards)
        return merged

    def reset_stats(self) -> None:
        for shard in self._shards:
            shard.reset_stats()
