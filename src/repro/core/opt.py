"""Offline (clairvoyant) baselines: Belady's MIN and a cost-aware greedy.

The competitive-ratio story of the paper (Proposition 3, Young's k-bound)
is stated against OPT, the offline algorithm that knows the whole request
sequence.  These policies make that reference point runnable:

* :class:`BeladyPolicy` — the classical MIN rule: evict the resident pair
  whose **next use is furthest in the future** (never-used-again first).
  Optimal for uniform sizes and costs; with either varying, it is only a
  heuristic (the general problem is NP-hard), but remains the standard
  clairvoyant yardstick.
* :class:`OfflineGreedyPolicy` — a cost/size-aware clairvoyant heuristic:
  evict the pair with the smallest ``cost / size`` among those not used
  soon; concretely, the smallest ``cost(p) / size(p)`` divided by the
  distance to the next use.  It dominates Belady on cost-weighted metrics
  for strongly cost-skewed traces.

Both need the trace in advance: build them with :func:`from_trace` (or
feed ``next_uses`` directly), then drive them through the ordinary
simulator.  Each ``on_hit``/``on_insert`` call consumes one position of
the precomputed schedule, so the policy must see exactly the same request
stream the schedule was built from.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, Optional, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)
from repro.structures import make_heap
from repro.workloads.trace import TraceRecord

__all__ = ["BeladyPolicy", "OfflineGreedyPolicy", "next_use_schedule"]

Number = Union[int, float]

#: stands for "never requested again"
_INFINITY = float("inf")


def next_use_schedule(trace: Iterable[TraceRecord]
                      ) -> Dict[str, Deque[int]]:
    """Per-key queue of the request indices at which the key appears."""
    schedule: Dict[str, Deque[int]] = defaultdict(deque)
    for index, record in enumerate(trace):
        schedule[record.key].append(index)
    return dict(schedule)


class _ClairvoyantBase(EvictionPolicy):
    """Shared machinery: consume the schedule, keep a max-heap on priority."""

    def __init__(self, next_uses: Dict[str, Deque[int]]) -> None:
        self._schedule = {key: deque(positions)
                          for key, positions in next_uses.items()}
        self._clock = 0   # index of the *next* request to be processed
        self._heap = make_heap("dary", arity=8)
        self._entry_type = type(self._heap).entry_type
        self._entries: Dict[str, object] = {}

    @classmethod
    def from_trace(cls, trace: Iterable[TraceRecord], **kwargs):
        return cls(next_use_schedule(trace), **kwargs)

    # ------------------------------------------------------------------
    def _advance(self, key: str) -> None:
        """Consume the current request position for ``key``."""
        positions = self._schedule.get(key)
        if not positions:
            raise ConfigurationError(
                f"request for {key!r} not in the precomputed schedule "
                "(the policy must replay exactly the scheduled trace)")
        self._clock = positions.popleft() + 1

    def _next_use(self, key: str) -> float:
        positions = self._schedule.get(key)
        return positions[0] if positions else _INFINITY

    def _priority(self, key: str, item: CacheItem):
        raise NotImplementedError

    # ------------------------------------------------------------------
    def on_hit(self, key: str) -> None:
        entry = self._entries.get(key)
        if entry is None:
            raise MissingKeyError(key)
        self._advance(key)
        self._heap.update(entry, self._priority(key, entry.item))

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        if key in self._entries:
            raise DuplicateKeyError(key)
        self._advance(key)
        item = CacheItem(key, size, cost)
        entry = self._entry_type(self._priority(key, item), item)
        self._heap.push(entry)
        self._entries[key] = entry

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._heap:
            raise EvictionError("nothing to evict")
        entry = self._heap.pop()
        del self._entries[entry.item.key]
        return entry.item.key

    def on_remove(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            raise MissingKeyError(key)
        self._heap.remove(entry)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class BeladyPolicy(_ClairvoyantBase):
    """Belady's MIN: evict the pair re-used furthest in the future."""

    name = "belady"

    def _priority(self, key: str, item: CacheItem):
        # min-heap: the furthest next use must surface first, so negate;
        # never-used-again pairs get the strongest negative priority
        next_use = self._next_use(key)
        if next_use is _INFINITY:
            return (0, 0.0)
        return (1, -float(next_use))


class OfflineGreedyPolicy(_ClairvoyantBase):
    """Clairvoyant cost-aware heuristic: evict the smallest value density.

    Value density of a resident pair = ``(cost / size) / gap`` where
    ``gap`` is the distance to its next use (∞ ⇒ density 0).  This blends
    Belady's forward distance with GDS's cost-to-size ratio.
    """

    name = "offline-greedy"

    def _priority(self, key: str, item: CacheItem):
        next_use = self._next_use(key)
        if next_use is _INFINITY:
            return (0, 0.0)
        gap = max(1.0, float(next_use) - self._clock + 1)
        density = (item.cost / item.size) / gap
        return (1, density)
