"""ARC (Megiddo & Modha 2003), generalized to byte-sized items.

Four lists: resident ``T1`` (seen once recently) and ``T2`` (seen at least
twice), plus ghost lists ``B1``/``B2`` remembering recently evicted keys.
A hit in a ghost list steers the adaptation target ``p`` — the byte share
of capacity reserved for T1 — toward the list that would have hit.  The
original operates on uniform pages; we use the standard byte-weighted
generalization (ghost hits move ``p`` by the item's size, scaled by the
ratio of ghost sizes).  Cited in the paper's related work as a self-tuning
recency/frequency policy that still ignores cost and size *preferences*.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)
from repro.structures import DList, DListNode

__all__ = ["ArcPolicy"]


class _Node(DListNode):
    __slots__ = ("item", "in_t1")

    def __init__(self, item: CacheItem) -> None:
        super().__init__()
        self.item = item
        self.in_t1 = True


class _Ghost:
    """Insertion-ordered key -> size map with byte accounting."""

    __slots__ = ("entries", "bytes")

    def __init__(self) -> None:
        self.entries: "OrderedDict[str, int]" = OrderedDict()
        self.bytes = 0

    def add(self, key: str, size: int) -> None:
        self.entries[key] = size
        self.bytes += size

    def discard(self, key: str) -> Optional[int]:
        size = self.entries.pop(key, None)
        if size is not None:
            self.bytes -= size
        return size

    def pop_oldest(self) -> None:
        if self.entries:
            _, size = self.entries.popitem(last=False)
            self.bytes -= size

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)


class ArcPolicy(EvictionPolicy):
    """Adaptive Replacement Cache over byte-sized key-value pairs."""

    name = "arc"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._p = 0  # adaptive T1 target in bytes
        self._t1 = DList()
        self._t2 = DList()
        self._t1_bytes = 0
        self._t2_bytes = 0
        self._b1 = _Ghost()
        self._b2 = _Ghost()
        self._nodes: Dict[str, _Node] = {}
        # ghost membership of the key currently being admitted, latched by
        # the first pop_victim call for that key
        self._pending: Optional[str] = None
        self._pending_in_b2 = False

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------
    def _adapt(self, incoming: CacheItem) -> None:
        """Adjust p on a ghost hit for the incoming key (once per admission)."""
        if self._pending == incoming.key:
            return
        self._pending = incoming.key
        self._pending_in_b2 = incoming.key in self._b2
        if incoming.key in self._b1:
            scale = max(1.0, self._b2.bytes / max(self._b1.bytes, 1))
            self._p = min(self._capacity,
                          self._p + int(scale * incoming.size) + 1)
        elif self._pending_in_b2:
            scale = max(1.0, self._b1.bytes / max(self._b2.bytes, 1))
            self._p = max(0, self._p - int(scale * incoming.size) - 1)

    def _trim_ghosts(self) -> None:
        # |T1| + |B1| <= c and total directory <= 2c, in bytes
        while self._t1_bytes + self._b1.bytes > self._capacity and len(self._b1):
            self._b1.pop_oldest()
        while (self._t1_bytes + self._t2_bytes + self._b1.bytes +
               self._b2.bytes > 2 * self._capacity) and len(self._b2):
            self._b2.pop_oldest()

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def on_hit(self, key: str) -> None:
        node = self._nodes.get(key)
        if node is None:
            raise MissingKeyError(key)
        if node.in_t1:
            self._t1.remove(node)
            self._t1_bytes -= node.item.size
            node.in_t1 = False
            self._t2.append(node)
            self._t2_bytes += node.item.size
        else:
            self._t2.move_to_tail(node)

    def on_insert(self, key: str, size: int, cost: Union[int, float]) -> None:
        if key in self._nodes:
            raise DuplicateKeyError(key)
        item = CacheItem(key, size, cost)
        self._adapt(item)  # no-op if pop_victim already latched this key
        node = _Node(item)
        was_ghost = self._b1.discard(key) is not None
        if self._b2.discard(key) is not None:
            was_ghost = True
        if was_ghost:
            node.in_t1 = False
            self._t2.append(node)
            self._t2_bytes += size
        else:
            self._t1.append(node)
            self._t1_bytes += size
        self._nodes[key] = node
        self._trim_ghosts()
        if self._pending == key:
            self._pending = None

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._nodes:
            raise EvictionError("ARC has nothing to evict")
        if incoming is not None:
            self._adapt(incoming)
        in_b2 = self._pending_in_b2 if incoming is not None else False
        # REPLACE(x) from the ARC paper, byte-weighted
        use_t1 = bool(self._t1) and (
            self._t1_bytes > self._p or
            (in_b2 and self._t1_bytes == self._p) or
            not self._t2)
        if use_t1:
            node = self._t1.popleft()
            self._t1_bytes -= node.item.size
            self._b1.add(node.item.key, node.item.size)
        else:
            node = self._t2.popleft()
            self._t2_bytes -= node.item.size
            self._b2.add(node.item.key, node.item.size)
        del self._nodes[node.item.key]
        self._trim_ghosts()
        return node.item.key

    def on_remove(self, key: str) -> None:
        node = self._nodes.pop(key, None)
        if node is None:
            raise MissingKeyError(key)
        if node.in_t1:
            self._t1.remove(node)
            self._t1_bytes -= node.item.size
        else:
            self._t2.remove(node)
            self._t2_bytes -= node.item.size

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def target_t1_bytes(self) -> int:
        """The adaptive parameter p."""
        return self._p

    def stats(self) -> Dict[str, Union[int, float]]:
        return {
            "t1_bytes": self._t1_bytes,
            "t2_bytes": self._t2_bytes,
            "b1_keys": len(self._b1),
            "b2_keys": len(self._b2),
            "p": self._p,
        }
