"""Eviction-policy interface shared by CAMP and every baseline.

A policy tracks *metadata only*; memory accounting lives in
:class:`repro.cache.kvs.KVS`.  The store drives the policy through four
events — hit, insert, evict, remove — and asks :meth:`wants_eviction`
whether space must be reclaimed before an incoming item can be admitted.
Most policies only need the default capacity check; Pooled LRU overrides it
to enforce its per-pool budgets (the paper's partitioned-memory baseline
evicts even when the store as a whole has free bytes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import nullcontext
from dataclasses import dataclass
from typing import (Callable, ClassVar, ContextManager, Dict, Iterator,
                    Optional, Union)

from repro.errors import ConfigurationError

__all__ = ["CacheItem", "EvictionPolicy", "register_policy", "make_policy",
           "policy_names"]


@dataclass(frozen=True, slots=True)
class CacheItem:
    """An immutable (key, size, cost) triple plus expiry metadata.

    ``size`` is in bytes; ``cost`` is the time (or any non-negative
    quantity) required to recompute the value on a miss — the paper's
    examples range from a few-millisecond RDBMS lookup to hours of machine
    learning.  ``expire_at`` is an absolute clock reading (0 = never);
    carrying it here rather than in any one engine makes TTLs visible to
    every store, listener and ghost cache uniformly.
    """

    key: str
    size: int
    cost: Union[int, float]
    expire_at: float = 0.0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"item size must be >= 1, got {self.size}")
        if self.cost < 0:
            raise ConfigurationError(f"item cost must be >= 0, got {self.cost}")
        if self.expire_at < 0:
            raise ConfigurationError(
                f"item expire_at must be >= 0, got {self.expire_at}")

    def expired(self, now: float) -> bool:
        """True once ``now`` has reached a non-zero ``expire_at``."""
        return self.expire_at != 0 and now >= self.expire_at

    @property
    def ratio(self) -> float:
        """The raw cost-to-size ratio cost(p)/size(p)."""
        return self.cost / self.size


class EvictionPolicy(ABC):
    """Chooses which resident key to evict when space is needed."""

    #: short identifier used by the registry / CLI / result tables
    name: ClassVar[str] = "abstract"

    # ------------------------------------------------------------------
    # required event handlers
    # ------------------------------------------------------------------
    @abstractmethod
    def on_hit(self, key: str) -> None:
        """A resident key was requested."""

    @abstractmethod
    def on_insert(self, key: str, size: int, cost: Union[int, float]) -> None:
        """A key became resident (after any evictions were performed)."""

    @abstractmethod
    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        """Select a victim, forget it, and return its key.

        ``incoming`` describes the item whose admission triggered the
        eviction; global policies ignore it, Pooled LRU uses it to locate
        the pool that must shrink.  Raises
        :class:`~repro.errors.EvictionError` when nothing can be evicted.
        """

    @abstractmethod
    def on_remove(self, key: str) -> None:
        """A key left the store for a reason other than eviction."""

    @abstractmethod
    def __contains__(self, key: str) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    # ------------------------------------------------------------------
    # optional hooks
    # ------------------------------------------------------------------
    def wants_eviction(self, incoming: CacheItem, free_bytes: int) -> bool:
        """True while space must be reclaimed before ``incoming`` fits."""
        return free_bytes < incoming.size

    def bulk(self) -> ContextManager["EvictionPolicy"]:
        """Context manager yielding the policy handle to drive a batch.

        Plain policies yield themselves; thread-safe wrappers override
        this to take their lock *once* and yield the unwrapped inner
        policy, which is what makes ``get_many``/``put_many`` cheaper
        than looped single calls.
        """
        return nullcontext(self)

    def fits(self, incoming: CacheItem, capacity: int) -> bool:
        """False when ``incoming`` could never be cached (e.g. larger than
        the store, or than its pool in Pooled LRU)."""
        return incoming.size <= capacity

    def export_state(self) -> Dict[str, object]:
        """Serialize eviction state for a durable snapshot.

        Returns a JSON-serializable dict whose ``"policy"`` entry names
        the concrete policy.  A policy of the same kind fed this dict via
        :meth:`import_state` must make *identical* future eviction
        decisions — membership, recency/priority order, and any global
        clocks (CAMP's ``L``) all round-trip.  Policies that cannot
        honour that contract keep the default, which refuses.
        """
        raise ConfigurationError(
            f"policy {self.name!r} does not support durable state export")

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore state produced by :meth:`export_state` on an *empty*
        policy of the same kind."""
        raise ConfigurationError(
            f"policy {self.name!r} does not support durable state import")

    def _check_importable(self, state: Dict[str, object]) -> None:
        """Shared import preamble: right policy kind, empty receiver."""
        kind = state.get("policy")
        if kind != self.name:
            raise ConfigurationError(
                f"cannot import {kind!r} state into a {self.name!r} policy")
        if len(self):
            raise ConfigurationError(
                f"import_state requires an empty policy; "
                f"{len(self)} keys are resident")

    def stats(self) -> Dict[str, Union[int, float]]:
        """Policy-specific counters (heap visits, queue counts, ...)."""
        return {}

    def reset_stats(self) -> None:
        """Zero the counters returned by :meth:`stats`."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} len={len(self)}>"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
# Factories receive the store capacity in bytes (several baselines need it
# for pool budgets or ghost-list sizing) plus free-form keyword overrides.
PolicyFactory = Callable[..., EvictionPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a factory ``(capacity, **kwargs) -> EvictionPolicy``."""
    if name in _REGISTRY:
        raise ConfigurationError(f"policy {name!r} is already registered")
    _REGISTRY[name] = factory


def make_policy(name: str, capacity: int, **kwargs: object) -> EvictionPolicy:
    """Instantiate a registered policy for a store of ``capacity`` bytes."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {sorted(_REGISTRY)}") from None
    return factory(capacity, **kwargs)


def policy_names() -> Iterator[str]:
    """Names of all registered policies, sorted."""
    return iter(sorted(_REGISTRY))
