"""Segmented LRU — the scan-resistant LRU used by modern memcached.

Two segments: *probationary* (first-time entrants) and *protected*
(promoted on a hit, byte budget ``protected_fraction`` of capacity).
Overflowing the protected segment demotes its LRU back to probationary, so
a burst of one-shot keys can only churn the probationary segment.  A
recency-only contrast to CAMP that is stronger than plain LRU.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)
from repro.structures import DList, DListNode

__all__ = ["SlruPolicy"]


class _Node(DListNode):
    __slots__ = ("item", "protected")

    def __init__(self, item: CacheItem) -> None:
        super().__init__()
        self.item = item
        self.protected = False


class SlruPolicy(EvictionPolicy):
    """SLRU with byte-accounted probationary and protected segments."""

    name = "slru"

    def __init__(self, capacity: int, protected_fraction: float = 0.8) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if not 0 < protected_fraction < 1:
            raise ConfigurationError(
                f"protected_fraction must be in (0, 1), got {protected_fraction}")
        self._protected_budget = max(1, int(capacity * protected_fraction))
        self._probation = DList()
        self._protected = DList()
        self._protected_bytes = 0
        self._nodes: Dict[str, _Node] = {}

    def on_hit(self, key: str) -> None:
        node = self._nodes.get(key)
        if node is None:
            raise MissingKeyError(key)
        if node.protected:
            self._protected.move_to_tail(node)
            return
        # promote probation -> protected
        self._probation.remove(node)
        node.protected = True
        self._protected.append(node)
        self._protected_bytes += node.item.size
        # demote protected overflow back to probation (MRU end)
        while self._protected_bytes > self._protected_budget and \
                len(self._protected) > 1:
            demoted = self._protected.popleft()
            demoted.protected = False
            self._protected_bytes -= demoted.item.size
            self._probation.append(demoted)

    def on_insert(self, key: str, size: int, cost: Union[int, float]) -> None:
        if key in self._nodes:
            raise DuplicateKeyError(key)
        node = _Node(CacheItem(key, size, cost))
        self._nodes[key] = node
        self._probation.append(node)

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._nodes:
            raise EvictionError("SLRU has nothing to evict")
        if self._probation:
            node = self._probation.popleft()
        else:
            node = self._protected.popleft()
            self._protected_bytes -= node.item.size
        del self._nodes[node.item.key]
        return node.item.key

    def on_remove(self, key: str) -> None:
        node = self._nodes.pop(key, None)
        if node is None:
            raise MissingKeyError(key)
        if node.protected:
            self._protected.remove(node)
            self._protected_bytes -= node.item.size
        else:
            self._probation.remove(node)

    def __contains__(self, key: str) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def stats(self) -> Dict[str, Union[int, float]]:
        return {
            "probation_items": len(self._probation),
            "protected_items": len(self._protected),
            "protected_bytes": self._protected_bytes,
        }
