"""Exact offline optimum for small instances (competitive-ratio tests).

GDS is k-competitive (k = cache capacity in items) and CAMP is
(1+ε)k-competitive (Proposition 3).  Those statements compare against the
true offline optimum — which is computable by memoized search for small
universes.  :func:`optimal_total_cost` does exactly that under the
simulator's *read-through* semantics (every miss pays ``cost(key)`` and
must insert; the only freedom is the victim), for unit-size pairs and a
slot-based capacity, matching the classic weighted-caching setting of
Young's analysis.

The state space is ``positions × C(keys, capacity)``; keep universes tiny
(≤ ~10 keys, ≤ ~40 requests).  Used by the property tests that verify the
paper's competitive-ratio claims numerically.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.workloads.trace import TraceRecord

__all__ = ["optimal_total_cost", "policy_total_cost"]

Number = Union[int, float]


def optimal_total_cost(trace: Sequence[TraceRecord],
                       capacity_items: int) -> float:
    """Minimum achievable total miss cost on ``trace`` (unit sizes).

    Mandatory-insert (read-through) semantics: a miss always costs the
    key's cost and the key always becomes resident, evicting an optimal
    victim when the cache is full.  This is an upper bound on the fully
    free offline optimum, so competitive-ratio inequalities stated against
    the free optimum remain valid when checked against this one.
    """
    if capacity_items < 1:
        raise ConfigurationError(
            f"capacity_items must be >= 1, got {capacity_items}")
    keys: List[str] = []
    costs: Dict[str, float] = {}
    for record in trace:
        if record.key not in costs:
            keys.append(record.key)
            costs[record.key] = float(record.cost)
    requests: Tuple[str, ...] = tuple(record.key for record in trace)
    n = len(requests)

    @lru_cache(maxsize=None)
    def best(index: int, resident: FrozenSet[str]) -> float:
        if index == n:
            return 0.0
        key = requests[index]
        if key in resident:
            return best(index + 1, resident)
        miss_cost = costs[key]
        if len(resident) < capacity_items:
            return miss_cost + best(index + 1, resident | {key})
        # full: branch over victims
        outcomes = []
        for victim in resident:
            outcomes.append(best(index + 1,
                                 (resident - {victim}) | {key}))
        return miss_cost + min(outcomes)

    result = best(0, frozenset())
    best.cache_clear()
    return result


def policy_total_cost(policy, trace: Sequence[TraceRecord],
                      capacity_items: int) -> float:
    """Total miss cost an online policy pays under the same semantics."""
    if capacity_items < 1:
        raise ConfigurationError(
            f"capacity_items must be >= 1, got {capacity_items}")
    total = 0.0
    for record in trace:
        if record.key in policy:
            policy.on_hit(record.key)
        else:
            total += float(record.cost)
            while len(policy) >= capacity_items:
                policy.pop_victim()
            policy.on_insert(record.key, record.size, record.cost)
    return total
