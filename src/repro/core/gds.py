"""Greedy Dual Size, exactly as printed in Algorithm 1 of the paper.

Every resident pair ``p`` carries ``H(p) = L + cost(p)/size(p)`` where ``L``
is a global non-decreasing offset.  On a *hit*, line 2 sets ``L`` to the
minimum ``H`` among the **other** resident pairs before refreshing ``H(p)``;
on a *miss*, pairs with minimum ``H`` are evicted until the incoming pair
fits, updating ``L`` to the new minimum after each eviction (line 6).

This implementation keeps all resident pairs in one addressable heap (the
paper's straightforward structure of Figure 1a), so a hit costs a full heap
update — the inefficiency CAMP removes.  The heap backend is pluggable
(8-ary implicit by default) and counts node visits for Figure 4.

Two faithfulness knobs:

* ``integerize`` (default True) converts ratios to integers through the
  shared :class:`~repro.core.rounding.RatioConverter`, matching the paper's
  "∞ precision" configuration ("no rounding is done after the initial
  cost-to-size ratio is rounded to an integer ... this version corresponds
  to the standard GDS algorithm").  With it, GDS and CAMP at infinite
  precision make **identical** eviction decisions — a tested property.
* ties in ``H`` are broken by least-recent use (the paper's GDS breaks ties
  arbitrarily; deterministic LRU tie-breaking is what CAMP does and makes
  runs reproducible).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.core.rounding import RatioConverter
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)
from repro.structures import make_heap

__all__ = ["GdsPolicy"]

Number = Union[int, float]


class GdsPolicy(EvictionPolicy):
    """Exact Greedy Dual Size over a single addressable heap."""

    name = "gds"

    def __init__(self,
                 heap_kind: str = "dary",
                 arity: int = 8,
                 integerize: bool = True,
                 converter: Optional[RatioConverter] = None) -> None:
        self._heap = make_heap(heap_kind, arity=arity)
        self._entry_type = type(self._heap).entry_type
        self._entries: Dict[str, object] = {}
        self._integerize = integerize
        self._converter = converter if converter is not None else RatioConverter()
        self._L: Number = 0
        self._seq = 0
        self._heap_updates = 0

    # ------------------------------------------------------------------
    # ratio handling
    # ------------------------------------------------------------------
    def _ratio(self, item: CacheItem) -> Number:
        """cost/size, integerized through the adaptive converter by default."""
        if self._integerize:
            return self._converter.to_integer(item.cost, item.size)
        return item.cost / item.size

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def on_hit(self, key: str) -> None:
        entry = self._entries.get(key)
        if entry is None:
            raise MissingKeyError(key)
        self._seq += 1
        item: CacheItem = entry.item
        # Algorithm 1 line 2.  The pseudocode prints the min over M \ {p},
        # but that reading lets L leap past the hit pair's own (minimal) H
        # and numerically violates Young's k-competitiveness — see
        # tests/test_competitive_ratio.py.  The paper's Proposition-1 proof
        # describes lines 2 and 6 as "the smallest H-value among all the
        # key-value pairs in the KVS", which is what we implement: the
        # global minimum including p (an O(1) heap peek).
        self._L = self._heap.peek().priority[0]
        # line 8: H(p) <- L + cost(p)/size(p)
        self._converter.observe(item.size)
        priority = (self._L + self._ratio(item), self._seq)
        self._heap.update(entry, priority)
        self._heap_updates += 1

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        if key in self._entries:
            raise DuplicateKeyError(key)
        self._seq += 1
        item = CacheItem(key, size, cost)
        self._converter.observe(size)
        entry = self._entry_type((self._L + self._ratio(item), self._seq), item)
        self._heap.push(entry)
        self._entries[key] = entry
        self._heap_updates += 1

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._heap:
            raise EvictionError("GDS has nothing to evict")
        # line 5: evict the q with the smallest H(q)
        entry = self._heap.pop()
        self._heap_updates += 1
        del self._entries[entry.item.key]
        # line 6: L <- min_{q in M} H(q), evaluated while the victim still
        # counts as resident — i.e. L becomes the victim's own H (the
        # classic Cao-Irani rule).  Reading line 6 as the minimum over the
        # *survivors* breaks Young's k-competitiveness (with k=2, L jumps
        # to an expensive survivor's H and newly inserted cheap pairs then
        # outrank it); see tests/test_competitive_ratio.py.
        self._L = entry.priority[0]
        return entry.item.key

    def on_remove(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            raise MissingKeyError(key)
        self._heap.remove(entry)
        self._heap_updates += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def inflation(self) -> Number:
        """The global offset L."""
        return self._L

    @property
    def converter(self) -> RatioConverter:
        return self._converter

    def priority_of(self, key: str) -> Number:
        """H(key) for a resident key (used by invariant tests)."""
        entry = self._entries.get(key)
        if entry is None:
            raise MissingKeyError(key)
        return entry.priority[0]

    def peek_min_priority(self) -> Optional[Number]:
        """Smallest H among residents, or None when empty."""
        if not self._heap:
            return None
        return self._heap.peek().priority[0]

    # ------------------------------------------------------------------
    # durable state (snapshot/restore hooks)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Residents with their fixed (H, seq) priorities plus the global
        clocks — heap shape is irrelevant, priorities are total."""
        entries = [[e.item.key, e.item.size, e.item.cost,
                    e.priority[0], e.priority[1]]
                   for e in self._entries.values()]
        return {
            "policy": self.name,
            "integerize": self._integerize,
            "L": self._L,
            "seq": self._seq,
            "multiplier": self._converter.multiplier,
            "entries": entries,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        self._check_importable(state)
        self._integerize = bool(state["integerize"])
        self._L = state["L"]
        self._seq = state["seq"]
        self._converter.observe(int(state["multiplier"]))
        for key, size, cost, h, seq in state["entries"]:
            if key in self._entries:
                raise ConfigurationError(f"snapshot lists {key!r} twice")
            entry = self._entry_type((h, seq), CacheItem(key, size, cost))
            self._heap.push(entry)
            self._entries[key] = entry

    def stats(self) -> Dict[str, Union[int, float]]:
        return {
            "heap_node_visits": self._heap.node_visits,
            "heap_updates": self._heap_updates,
            "heap_size": len(self._heap),
            "inflation": float(self._L),
            "multiplier": self._converter.multiplier,
        }

    def reset_stats(self) -> None:
        self._heap.reset_visits()
        self._heap_updates = 0
