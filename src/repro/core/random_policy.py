"""Random replacement — the zero-information control baseline."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import DuplicateKeyError, EvictionError, MissingKeyError

__all__ = ["RandomPolicy"]


class RandomPolicy(EvictionPolicy):
    """Evicts a uniformly random resident pair (O(1) via swap-remove)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._keys: List[str] = []
        self._positions: Dict[str, int] = {}

    def on_hit(self, key: str) -> None:
        if key not in self._positions:
            raise MissingKeyError(key)

    def on_insert(self, key: str, size: int, cost: Union[int, float]) -> None:
        if key in self._positions:
            raise DuplicateKeyError(key)
        CacheItem(key, size, cost)  # validate inputs
        self._positions[key] = len(self._keys)
        self._keys.append(key)

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._keys:
            raise EvictionError("random policy has nothing to evict")
        index = self._rng.randrange(len(self._keys))
        return self._remove_at(index)

    def on_remove(self, key: str) -> None:
        index = self._positions.get(key)
        if index is None:
            raise MissingKeyError(key)
        self._remove_at(index)

    def _remove_at(self, index: int) -> str:
        key = self._keys[index]
        last = self._keys.pop()
        if last != key:
            self._keys[index] = last
            self._positions[last] = index
        del self._positions[key]
        return key

    def __contains__(self, key: str) -> bool:
        return key in self._positions

    def __len__(self) -> int:
        return len(self._keys)
