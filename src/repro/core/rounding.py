"""CAMP's integer rounding scheme (paper section 2, Table 1, Props 2-3).

Two pieces live here:

1. :func:`round_to_precision` — the Matias/Sahinalp/Young rounding that
   keeps only the ``p`` most significant bits of a positive integer.  Unlike
   truncating a fixed number of low-order bits, the amount of rounding is
   proportional to the magnitude of the value, so values of different orders
   of magnitude always stay distinct (Table 1 of the paper).

2. :class:`RatioConverter` — the adaptive fraction-to-integer conversion.
   Cost-to-size ratios can be < 1; rounding them to integers directly would
   destroy ordering information.  The paper divides each ratio by a lower
   bound on the smallest possible ratio — ``1 / max item size`` — i.e.
   multiplies by the largest size seen so far.  The running maximum is
   learned adaptively; when it grows, already-resident items are *not*
   re-rounded, but all future conversions use the new multiplier.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from repro.errors import ConfigurationError

__all__ = [
    "round_to_precision",
    "regular_rounding",
    "epsilon_for_precision",
    "precision_for_epsilon",
    "distinct_value_bound",
    "RatioConverter",
]

Number = Union[int, float]


def round_to_precision(x: int, precision: Optional[int]) -> int:
    """Keep the ``precision`` most significant bits of ``x`` (>= 0).

    Let ``b`` be the position of the highest non-zero bit of ``x``.  All
    bits below position ``b - precision + 1`` are zeroed; if ``b <=
    precision`` the value is returned unchanged.  ``precision=None`` means
    infinite precision (no rounding) and corresponds to the GDS-equivalent
    configuration in the paper's Figure 5a.

    The result ``x̄`` satisfies ``x̄ <= x <= (1 + ε) x̄`` with
    ``ε = 2**(1 - precision)`` (Proposition 3).
    """
    if x < 0:
        raise ConfigurationError(f"cannot round negative value {x}")
    if precision is None:
        return x
    if precision < 1:
        raise ConfigurationError(f"precision must be >= 1, got {precision}")
    b = x.bit_length()
    if b <= precision:
        return x
    drop = b - precision
    return (x >> drop) << drop


def regular_rounding(x: int, precision: int) -> int:
    """Zero the ``precision`` low-order bits regardless of magnitude.

    The *wrong* scheme from Table 1 (left column), kept for the rounding
    ablation benchmark: it keeps too much information for large values and
    collapses small values to zero.
    """
    if x < 0:
        raise ConfigurationError(f"cannot round negative value {x}")
    if precision < 0:
        raise ConfigurationError(f"precision must be >= 0, got {precision}")
    return (x >> precision) << precision


def epsilon_for_precision(precision: int) -> float:
    """The approximation factor ε = 2**(1-p) of Proposition 3."""
    if precision < 1:
        raise ConfigurationError(f"precision must be >= 1, got {precision}")
    return 2.0 ** (1 - precision)


def precision_for_epsilon(epsilon: float) -> int:
    """Smallest precision whose ε = 2**(1-p) is <= ``epsilon``."""
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    return max(1, 1 + math.ceil(-math.log2(epsilon)))


def distinct_value_bound(upper: int, precision: int) -> int:
    """Proposition 2: rounded values of 1..U number at most
    ``(ceil(log2(U+1)) - p + 1) * 2**p``.

    This bounds the number of LRU queues CAMP can ever create for ratios
    drawn from ``1..upper``.
    """
    if upper < 1:
        raise ConfigurationError(f"upper bound must be >= 1, got {upper}")
    if precision < 1:
        raise ConfigurationError(f"precision must be >= 1, got {precision}")
    bits = math.ceil(math.log2(upper + 1))
    return max(bits - precision + 1, 1) * (2 ** precision)


class RatioConverter:
    """Adaptive conversion of cost/size ratios to positive integers.

    ``to_integer(cost, size)`` returns ``round(cost * multiplier / size)``
    clamped to at least 1, where ``multiplier`` is the largest item size
    observed so far (the reciprocal of the paper's lower-bound estimate for
    the smallest possible ratio).  Integer inputs are converted with exact
    integer arithmetic (round-half-up), so eviction priorities never suffer
    float drift.
    """

    __slots__ = ("_max_size",)

    def __init__(self, initial_max_size: int = 1) -> None:
        if initial_max_size < 1:
            raise ConfigurationError(
                f"initial max size must be >= 1, got {initial_max_size}")
        self._max_size = initial_max_size

    @property
    def multiplier(self) -> int:
        """The current multiplier (largest size observed)."""
        return self._max_size

    def observe(self, size: int) -> bool:
        """Record an item size; returns True if the multiplier grew."""
        if size < 1:
            raise ConfigurationError(f"item size must be >= 1, got {size}")
        if size > self._max_size:
            self._max_size = size
            return True
        return False

    def to_integer(self, cost: Number, size: int) -> int:
        """Convert ``cost/size`` to a positive integer at current precision."""
        if size < 1:
            raise ConfigurationError(f"item size must be >= 1, got {size}")
        if cost < 0:
            raise ConfigurationError(f"cost must be >= 0, got {cost}")
        if isinstance(cost, int):
            # exact round-half-up of cost * multiplier / size
            num = cost * self._max_size
            value = (2 * num + size) // (2 * size)
        else:
            value = round(cost * self._max_size / size)
        return max(1, int(value))
