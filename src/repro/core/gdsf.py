"""GDSF — Greedy Dual Size with Frequency (the Squid-cache variant).

``H(p) = L + freq(p) * cost(p)/size(p)``: popular pairs inflate their
priority with each hit, correcting GDS's blindness to frequency.  Included
as a related-work extension (the paper's section 5 situates CAMP among the
GDS family; GDSF is the most widely deployed member).
"""

from __future__ import annotations

from typing import Dict, Union

from repro.core.gds import GdsPolicy
from repro.core.policy import CacheItem
from repro.errors import MissingKeyError

__all__ = ["GdsfPolicy"]

Number = Union[int, float]


class GdsfPolicy(GdsPolicy):
    """GDS with a per-item resident frequency multiplier."""

    name = "gdsf"

    def __init__(self, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self._freq: Dict[str, int] = {}

    def _ratio(self, item: CacheItem) -> Number:
        base = super()._ratio(item)
        return self._freq.get(item.key, 1) * base

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        self._freq[key] = 1
        super().on_insert(key, size, cost)

    def on_hit(self, key: str) -> None:
        if key not in self._freq:
            raise MissingKeyError(key)
        self._freq[key] += 1
        super().on_hit(key)

    def pop_victim(self, incoming=None) -> str:
        key = super().pop_victim(incoming)
        del self._freq[key]
        return key

    def on_remove(self, key: str) -> None:
        super().on_remove(key)
        del self._freq[key]

    def frequency_of(self, key: str) -> int:
        if key not in self._freq:
            raise MissingKeyError(key)
        return self._freq[key]

    # ------------------------------------------------------------------
    # durable state (snapshot/restore hooks)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """GDS state plus the per-key resident frequency counters."""
        state = super().export_state()
        state["freq"] = dict(self._freq)
        return state

    def import_state(self, state: Dict[str, object]) -> None:
        super().import_state(state)
        self._freq = {str(key): int(count)
                      for key, count in state["freq"].items()}
