"""Least Frequently Used with O(1) operations (frequency-bucket lists).

Buckets are LRU queues keyed by reference count, mirroring the classic
constant-time LFU construction; ties inside a bucket break by recency.
Included as a frequency-only contrast to CAMP's cost/size awareness.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import DuplicateKeyError, EvictionError, MissingKeyError
from repro.structures import DList, DListNode

__all__ = ["LfuPolicy"]


class _LfuNode(DListNode):
    __slots__ = ("item", "freq")

    def __init__(self, item: CacheItem) -> None:
        super().__init__()
        self.item = item
        self.freq = 1


class LfuPolicy(EvictionPolicy):
    """Evicts the least-frequently (then least-recently) used pair."""

    name = "lfu"

    def __init__(self) -> None:
        self._nodes: Dict[str, _LfuNode] = {}
        self._buckets: Dict[int, DList] = {}
        self._min_freq = 0

    def _bucket(self, freq: int) -> DList:
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = DList()
            self._buckets[freq] = bucket
        return bucket

    def _drop_if_empty(self, freq: int) -> None:
        bucket = self._buckets.get(freq)
        if bucket is not None and not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = min(self._buckets) if self._buckets else 0

    def on_hit(self, key: str) -> None:
        node = self._nodes.get(key)
        if node is None:
            raise MissingKeyError(key)
        old = node.freq
        self._buckets[old].remove(node)
        node.freq += 1
        self._bucket(node.freq).append(node)
        self._drop_if_empty(old)

    def on_insert(self, key: str, size: int, cost: Union[int, float]) -> None:
        if key in self._nodes:
            raise DuplicateKeyError(key)
        node = _LfuNode(CacheItem(key, size, cost))
        self._nodes[key] = node
        self._bucket(1).append(node)
        self._min_freq = 1

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._nodes:
            raise EvictionError("LFU has nothing to evict")
        bucket = self._buckets[self._min_freq]
        node = bucket.popleft()
        del self._nodes[node.item.key]
        self._drop_if_empty(node.freq)
        return node.item.key

    def on_remove(self, key: str) -> None:
        node = self._nodes.pop(key, None)
        if node is None:
            raise MissingKeyError(key)
        self._buckets[node.freq].remove(node)
        self._drop_if_empty(node.freq)

    def __contains__(self, key: str) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def frequency_of(self, key: str) -> int:
        node = self._nodes.get(key)
        if node is None:
            raise MissingKeyError(key)
        return node.freq
