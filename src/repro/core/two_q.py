"""2Q (Johnson & Shasha 1994), byte-budget variant.

Three structures: ``A1in`` (FIFO of first-time entrants, budget ``kin`` of
capacity), ``A1out`` (ghost FIFO of keys recently expelled from A1in,
budget ``kout`` of capacity — keys only, no values), and ``Am`` (main LRU).
A key re-referenced while in the A1out ghost is promoted into Am on its
next insertion — one-hit wonders never pollute the main queue.  Cited by
the paper (section 5) among the recency/frequency balancers that ignore
size and cost.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)
from repro.structures import DList, DListNode

__all__ = ["TwoQPolicy"]


class _Node(DListNode):
    __slots__ = ("item", "in_a1in")

    def __init__(self, item: CacheItem) -> None:
        super().__init__()
        self.item = item
        self.in_a1in = True


class TwoQPolicy(EvictionPolicy):
    """Full 2Q with byte-sized A1in/A1out budgets."""

    name = "2q"

    def __init__(self, capacity: int, kin: float = 0.25, kout: float = 0.5) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if not 0 < kin < 1:
            raise ConfigurationError(f"kin must be in (0, 1), got {kin}")
        if not 0 < kout:
            raise ConfigurationError(f"kout must be positive, got {kout}")
        self._a1in_budget = max(1, int(capacity * kin))
        self._a1out_budget = max(1, int(capacity * kout))
        self._a1in = DList()
        self._a1in_bytes = 0
        self._am = DList()
        # ghost: key -> size, insertion-ordered (values are NOT resident)
        self._a1out: "OrderedDict[str, int]" = OrderedDict()
        self._a1out_bytes = 0
        self._nodes: Dict[str, _Node] = {}

    # ------------------------------------------------------------------
    # ghost maintenance
    # ------------------------------------------------------------------
    def _ghost_add(self, key: str, size: int) -> None:
        self._a1out[key] = size
        self._a1out_bytes += size
        while self._a1out_bytes > self._a1out_budget and self._a1out:
            _, dropped = self._a1out.popitem(last=False)
            self._a1out_bytes -= dropped

    def _ghost_forget(self, key: str) -> bool:
        size = self._a1out.pop(key, None)
        if size is None:
            return False
        self._a1out_bytes -= size
        return True

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def on_hit(self, key: str) -> None:
        node = self._nodes.get(key)
        if node is None:
            raise MissingKeyError(key)
        if node.in_a1in:
            # 2Q rule: a hit in A1in does not reorder (it is a FIFO)
            return
        self._am.move_to_tail(node)

    def on_insert(self, key: str, size: int, cost: Union[int, float]) -> None:
        if key in self._nodes:
            raise DuplicateKeyError(key)
        node = _Node(CacheItem(key, size, cost))
        self._nodes[key] = node
        if self._ghost_forget(key):
            # seen recently: goes straight to the main queue
            node.in_a1in = False
            self._am.append(node)
        else:
            self._a1in.append(node)
            self._a1in_bytes += size

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._nodes:
            raise EvictionError("2Q has nothing to evict")
        if self._a1in and self._a1in_bytes > self._a1in_budget:
            node = self._a1in.popleft()
            self._a1in_bytes -= node.item.size
            self._ghost_add(node.item.key, node.item.size)
        elif self._am:
            node = self._am.popleft()
        else:
            node = self._a1in.popleft()
            self._a1in_bytes -= node.item.size
            self._ghost_add(node.item.key, node.item.size)
        del self._nodes[node.item.key]
        return node.item.key

    def on_remove(self, key: str) -> None:
        node = self._nodes.pop(key, None)
        if node is None:
            raise MissingKeyError(key)
        if node.in_a1in:
            self._a1in.remove(node)
            self._a1in_bytes -= node.item.size
        else:
            self._am.remove(node)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def in_ghost(self, key: str) -> bool:
        return key in self._a1out

    def stats(self) -> Dict[str, Union[int, float]]:
        return {
            "a1in_bytes": self._a1in_bytes,
            "a1in_items": len(self._a1in),
            "am_items": len(self._am),
            "ghost_items": len(self._a1out),
        }
