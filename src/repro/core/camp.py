"""CAMP — the paper's contribution (section 2).

CAMP approximates GDS by

1. converting each cost-to-size ratio to an integer (adaptive multiplier,
   :class:`~repro.core.rounding.RatioConverter`),
2. rounding that integer to ``precision`` significant bits
   (:func:`~repro.core.rounding.round_to_precision`), and
3. grouping resident pairs with equal rounded ratio ``c`` into an **LRU
   queue**.  Within a queue, LRU order *is* priority order: each member's
   ``H = L-at-last-request + c``, and ``L`` never decreases, so the head is
   the member with minimum ``H``.

A small heap (8-ary implicit by default) holds one node per non-empty
queue, keyed by ``(head H, head last-touch sequence)``; the second
component reproduces CAMP's LRU tie-breaking between queues whose heads
share an ``H`` value.  The heap is touched only when a queue's head
changes, a queue empties, or a new queue appears — the source of the
order-of-magnitude node-visit savings in the paper's Figure 4.

With ``precision=None`` (the figure legends' ∞), rounding is the identity
and CAMP makes exactly the same eviction decisions as
:class:`~repro.core.gds.GdsPolicy` — enforced by an equivalence test.

**Hot-path layout.**  ``on_hit``/``on_insert``/``pop_victim`` are the
per-request critical path of every store in the repo, so they are written
allocation-lean: the ratio conversion and significant-bit rounding are
inlined (same arithmetic as :mod:`repro.core.rounding`, which remains the
readable spec), entries carry ``key``/``size``/``cost`` as plain slots
instead of a :class:`CacheItem` allocation, and measurement counters are
gated behind ``stats`` — built with ``stats=False`` the policy runs on an
accounting-free heap and skips every counter.  Decision equivalence with
the unoptimized seed implementation
(:class:`repro.core.camp_reference.ReferenceCampPolicy`) is pinned by
property tests, stats on and off.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.core.rounding import RatioConverter
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)
from repro.structures import DList, DListNode, make_heap

__all__ = ["CampPolicy"]

Number = Union[int, float]


class _CampEntry(DListNode):
    """A resident pair: a linked-list node carrying CAMP bookkeeping.

    ``key``/``size``/``cost`` live as plain slots (building a
    :class:`CacheItem` per insert costs a validated dataclass allocation
    on the hot path); :attr:`item` materializes one on demand for
    introspection callers.
    """

    __slots__ = ("key", "size", "cost", "h", "seq", "ratio_key", "mult",
                 "queue")

    def __init__(self, key: str, size: int, cost: Number, h: int, seq: int,
                 ratio_key: int, mult: int) -> None:
        # DListNode.__init__ inlined (one entry per insert on the hot path)
        self.prev = None
        self.next = None
        self._list = None
        self.key = key
        self.size = size
        self.cost = cost
        self.h = h          # H value fixed at the last request
        self.seq = seq      # global sequence number of the last request
        self.ratio_key = ratio_key  # rounded integer ratio = queue id
        self.mult = mult    # converter multiplier ratio_key was rounded at
        self.queue = None   # owning _CampQueue (set on queue append)

    @property
    def item(self) -> CacheItem:
        """The entry as a :class:`CacheItem` (diagnostics/tests)."""
        return CacheItem(self.key, self.size, self.cost)


class _CampQueue:
    """One LRU queue per distinct rounded cost-to-size ratio."""

    __slots__ = ("ratio_key", "items", "handle")

    def __init__(self, ratio_key: int) -> None:
        self.ratio_key = ratio_key
        self.items = DList()
        self.handle = None  # heap handle; set right after creation

    def head_priority(self) -> Tuple[int, int]:
        head = self.items.head
        assert head is not None
        return (head.h, head.seq)


class CampPolicy(EvictionPolicy):
    """Cost Adaptive Multi-queue eviction Policy."""

    name = "camp"

    def __init__(self,
                 precision: Optional[int] = 5,
                 heap_kind: str = "dary",
                 arity: int = 8,
                 reround_on_hit: bool = True,
                 converter: Optional[RatioConverter] = None,
                 stats: bool = True) -> None:
        """``precision`` counts significant bits kept (paper default 5);
        ``None`` disables rounding (the ∞/GDS-equivalent configuration).

        ``reround_on_hit`` applies the paper's "the new value is used for
        all future rounding": a hit recomputes the rounded ratio with the
        current multiplier, possibly migrating the pair to another queue.

        ``stats`` toggles measurement accounting (heap ``node_visits``,
        ``heap_updates``, per-queue creation counters).  Figures keep the
        default; production stores pass ``stats=False`` and the counters
        cost nothing — eviction decisions are identical either way.
        """
        if precision is not None and precision < 1:
            raise ConfigurationError(
                f"precision must be >= 1 or None, got {precision}")
        self._precision = precision
        self._stats = stats
        self._heap = make_heap(heap_kind, arity=arity, count_visits=stats)
        self._entry_factory = type(self._heap).entry_type
        # direct view of an implicit heap's array: the hit path reads the
        # minimum (L) once per request, and slot 0 of the array *is* the
        # minimum — pointer-based backends fall back to peek()
        self._heap_array = getattr(self._heap, "_data", None)
        # checked-free root re-key for the eviction path (implicit heaps)
        self._replace_min = getattr(self._heap, "replace_min", None)
        # checked-free handle re-key for the hit path (implicit heaps)
        self._reprioritize = getattr(self._heap, "reprioritize", None)
        self._entries: Dict[str, _CampEntry] = {}
        self._queues: Dict[int, _CampQueue] = {}
        # recycled queue shells: under eviction pressure queues run short
        # (often singletons), so the evict-one/insert-one steady state
        # destroys and recreates a queue — plus its list sentinel and
        # heap handle — on almost every request; reuse caps that churn
        self._queue_pool: List[_CampQueue] = []
        self._reround_on_hit = reround_on_hit
        self._converter = converter if converter is not None else RatioConverter()
        self._L = 0
        self._seq = 0
        self._heap_updates = 0
        self._queues_created = 0
        self._max_queues = 0

    # ------------------------------------------------------------------
    # rounded ratio
    # ------------------------------------------------------------------
    def _rounded_ratio_of(self, size: int, cost: Number) -> int:
        """``round_to_precision(converter.to_integer(cost, size))``,
        inlined.  Kept bit-identical with :mod:`repro.core.rounding`
        (the readable spec); sizes/costs are pre-validated at insert."""
        multiplier = self._converter._max_size
        if isinstance(cost, int):
            # exact round-half-up of cost * multiplier / size
            value = (2 * cost * multiplier + size) // (2 * size)
        else:
            value = round(cost * multiplier / size)
        if value < 1:
            value = 1
        precision = self._precision
        if precision is not None:
            drop = value.bit_length() - precision
            if drop > 0:
                value = (value >> drop) << drop
        return value

    def _rounded_ratio(self, item: CacheItem) -> int:
        """Spec form of the conversion (delegates to the inlined path)."""
        return self._rounded_ratio_of(item.size, item.cost)

    # ------------------------------------------------------------------
    # queue / heap plumbing
    # ------------------------------------------------------------------
    def _append_to_queue(self, entry: _CampEntry) -> None:
        """Append entry at the tail of its queue, creating it if needed."""
        queue = self._queues.get(entry.ratio_key)
        if queue is None:
            pool = self._queue_pool
            if pool:
                queue = pool.pop()
                queue.ratio_key = entry.ratio_key
                queue.handle.priority = (entry.h, entry.seq)
            else:
                queue = _CampQueue(entry.ratio_key)
                queue.handle = self._entry_factory((entry.h, entry.seq),
                                                   queue)
            self._queues[entry.ratio_key] = queue
            queue.items.append(entry)
            self._heap.push(queue.handle)
            if self._stats:
                self._heap_updates += 1
                self._queues_created += 1
                if len(self._queues) > self._max_queues:
                    self._max_queues = len(self._queues)
        else:
            # tail append never changes the head, so the heap is untouched —
            # this is the O(1) hit/insert path the paper's Figure 3 shows
            # (splice inlined: the entry is freshly created or detached)
            items = queue.items
            sentinel = items._sentinel
            last = sentinel.prev
            entry.prev = last
            entry.next = sentinel
            last.next = entry
            sentinel.prev = entry
            entry._list = items
            items._size += 1
        entry.queue = queue

    def _detach_from_queue(self, entry: _CampEntry) -> None:
        """Remove entry from its queue, fixing the heap if the head changed."""
        queue = entry.queue
        was_head = queue.items.head is entry
        queue.items.remove(entry)
        if not queue.items:
            self._heap.remove(queue.handle)
            del self._queues[entry.ratio_key]
            if len(self._queue_pool) < 64:
                self._queue_pool.append(queue)
            if self._stats:
                self._heap_updates += 1
        elif was_head:
            self._heap.update(queue.handle, queue.head_priority())
            if self._stats:
                self._heap_updates += 1

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def on_hit(self, key: str) -> None:
        entry = self._entries.get(key)
        if entry is None:
            raise MissingKeyError(key)
        self._seq = seq = self._seq + 1
        heap = self._heap
        # Algorithm 1 line 2: L advances to the smallest H among all
        # resident pairs — the minimum queue head, an O(1) heap peek.
        # (The pseudocode prints min over M \ {p}; that reading breaks the
        # competitive bound — see repro.core.gds and the competitive-ratio
        # tests — while the Proposition-1 proof describes the global min.)
        data = self._heap_array
        if data is not None:
            self._L = L = data[0].priority[0]
        else:
            self._L = L = heap.peek().priority[0]
        size = entry.size
        converter = self._converter
        mult = converter._max_size
        if size > mult:
            converter._max_size = mult = size
        if self._reround_on_hit and mult != entry.mult:
            # the multiplier grew since this entry was last rounded; the
            # conversion is deterministic in (size, cost, multiplier), so
            # an unchanged multiplier makes recomputing it a no-op — the
            # overwhelmingly common case once the max size converges
            new_key = self._rounded_ratio_of(size, entry.cost)
            entry.mult = mult
        else:
            new_key = entry.ratio_key
        h = L + new_key
        if new_key == entry.ratio_key:
            queue = entry.queue
            # inlined DList.move_to_tail: the LRU touch is the hottest
            # statement in the library, so the links are respliced here
            # without the method call and membership check (the entry's
            # residency in this queue is a policy invariant)
            sentinel = queue.items._sentinel
            was_head = sentinel.next is entry
            if sentinel.prev is not entry:
                prev = entry.prev
                nxt = entry.next
                prev.next = nxt
                nxt.prev = prev
                last = sentinel.prev
                entry.prev = last
                entry.next = sentinel
                last.next = entry
                sentinel.prev = entry
            entry.h = h
            entry.seq = seq
            if was_head:
                # the head changed (or the singleton's priority did)
                head = sentinel.next
                reprioritize = self._reprioritize
                if reprioritize is not None:
                    reprioritize(queue.handle, (head.h, head.seq))
                else:
                    heap.update(queue.handle, (head.h, head.seq))
                if self._stats:
                    self._heap_updates += 1
        else:
            # the adaptive multiplier grew: the pair migrates queues
            self._detach_from_queue(entry)
            entry.ratio_key = new_key
            entry.h = h
            entry.seq = seq
            self._append_to_queue(entry)

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        if key in self._entries:
            raise DuplicateKeyError(key)
        if size < 1:
            raise ConfigurationError(f"item size must be >= 1, got {size}")
        if cost < 0:
            raise ConfigurationError(f"item cost must be >= 0, got {cost}")
        self._seq = seq = self._seq + 1
        converter = self._converter
        mult = converter._max_size
        if size > mult:
            converter._max_size = mult = size
        ratio_key = self._rounded_ratio_of(size, cost)
        entry = _CampEntry(key, size, cost, self._L + ratio_key, seq,
                           ratio_key, mult)
        self._entries[key] = entry
        queue = self._queues.get(ratio_key)
        if queue is None:
            self._append_to_queue(entry)
        else:
            # existing queue: tail append, heap untouched (inlined splice)
            items = queue.items
            sentinel = items._sentinel
            last = sentinel.prev
            entry.prev = last
            entry.next = sentinel
            last.next = entry
            sentinel.prev = entry
            entry._list = items
            items._size += 1
            entry.queue = queue

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        heap = self._heap
        data = self._heap_array
        if data is not None:
            if not data:
                raise EvictionError("CAMP has nothing to evict")
            # line 5: the victim is the head of the minimum-priority queue
            queue: _CampQueue = data[0].item
        else:
            if not heap:
                raise EvictionError("CAMP has nothing to evict")
            queue = heap.peek().item
        items = queue.items
        # inlined DList.popleft (see on_hit for the splice rationale)
        sentinel = items._sentinel
        entry = sentinel.next
        head = entry.next
        sentinel.next = head
        head.prev = sentinel
        entry.prev = None
        entry.next = None
        entry._list = None
        items._size = size = items._size - 1
        del self._entries[entry.key]
        if size:
            replace_min = self._replace_min
            if replace_min is not None:
                # the popped queue's handle is the heap root by line 5;
                # re-key it in place without the handle checks
                replace_min((head.h, head.seq))
            else:
                heap.update(queue.handle, (head.h, head.seq))
        else:
            heap.remove(queue.handle)
            del self._queues[queue.ratio_key]
            pool = self._queue_pool
            if len(pool) < 64:
                pool.append(queue)
        if self._stats:
            self._heap_updates += 1
        # line 6: L becomes the victim's H (the minimum evaluated while the
        # victim still counts as resident) — matching GDS; the survivors-
        # only reading violates Proposition 3, see
        # tests/test_competitive_ratio.py.
        self._L = entry.h
        return entry.key

    def on_remove(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            raise MissingKeyError(key)
        self._detach_from_queue(entry)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def precision(self) -> Optional[int]:
        return self._precision

    @property
    def stats_enabled(self) -> bool:
        """Whether measurement accounting is compiled into this instance."""
        return self._stats

    @property
    def inflation(self) -> int:
        """The global offset L."""
        return self._L

    @property
    def converter(self) -> RatioConverter:
        return self._converter

    @property
    def queue_count(self) -> int:
        """Number of non-empty LRU queues (the y-axis of Figure 5b)."""
        return len(self._queues)

    def queue_lengths(self) -> Dict[int, int]:
        """Mapping rounded-ratio -> queue length (diagnostics)."""
        return {k: len(q.items) for k, q in self._queues.items()}

    def iter_queue(self, ratio_key: int) -> Iterator[_CampEntry]:
        """Yield entries of one queue head-to-tail (used by invariant tests)."""
        queue = self._queues.get(ratio_key)
        if queue is None:
            return iter(())
        return iter(queue.items)  # type: ignore[return-value]

    def priority_of(self, key: str) -> int:
        """H(key) for a resident key."""
        entry = self._entries.get(key)
        if entry is None:
            raise MissingKeyError(key)
        return entry.h

    def peek_min_priority(self) -> Optional[Tuple[int, int]]:
        """(H, seq) of the current eviction candidate, or None when empty."""
        if not self._heap:
            return None
        return self._heap.peek().priority

    # ------------------------------------------------------------------
    # durable state (snapshot/restore hooks)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Everything a restored CAMP needs to evict identically: the
        queues (head-to-tail, preserving LRU order), each member's fixed
        H and touch sequence, the global clocks L/seq, and the adaptive
        multiplier.  Queue ids (rounded ratios) ride along so migration
        history survives even when the current multiplier would round a
        member into a different queue today."""
        queues = [
            [ratio_key, [[e.key, e.size, e.cost, e.h, e.seq]
                         for e in queue.items]]
            for ratio_key, queue in self._queues.items()
        ]
        return {
            "policy": self.name,
            "precision": self._precision,
            "reround_on_hit": self._reround_on_hit,
            "L": self._L,
            "seq": self._seq,
            "multiplier": self._converter.multiplier,
            "queues": queues,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        self._check_importable(state)
        self._precision = state["precision"]
        self._reround_on_hit = bool(state["reround_on_hit"])
        self._L = state["L"]
        self._seq = state["seq"]
        self._converter.observe(int(state["multiplier"]))
        for ratio_key, members in state["queues"]:
            for key, size, cost, h, seq in members:
                if key in self._entries:
                    raise ConfigurationError(
                        f"snapshot lists {key!r} in two queues")
                # mult=-1: a snapshot does not say which multiplier each
                # member was rounded under, so the first hit after a
                # restore always rerounds — exactly the seed's behaviour
                entry = _CampEntry(key, size, cost, h, seq, ratio_key, -1)
                self._entries[key] = entry
                self._append_to_queue(entry)

    def stats(self) -> Dict[str, Union[int, float]]:
        return {
            "heap_node_visits": self._heap.node_visits,
            "heap_updates": self._heap_updates,
            "heap_size": len(self._heap),
            "queue_count": len(self._queues),
            "queues_created": self._queues_created,
            "max_queues": self._max_queues,
            "inflation": float(self._L),
            "multiplier": self._converter.multiplier,
        }

    def reset_stats(self) -> None:
        self._heap.reset_visits()
        self._heap_updates = 0
        self._queues_created = 0
        self._max_queues = len(self._queues)

    def check_invariants(self) -> None:
        """Verify CAMP's structural invariants (test hook).

        Within every queue, H and seq must be non-decreasing head-to-tail
        and every member's ratio_key must equal the queue key; the heap must
        carry exactly the non-empty queues keyed by their heads.
        """
        assert len(self._heap) == len(self._queues)
        total = 0
        for ratio_key, queue in self._queues.items():
            assert queue.items, "empty queue retained"
            assert queue.handle.priority == queue.head_priority()
            prev_h = prev_seq = None
            for node in queue.items:
                total += 1
                assert node.ratio_key == ratio_key
                if prev_h is not None:
                    assert node.h >= prev_h, "queue not ordered by H"
                    assert node.seq > prev_seq, "queue not ordered by seq"
                prev_h, prev_seq = node.h, node.seq
        assert total == len(self._entries)
