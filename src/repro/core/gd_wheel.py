"""GD-Wheel (Li & Cox) — the related-work competitor to CAMP.

GD-Wheel also accelerates Greedy Dual, but by hashing each pair's *overall
priority* ``P = L + cost/size`` into hierarchical **cost wheels** (timing
wheels repurposed for priorities): wheel ``i`` has ``num_slots`` slots of
width ``num_slots**i``.  Eviction advances the wheel-0 hand to the next
non-empty slot; when wheel 0 completes its range, the next occupied slot of
wheel 1 is *migrated* down (every resident pair in it is re-scattered into
wheel 0), and so on up the hierarchy.

The paper's section 5 criticizes exactly the properties visible here:
the rounding applies to the overall priority (so the approximation error is
hard to bound — contrast CAMP's Proposition 3), and migrations periodically
touch every pair in a slot (CAMP never migrates, because a pair's rounded
cost-to-size ratio is fixed while it is resident).  Migrated pairs are
counted in ``stats()["migrated_items"]`` to make that cost observable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.core.rounding import RatioConverter
from repro.errors import (
    ConfigurationError,
    DuplicateKeyError,
    EvictionError,
    MissingKeyError,
)
from repro.structures import DList, DListNode

__all__ = ["GdWheelPolicy"]

Number = Union[int, float]


class _WheelNode(DListNode):
    __slots__ = ("item", "priority", "slot", "wheel")

    def __init__(self, item: CacheItem, priority: int) -> None:
        super().__init__()
        self.item = item
        self.priority = priority
        self.slot: Optional[DList] = None
        self.wheel: Optional["_Wheel"] = None


class _Wheel:
    """One level: ``num_slots`` FIFO slots of width ``granularity``."""

    __slots__ = ("granularity", "slots", "hand", "base", "count")

    def __init__(self, num_slots: int, granularity: int, base: int) -> None:
        self.granularity = granularity
        self.slots: List[DList] = [DList() for _ in range(num_slots)]
        self.hand = 0    # index of the slot whose range starts at ``base``
        self.base = base  # priority value at the hand
        self.count = 0   # resident pairs in this wheel

    @property
    def span(self) -> int:
        return len(self.slots) * self.granularity


class GdWheelPolicy(EvictionPolicy):
    """Greedy Dual over hierarchical cost wheels."""

    name = "gd-wheel"

    def __init__(self,
                 num_slots: int = 64,
                 levels: int = 3,
                 converter: Optional[RatioConverter] = None) -> None:
        if num_slots < 2:
            raise ConfigurationError(f"num_slots must be >= 2, got {num_slots}")
        if levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {levels}")
        self._num_slots = num_slots
        self._wheels: List[_Wheel] = []
        granularity = 1
        for _ in range(levels):
            self._wheels.append(_Wheel(num_slots, granularity, base=0))
            granularity *= num_slots
        self._nodes: Dict[str, _WheelNode] = {}
        self._converter = converter if converter is not None else RatioConverter()
        self._L = 0
        self._migrated_items = 0

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _place(self, node: _WheelNode) -> None:
        """Scatter a node into the lowest wheel that can express its delay."""
        delta = node.priority - self._L
        if delta < 0:
            delta = 0
        for wheel in self._wheels:
            offset = (node.priority - wheel.base) // wheel.granularity
            if offset < 0:
                offset = 0
            if offset < self._num_slots:
                slot = wheel.slots[(wheel.hand + offset) % self._num_slots]
                slot.append(node)
                node.slot = slot
                node.wheel = wheel
                wheel.count += 1
                return
        # beyond the top wheel's horizon: clamp into its furthest slot
        top = self._wheels[-1]
        slot = top.slots[(top.hand + self._num_slots - 1) % self._num_slots]
        slot.append(node)
        node.slot = slot
        node.wheel = top
        top.count += 1

    def _unplace(self, node: _WheelNode) -> None:
        assert node.slot is not None and node.wheel is not None
        node.slot.remove(node)
        node.wheel.count -= 1
        node.slot = None
        node.wheel = None

    # ------------------------------------------------------------------
    # hand advancement / migration
    # ------------------------------------------------------------------
    def _advance_to_victim(self) -> DList:
        """Advance hands until wheel 0's current slot is non-empty."""
        while True:
            wheel0 = self._wheels[0]
            if wheel0.count:
                for step in range(self._num_slots):
                    slot = wheel0.slots[(wheel0.hand + step) % self._num_slots]
                    if slot:
                        wheel0.hand = (wheel0.hand + step) % self._num_slots
                        wheel0.base += step * wheel0.granularity
                        self._L = max(self._L, wheel0.base)
                        return slot
            # wheel 0 drained: pull down one slot from the lowest
            # occupied upper wheel (migration, per the GD-Wheel paper)
            level = next((i for i in range(1, len(self._wheels))
                          if self._wheels[i].count), None)
            if level is None:
                raise EvictionError("GD-Wheel has nothing to evict")
            self._migrate_slot(level)

    def _migrate_slot(self, level: int) -> None:
        """Drain the next occupied slot of ``level`` into the wheels below.

        Every wheel below ``level`` is empty (that is the only reason
        migration runs), so they are re-anchored at the slot's start value
        before the slot's pairs are re-scattered.
        """
        wheel = self._wheels[level]
        for step in range(self._num_slots):
            index = (wheel.hand + step) % self._num_slots
            slot = wheel.slots[index]
            if not slot:
                continue
            slot_base = wheel.base + step * wheel.granularity
            for lower in self._wheels[:level]:
                lower.hand = 0
                lower.base = slot_base
            nodes = list(slot)
            # consume the slot before re-placing, so clamped overflow pairs
            # scatter relative to the advanced hand
            wheel.hand = (index + 1) % self._num_slots
            wheel.base = slot_base + wheel.granularity
            for node in nodes:
                slot.remove(node)
                wheel.count -= 1
                node.slot = None
                node.wheel = None
                self._migrated_items += 1
                self._place(node)
            return
        raise EvictionError("inconsistent GD-Wheel occupancy counter")

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def _priority(self, item: CacheItem) -> int:
        self._converter.observe(item.size)
        return self._L + self._converter.to_integer(item.cost, item.size)

    def on_hit(self, key: str) -> None:
        node = self._nodes.get(key)
        if node is None:
            raise MissingKeyError(key)
        self._unplace(node)
        node.priority = self._priority(node.item)
        self._place(node)

    def on_insert(self, key: str, size: int, cost: Number) -> None:
        if key in self._nodes:
            raise DuplicateKeyError(key)
        item = CacheItem(key, size, cost)
        node = _WheelNode(item, self._priority(item))
        self._nodes[key] = node
        self._place(node)

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._nodes:
            raise EvictionError("GD-Wheel has nothing to evict")
        slot = self._advance_to_victim()
        node = slot.popleft()
        self._wheels[0].count -= 1
        node.slot = None
        node.wheel = None
        del self._nodes[node.item.key]
        return node.item.key

    def on_remove(self, key: str) -> None:
        node = self._nodes.pop(key, None)
        if node is None:
            raise MissingKeyError(key)
        self._unplace(node)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def inflation(self) -> int:
        return self._L

    def stats(self) -> Dict[str, Union[int, float]]:
        return {
            "migrated_items": self._migrated_items,
            "inflation": float(self._L),
            "wheel_counts": sum(w.count for w in self._wheels),
        }

    def reset_stats(self) -> None:
        self._migrated_items = 0
