"""First-In First-Out — the recency-blind control baseline."""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.policy import CacheItem, EvictionPolicy
from repro.errors import DuplicateKeyError, EvictionError, MissingKeyError
from repro.structures import DList, DListNode

__all__ = ["FifoPolicy"]


class _FifoNode(DListNode):
    __slots__ = ("item",)

    def __init__(self, item: CacheItem) -> None:
        super().__init__()
        self.item = item


class FifoPolicy(EvictionPolicy):
    """Evicts in insertion order; hits do not reorder anything."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue = DList()
        self._nodes: Dict[str, _FifoNode] = {}

    def on_hit(self, key: str) -> None:
        if key not in self._nodes:
            raise MissingKeyError(key)
        # FIFO deliberately ignores hits.

    def on_insert(self, key: str, size: int, cost: Union[int, float]) -> None:
        if key in self._nodes:
            raise DuplicateKeyError(key)
        node = _FifoNode(CacheItem(key, size, cost))
        self._nodes[key] = node
        self._queue.append(node)

    def pop_victim(self, incoming: Optional[CacheItem] = None) -> str:
        if not self._queue:
            raise EvictionError("FIFO has nothing to evict")
        node = self._queue.popleft()
        del self._nodes[node.item.key]
        return node.item.key

    def on_remove(self, key: str) -> None:
        node = self._nodes.pop(key, None)
        if node is None:
            raise MissingKeyError(key)
        self._queue.remove(node)

    def __contains__(self, key: str) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)
